//! # rsse — Ranked Searchable Symmetric Encryption
//!
//! Facade crate re-exporting the full RSSE workspace: a reproduction of
//! *"Secure Ranked Keyword Search over Encrypted Cloud Data"* (Wang, Cao,
//! Li, Ren, Lou — ICDCS 2010).
//!
//! The workspace is organised bottom-up:
//!
//! * [`crypto`] — SHA-1/SHA-256, HMAC, AES-CTR, the `TapeGen` coin generator;
//! * [`hgd`] — exact hypergeometric sampling (`HYGEINV`);
//! * [`opse`] — order-preserving encryption and the one-to-many
//!   order-preserving mapping (OPM), the paper's core primitive;
//! * [`ir`] — tokenizer, inverted index, TF×IDF scoring, synthetic corpus;
//! * [`analysis`] — histograms, min-entropy, distribution distances;
//! * [`sse`] — the paper's *basic scheme* (client-side ranking);
//! * [`core`] — the efficient RSSE scheme (server-side ranking over OPM);
//! * [`baselines`] — related-work baselines for comparison benches;
//! * [`cloud`] — simulated owner/server/user deployment with a wire codec
//!   and bandwidth accounting.
//!
//! # Quickstart
//!
//! ```
//! use rsse::core::{Rsse, RsseParams};
//! use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. The data owner generates keys and builds the secure index.
//! let corpus = SyntheticCorpus::generate(&CorpusParams::small(11));
//! let scheme = Rsse::new(b"owner master secret", RsseParams::default());
//! let index = scheme.build_index(corpus.documents())?;
//!
//! // 2. An authorized user asks for the top-5 files for a keyword.
//! let trapdoor = scheme.trapdoor("network")?;
//! let results = index.search(&trapdoor, Some(5));
//!
//! // 3. The server returned at most 5 file IDs, best match first.
//! assert!(results.len() <= 5);
//! # Ok(())
//! # }
//! ```

pub use rsse_analysis as analysis;
pub use rsse_baselines as baselines;
pub use rsse_cloud as cloud;
pub use rsse_core as core;
pub use rsse_crypto as crypto;
pub use rsse_hgd as hgd;
pub use rsse_ir as ir;
pub use rsse_opse as opse;
pub use rsse_oram as oram;
pub use rsse_sse as sse;
