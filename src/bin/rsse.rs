//! `rsse` — command-line front end for the ranked searchable encryption
//! library.
//!
//! ```text
//! rsse gen-corpus  --docs 200 --seed 7 --out ./corpus
//! rsse build-index --secret-file key.txt --corpus ./corpus --out index.rsse
//! rsse search      --secret-file key.txt --index index.rsse --keyword network --top-k 5
//! rsse inspect     --index index.rsse
//! ```
//!
//! The secret file holds the owner's master seed (any bytes); documents
//! are plain-text files; file ids are assigned by sorted file name.

use rsse::core::{Rsse, RsseIndex, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::{Document, FileId};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  rsse gen-corpus  --docs <n> [--seed <u64>] --out <dir>
  rsse build-index --secret-file <file> --corpus <dir> --out <file> [--levels <M>] [--scoring eq2|bm25|tfidf]
  rsse search      --secret-file <file> --index <file> --keyword <w> [--top-k <k>]
  rsse inspect     --index <file>";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "gen-corpus" => cmd_gen_corpus(&flags),
        "build-index" => cmd_build_index(&flags),
        "search" => cmd_search(&flags),
        "inspect" => cmd_inspect(&flags),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, found {flag:?}"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("--{name} requires a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn require<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{name}"))
}

fn cmd_gen_corpus(flags: &HashMap<String, String>) -> Result<(), String> {
    let docs: usize = require(flags, "docs")?
        .parse()
        .map_err(|e| format!("--docs: {e}"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let out = PathBuf::from(require(flags, "out")?);
    fs::create_dir_all(&out).map_err(|e| format!("creating {}: {e}", out.display()))?;

    let mut params = CorpusParams::small(seed);
    params.num_docs = docs;
    let corpus = SyntheticCorpus::generate(&params);
    for doc in corpus.documents() {
        let path = out.join(format!("doc{:06}.txt", doc.id().as_u64()));
        fs::write(&path, doc.text()).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    println!(
        "wrote {} documents ({} bytes) to {}",
        docs,
        corpus.total_bytes(),
        out.display()
    );
    Ok(())
}

fn load_corpus(dir: &Path) -> Result<Vec<Document>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no files in {}", dir.display()));
    }
    paths
        .iter()
        .enumerate()
        .map(|(i, path)| {
            let text =
                fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
            Ok(Document::new(FileId::new(i as u64 + 1), text))
        })
        .collect()
}

fn scheme_from_flags(flags: &HashMap<String, String>) -> Result<Rsse, String> {
    let secret_path = require(flags, "secret-file")?;
    let secret = fs::read(secret_path).map_err(|e| format!("reading secret {secret_path}: {e}"))?;
    if secret.is_empty() {
        return Err("secret file is empty".into());
    }
    let mut params = RsseParams::default();
    if let Some(levels) = flags.get("levels") {
        params.levels = levels.parse().map_err(|e| format!("--levels: {e}"))?;
    }
    if let Some(scoring) = flags.get("scoring") {
        params.scoring = match scoring.as_str() {
            "eq2" => rsse::ir::ScoringFunction::PaperEq2,
            "bm25" => rsse::ir::ScoringFunction::bm25(),
            "tfidf" => rsse::ir::ScoringFunction::SublinearTfIdf,
            other => {
                return Err(format!(
                    "--scoring: unknown function {other:?} (eq2|bm25|tfidf)"
                ))
            }
        };
    }
    Ok(Rsse::new(&secret, params))
}

fn cmd_build_index(flags: &HashMap<String, String>) -> Result<(), String> {
    let scheme = scheme_from_flags(flags)?;
    let corpus_dir = PathBuf::from(require(flags, "corpus")?);
    let out = require(flags, "out")?;
    let documents = load_corpus(&corpus_dir)?;
    let plaintext = rsse::ir::InvertedIndex::build(&documents);
    let (index, report) = scheme
        .build_index_with_report(&plaintext)
        .map_err(|e| format!("building index: {e}"))?;
    let file = fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    index
        .save(std::io::BufWriter::new(file))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "indexed {} documents, {} keywords (ν = {}), {} OPM ops in {:.2?} -> {} ({} bytes)",
        report.num_docs,
        report.num_keywords,
        report.padded_len,
        report.opm_operations,
        report.build_time,
        out,
        report.index_bytes,
    );
    Ok(())
}

fn cmd_search(flags: &HashMap<String, String>) -> Result<(), String> {
    let scheme = scheme_from_flags(flags)?;
    let index_path = require(flags, "index")?;
    let keyword = require(flags, "keyword")?;
    let top_k: Option<usize> = flags
        .get("top-k")
        .map(|s| s.parse().map_err(|e| format!("--top-k: {e}")))
        .transpose()?;
    let file = fs::File::open(index_path).map_err(|e| format!("opening {index_path}: {e}"))?;
    let index = RsseIndex::load(std::io::BufReader::new(file))
        .map_err(|e| format!("loading {index_path}: {e}"))?;
    let trapdoor = scheme
        .trapdoor(keyword)
        .map_err(|e| format!("trapdoor: {e}"))?;
    let results = index.search(&trapdoor, top_k);
    if results.is_empty() {
        println!("no matches for {keyword:?}");
        return Ok(());
    }
    println!("rank  file        mapped-score");
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:>4}  doc{:06}  {}",
            i + 1,
            r.file.as_u64(),
            r.encrypted_score
        );
    }
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let index_path = require(flags, "index")?;
    let file = fs::File::open(index_path).map_err(|e| format!("opening {index_path}: {e}"))?;
    let index = RsseIndex::load(std::io::BufReader::new(file))
        .map_err(|e| format!("loading {index_path}: {e}"))?;
    println!("posting lists : {}", index.num_lists());
    println!("index bytes   : {}", index.size_bytes());
    if let Some(opse) = index.opse_params() {
        println!(
            "score domain  : {} levels, range 2^{}",
            opse.domain_size(),
            opse.range_bits()
        );
    }
    Ok(())
}
