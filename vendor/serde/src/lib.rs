//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on a few data types for
//! downstream consumers, but nothing in-tree actually serializes through
//! serde (persistence uses a hand-rolled binary format). This stub keeps
//! those derives compiling offline: the traits are inert markers and the
//! derive macros (re-exported from the companion `serde_derive` stub under
//! the `derive` feature) expand to nothing.

#![forbid(unsafe_code)]

/// Inert marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Inert marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
