//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives and strips poisoning, which is the part of
//! the parking_lot API the workspace relies on (`lock()`/`read()`/`write()`
//! returning guards directly rather than `Result`s). Performance
//! characteristics are std's, not parking_lot's; the API contract is what
//! matters for this repository's offline build.

#![forbid(unsafe_code)]

/// Read guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;
/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access through an exclusive borrow (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
