//! Offline stand-in for `criterion`.
//!
//! Exposes the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock runner that
//! prints median ns/iter per benchmark. No statistics, plots, or baselines;
//! benches stay runnable and comparable order-of-magnitude offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_count` samples of a calibrated batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate batch size so one sample takes ~1ms or 1 iteration,
        // whichever is larger.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        ns[ns.len() / 2]
    }
}

fn run_one(group: Option<&str>, name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("bench {full}: {} ns/iter (median of {})", b.median_ns(), b.sample_count);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(None, name, self.sample_count, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_count: 20,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Caps measurement wall time (accepted, unused by this runner).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput (accepted, unused by this runner).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.sample_count, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.to_string(), self.sample_count, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_executes_and_times() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2)
            .throughput(Throughput::Elements(4))
            .bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
                b.iter(|| (0..n).sum::<u32>())
            });
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
