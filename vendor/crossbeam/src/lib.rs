//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses: a bounded multi-producer
//! multi-consumer channel (`crossbeam::channel`) and scoped threads
//! (`crossbeam::thread::scope`). The channel is a `Mutex<VecDeque>` with two
//! condvars — the same blocking semantics as crossbeam's bounded channel
//! (send blocks when full, recv blocks when empty, either errors once the
//! other side fully disconnects), without the lock-free internals. Scoped
//! threads delegate to `std::thread::scope`, re-shaped to crossbeam's
//! closure signature.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded MPMC channel with disconnect semantics.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`]; carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The queue is at capacity right now.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Sending half; clone freely for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clone freely for multiple consumers (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Creates a bounded channel with capacity `cap` (min 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Blocks until queue space frees up, then enqueues `value`.
        ///
        /// # Errors
        ///
        /// Returns [`SendError`] with the value once every receiver has been
        /// dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel lock");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.cap {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).expect("channel lock");
            }
        }

        /// Enqueues `value` only if space is available right now — never
        /// blocks.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when the queue is at capacity,
        /// [`TrySendError::Disconnected`] once every receiver is dropped;
        /// both return the value.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().expect("channel lock");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if state.queue.len() >= state.cap {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            self.inner.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives and returns it.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).expect("channel lock");
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] if nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] once the queue is empty and
        /// every sender has been dropped.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel lock");
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, remaining)
                    .expect("channel lock");
                state = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel lock").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel lock");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn mpmc_delivers_every_message_once() {
            let (tx, rx) = bounded::<u32>(4);
            let producers: Vec<_> = (0..3)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..50 {
                            tx.send(p * 100 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            let mut expect: Vec<u32> = (0..3).flat_map(|p| (0..50).map(move |i| p * 100 + i)).collect();
            expect.sort_unstable();
            assert_eq!(all, expect);
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = bounded::<u8>(1);
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            drop(rx);
            assert_eq!(tx.try_send(3), Err(TrySendError::Disconnected(3)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_blocks_producer_until_consumed() {
            let (tx, rx) = bounded::<u32>(1);
            let t = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut last = None;
            while let Ok(v) = rx.recv() {
                last = Some(v);
            }
            t.join().unwrap();
            assert_eq!(last, Some(99));
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's closure shape, over `std::thread::scope`.

    /// Spawn handle within a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread guaranteed to finish before the scope returns.
        /// The closure receives the scope (crossbeam convention; commonly
        /// ignored as `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                // Each thread rebuilds a Scope from the 'scope-lived inner
                // handle, so the spawned closure borrows nothing shorter
                // than 'scope.
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (Err on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined before
    /// this returns. With `std::thread::scope` underneath, a child panic
    /// propagates instead of surfacing here, so the result is always
    /// `Ok(..)` — matching how the workspace unwraps it.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_collects_results() {
            let data = vec![1u64, 2, 3, 4];
            let total: u64 = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
