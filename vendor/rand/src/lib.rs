//! Offline stand-in for `rand`.
//!
//! Implements the subset the workspace uses — `rngs::SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, `gen_bool` — over a splitmix64 core. Deterministic per seed
//! (the workspace only ever uses explicit seeds; statistical quality of
//! splitmix64 is ample for corpus synthesis and test workloads). Stream
//! values differ from the real crate's SmallRng, which no in-tree consumer
//! depends on.

#![forbid(unsafe_code)]

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly from an RNG via [`Rng::gen`].
pub trait Uniform {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u8
    }
}

impl Uniform for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Uniform for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Uniform for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Uniform for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Uniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The produced value type.
    type Output;
    /// Draws uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of an inferred type (`f64` means `[0, 1)`).
    fn gen<T: Uniform>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators (subset: [`SmallRng`]).

    use super::{RngCore, SeedableRng};

    /// Small fast deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014) — full-period, passes
            // BigCrush; plenty for synthetic corpora and tests.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3..=5u32);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
