//! Offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so external crates are vendored as minimal API-compatible
//! subsets. This module provides exactly the surface the workspace uses:
//! [`BytesMut`] as a growable byte buffer with a read cursor, plus the
//! [`Buf`]/[`BufMut`] traits it implements. Semantics match the real crate
//! for that subset (big-endian integer accessors, `remaining`-relative
//! reads, panics on under/overflow), minus the zero-copy machinery.

#![forbid(unsafe_code)]

/// A growable byte buffer with an internal read cursor.
///
/// Writes append at the tail; reads consume from the head. `len()`,
/// equality, and `Deref<Target = [u8]>` all observe only the *remaining*
/// (unread) bytes, like the real `bytes::BytesMut`.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes of pre-reserved tail space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.buf[self.pos..]
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Keeps only the first `n` unread bytes (no-op if `n >= len`).
    pub fn truncate(&mut self, n: usize) {
        if n < self.len() {
            self.buf.truncate(self.pos + n);
        }
    }

    /// Reserves tail capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drops all content.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.pos = 0;
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf[self.pos..]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(slice: &[u8]) -> Self {
        BytesMut {
            buf: slice.to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf, pos: 0 }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for BytesMut {}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

/// Read side of a byte buffer (subset of `bytes::Buf`).
///
/// All integer accessors are big-endian and panic when fewer than the
/// required bytes remain, matching the real crate.
pub trait Buf {
    /// Unread byte count.
    fn remaining(&self) -> usize;
    /// Consumes and returns one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes and returns a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes and returns a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Consumes `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Discards the next `n` bytes.
    fn advance(&mut self, n: usize);
}

/// Write side of a byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "BytesMut::get_u8 underflow");
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "BytesMut::copy_to_slice underflow"
        );
        dst.copy_from_slice(&self.buf[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, n: usize) {
        assert!(self.remaining() >= n, "BytesMut::advance underflow");
        self.pos += n;
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_integers_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_slice(b"xyz");
        assert_eq!(b.len(), 1 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"xyz");
        assert!(b.is_empty());
    }

    #[test]
    fn len_and_eq_track_remaining_bytes_only() {
        let mut a = BytesMut::from(&b"\x01\x02\x03"[..]);
        a.get_u8();
        let b = BytesMut::from(&b"\x02\x03"[..]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(&a[..], &[2, 3]);
    }

    #[test]
    fn truncate_limits_remaining() {
        let mut a = BytesMut::from(&b"abcdef"[..]);
        a.get_u8();
        a.truncate(2);
        assert_eq!(&a[..], b"bc");
    }
}
