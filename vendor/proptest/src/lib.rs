//! Offline stand-in for `proptest`.
//!
//! The build container has no registry access, so the workspace vendors a
//! generate-only subset of proptest sufficient for its property tests:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`), expanding each
//!   property into a `#[test]` that runs `cases` deterministic iterations;
//! * [`strategy::Strategy`] with `prop_map`/`boxed`, implemented for integer
//!   and float ranges, tuples, regex-subset `&str` patterns, [`Just`], and
//!   [`collection::vec`];
//! * `any::<T>()` for primitives and byte arrays;
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` (mapped to the std
//!   assert family), `prop_assume!` (skips the case), and [`prop_oneof!`].
//!
//! Differences from real proptest: no shrinking (a failing case reports its
//! generated inputs via the assert message only), and case generation is
//! seeded from the test's module path + name + case index, so every run is
//! reproducible without a persistence file.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Run configuration and the deterministic per-case RNG.

    /// Subset of proptest's `Config`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` iterations per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Deterministic splitmix64 RNG, seeded per (test name, case index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the named test — stable across runs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next uniform 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Generate-only: no shrinking, no rejection bookkeeping.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation hook backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the [`prop_oneof!`] backend).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitives and fixed-size byte arrays.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-lower, exclusive-or-inclusive-upper size bounds.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` values with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector strategy over `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span + 1) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Generator for the regex subset used as string strategies.
    //!
    //! Supports exactly the constructs in this workspace's patterns:
    //! literal characters, character classes `[a-z0-9_]` (ranges and
    //! singletons), groups `( .. )`, and `{m}` / `{m,n}` quantifiers on the
    //! preceding class, group, or literal.

    use crate::test_runner::TestRng;

    enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    fn parse_sequence(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, in_group: bool) -> Vec<Node> {
        let mut nodes = Vec::new();
        while let Some(&c) = chars.peek() {
            match c {
                ')' if in_group => break,
                '(' => {
                    chars.next();
                    let inner = parse_sequence(chars, true);
                    assert_eq!(chars.next(), Some(')'), "unclosed group in pattern");
                    nodes.push(Node::Group(inner));
                }
                '[' => {
                    chars.next();
                    let mut ranges = Vec::new();
                    let mut pending: Option<char> = None;
                    loop {
                        let c = chars.next().expect("unclosed class in pattern");
                        match c {
                            ']' => {
                                if let Some(p) = pending {
                                    ranges.push((p, p));
                                }
                                break;
                            }
                            '-' if pending.is_some() => {
                                let lo = pending.take().expect("checked");
                                let hi = chars.next().expect("dangling '-' in class");
                                ranges.push((lo, hi));
                            }
                            other => {
                                if let Some(p) = pending {
                                    ranges.push((p, p));
                                }
                                pending = Some(other);
                            }
                        }
                    }
                    nodes.push(Node::Class(ranges));
                }
                '{' => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse().expect("bad quantifier"),
                            b.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: u32 = spec.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    };
                    let prev = nodes.pop().expect("quantifier with nothing to repeat");
                    nodes.push(Node::Repeat(Box::new(prev), lo, hi));
                }
                '\\' => {
                    chars.next();
                    let escaped = chars.next().expect("dangling escape in pattern");
                    nodes.push(Node::Literal(escaped));
                }
                other => {
                    chars.next();
                    nodes.push(Node::Literal(other));
                }
            }
        }
        nodes
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = u64::from(*hi as u32 - *lo as u32 + 1);
                    if pick < span {
                        let c = char::from_u32(*lo as u32 + pick as u32).expect("class range");
                        out.push(c);
                        return;
                    }
                    pick -= span;
                }
                unreachable!("pick < total");
            }
            Node::Group(nodes) => {
                for n in nodes {
                    emit(n, rng, out);
                }
            }
            Node::Repeat(inner, lo, hi) => {
                let n = lo + rng.below(u64::from(hi - lo) + 1) as u32;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }

    /// Generates one string matching `pattern` (regex subset).
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut chars = pattern.chars().peekable();
        let nodes = parse_sequence(&mut chars, false);
        assert!(chars.next().is_none(), "trailing tokens in pattern");
        let mut out = String::new();
        for n in &nodes {
            emit(n, rng, &mut out);
        }
        out
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    // The caller's `#[test]` attribute rides along in the `$meta` capture
    // and is re-emitted with the other attributes — the expansion must NOT
    // add its own `#[test]` on top: rustc expands each `#[test]`
    // independently, so the doubled attribute used to register every
    // property twice with libtest and run every case twice.
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __strategy = ($($strat,)+);
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                    let __body = || $body;
                    __body();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property (std `assert!` underneath).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (std `assert_eq!` underneath).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (std `assert_ne!` underneath).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_generates_matching_text() {
        let mut rng = TestRng::for_case("string_pattern", 3);
        for _ in 0..200 {
            let s = crate::string::generate("[a-z]{2,8}( [a-z]{2,8}){0,20}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!(!words.is_empty() && words.len() <= 21);
            for w in words {
                assert!(
                    w.len() >= 2 && w.len() <= 8 && w.bytes().all(|b| b.is_ascii_lowercase()),
                    "bad word {w:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn ranges_and_vecs_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let xs = Strategy::generate(&vec(any::<u8>(), 3..6), &mut rng);
            assert!(xs.len() >= 3 && xs.len() < 6);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("x", 7));
        let b = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("x", 7));
        let c = Strategy::generate(&(0u64..1000), &mut TestRng::for_case("x", 8));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        fn macro_end_to_end(x in 0u32..50, ys in vec(any::<u8>(), 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), ys.len());
        }

        fn oneof_unions_arms(v in prop_oneof![(0u64..10).prop_map(|x| x * 2), Just(99u64).prop_map(|x| x)]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 20));
        }
    }
}
