//! Offline stand-in for `serde_derive`: both derives expand to an empty
//! token stream. The serde stub's traits are inert markers, so no impl is
//! required for the workspace to compile; see `vendor/serde`.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
