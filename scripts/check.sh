#!/usr/bin/env bash
# Pre-PR gate: everything CI runs, in one command.
#
#   $ scripts/check.sh
#
# Runs from the repo root regardless of the invocation directory.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
