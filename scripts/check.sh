#!/usr/bin/env bash
# Pre-PR gate: everything CI runs, in one command.
#
#   $ scripts/check.sh
#
# Runs from the repo root regardless of the invocation directory.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

# The serving-path hardening suites, named explicitly so a filtered local
# run cannot silently skip them: codec fuzzing (decode never panics, never
# over-allocates) and pool fault injection (contained panics, deadlines,
# overload shedding).
echo "==> cargo test -q -p rsse-cloud --test codec_fuzz --test decode_alloc"
cargo test -q -p rsse-cloud --test codec_fuzz --test decode_alloc

echo "==> cargo test -q --test pool_faults"
cargo test -q --test pool_faults

# The sharding layer's tentpole guarantees: scatter-gather ranking is
# byte-identical to the single-server search for shard counts 1-8, and
# tuned routing (label-filter pruning, merged-result cache, replica
# reads) is byte-identical to the full scatter under interleaved updates.
echo "==> cargo test -q --test shard_equivalence"
cargo test -q --test shard_equivalence

# The ranking cache's tentpole guarantee: cache on == cache off, byte for
# byte, under interleaved updates (sharded path included) — plus the
# persistence format's lossless round-trip and hostile-file rejection.
echo "==> cargo test -q --test cache_coherence"
cargo test -q --test cache_coherence

# The conjunctive serving path's tentpole guarantee: the intersection
# pushdown returns byte-identical rankings across mem/segment/
# generational backends, cache on vs off, and sharded vs single-node,
# under random search/update interleavings and both keyword orders.
echo "==> cargo test -q --test conjunctive"
cargo test -q --test conjunctive

echo "==> cargo test -q -p rsse-core --test persist_roundtrip"
cargo test -q -p rsse-core --test persist_roundtrip

# The storage engine's tentpole guarantee: mem, on-disk segment,
# compacted segment, and the generational store return byte-identical
# rankings under interleaved searches, updates, flushes, and live
# compactions — cached, warm-restarted, and sharded deployments included.
echo "==> cargo test -q --test backend_equivalence"
cargo test -q --test backend_equivalence

# The storage engine's crash-consistency guarantee: the writer is killed
# at every fsync/rename boundary of a create/flush/compact plan (24
# boundaries) plus every boundary of a single-file compaction, and each
# reopened store must land on exactly the pre-op or post-op rankings —
# never a torn state — and keep accepting updates. Also pins the typed
# double-compact error, epoch-based segment reclaim, and that searches
# keep being served while a live compaction is stalled mid-merge.
echo "==> cargo test -q -p rsse-core --test crash_torture"
cargo test -q -p rsse-core --test crash_torture

# The transport layer's tentpole guarantees: the real TCP event loop and
# the simulated channel transport produce byte-identical reply frames,
# rankings, and traffic reports for the same pipelined request log; out-
# of-order completions re-pair by sequence id; a slow reader stalls only
# its own connection; overload sheds the canonical frame over TCP too.
echo "==> cargo test -q -p rsse-cloud --test transport_equivalence --test tcp_transport"
cargo test -q -p rsse-cloud --test transport_equivalence --test tcp_transport

# 512-connection loopback soak: 16 client threads, 4-deep pipelines of
# mixed search/fetch frames per connection, every reply re-paired by
# sequence id and type-checked — exits nonzero on any dropped, garbled,
# or misrouted frame. The full (non-smoke) soak runs more rounds.
echo "==> tcp_soak --smoke"
cargo run --release -q -p rsse-bench --bin tcp_soak -- --smoke

# Smoke the throughput harness end to end (tiny counts, no perf gates):
# boots every scenario including the Zipf hot_keywords cache pair, the
# batched cpu path, the generational churn pair (live compactor beside
# the pool), and the tuned sharded scenario (pruning + merged cache +
# replicas under churn), and checks the functional cache invariants.
# The full (non-smoke) run additionally gates sharded 8-shard
# throughput at >= 1.0x single-shard on the churny Zipf workload, the
# churn-compact leg at >= 0.8x the no-compaction baseline, and loopback
# TCP at 64 pipelined connections at >= 0.7x the channel transport,
# voiding the published numbers on failure.
echo "==> throughput --smoke"
cargo run --release -q -p rsse-bench --bin throughput -- --smoke

echo "==> cargo clippy --workspace --all-targets --release -- -D warnings"
cargo clippy --workspace --all-targets --release -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> all checks passed"
