//! Stress test for the worker-pool server loop: many client threads
//! hammering a 4-worker pool with a mix of searches and §VII score-dynamics
//! updates, verifying that every request gets a reply (none lost), that the
//! pool shuts down cleanly, and that the per-worker served counts account
//! for exactly the requests issued.

use rsse::cloud::entities::{CloudServer, DataOwner};
use rsse::cloud::server_loop::ServerHandle;
use rsse::cloud::{FileCrypter, Message, SearchMode};
use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::{Document, FileId, InvertedIndex};

const SEARCHER_THREADS: usize = 12;
const SEARCHES_PER_THREAD: usize = 15;
const UPDATER_THREADS: usize = 4;
const UPDATES_PER_THREAD: usize = 5;

#[test]
fn sixteen_threads_mixed_search_and_dynamics_against_four_workers() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(77));
    let seed: &[u8] = b"pool stress seed";
    let owner = DataOwner::new(seed, RsseParams::default());
    let server = CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
    let handle = ServerHandle::spawn_pool(server, 4, 32);
    assert_eq!(handle.num_workers(), 4);

    // 12 searcher threads + 4 updater threads = 16 concurrent clients.
    std::thread::scope(|scope| {
        for _ in 0..SEARCHER_THREADS {
            let client = handle.client();
            let user = owner.authorize_user();
            scope.spawn(move || {
                for i in 0..SEARCHES_PER_THREAD {
                    // Alternate protocols so read paths for both indexes
                    // are exercised under contention.
                    let mode = if i % 3 == 0 {
                        SearchMode::BasicEntries
                    } else {
                        SearchMode::Rsse
                    };
                    let req = user.search_request("network", Some(5), mode).unwrap();
                    let resp = client.call(req).expect("search reply lost");
                    match (mode, resp) {
                        (SearchMode::Rsse, Message::RsseResponse { ranking, .. }) => {
                            assert!(!ranking.is_empty());
                        }
                        (SearchMode::BasicEntries, Message::BasicEntriesResponse { scores }) => {
                            assert!(!scores.is_empty());
                        }
                        (_, other) => panic!("wrong response type: {other:?}"),
                    }
                }
            });
        }
        for t in 0..UPDATER_THREADS {
            let client = handle.client();
            let documents = corpus.documents();
            scope.spawn(move || {
                // Each updater owns its scheme/updater pair (they are not
                // Sync); all derive from the same master seed.
                let scheme = Rsse::new(seed, RsseParams::default());
                let plain_index = InvertedIndex::build(documents);
                let updater = scheme.updater_for(&plain_index).unwrap();
                let crypter = FileCrypter::new(seed);
                for u in 0..UPDATES_PER_THREAD {
                    let id = 100_000 + (t as u64) * 100 + u as u64;
                    let doc =
                        Document::new(FileId::new(id), format!("network stress update {t} {u}"));
                    let update = updater.add_document(&doc).unwrap();
                    let ack = client
                        .call(Message::Update {
                            rsse_lists: update.into_parts(),
                            files: vec![crypter.encrypt(&doc)],
                        })
                        .expect("update reply lost");
                    let Message::UpdateAck { files_added, .. } = ack else {
                        panic!("wrong response type: {ack:?}");
                    };
                    assert_eq!(files_added, 1);
                }
            });
        }
    });

    // After the storm: every update must be visible to a fresh search.
    let client = handle.client();
    let user = owner.authorize_user();
    let req = user
        .search_request("network", None, SearchMode::Rsse)
        .unwrap();
    let Message::RsseResponse { ranking, .. } = client.call(req).unwrap() else {
        panic!("wrong response type");
    };
    for t in 0..UPDATER_THREADS as u64 {
        for u in 0..UPDATES_PER_THREAD as u64 {
            let id = 100_000 + t * 100 + u;
            assert!(
                ranking.iter().any(|(f, _)| *f == id),
                "update {id} lost under concurrency"
            );
        }
    }

    // The audit log agrees with what the clients sent.
    let report = handle.server().serving_report();
    let searches = (SEARCHER_THREADS * SEARCHES_PER_THREAD) as u64 + 1;
    let updates = (UPDATER_THREADS * UPDATES_PER_THREAD) as u64;
    assert_eq!(report.searches, searches);
    assert_eq!(report.updates, updates);
    assert_eq!(report.rejected, 0);

    // Clean shutdown: all four workers join, and the summed served counts
    // equal the total number of calls — no request was dropped or double
    // counted.
    assert_eq!(handle.shutdown(), searches + updates);
}
