//! Ranking correctness against plaintext oracles.
//!
//! The basic scheme ranks on exact scores, so it must reproduce the
//! plaintext TF/length order exactly. RSSE ranks on quantized levels, so it
//! must reproduce the plaintext order *up to level resolution* — any
//! inversion in the server's order must be within the same quantized level.

use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::score::scores_for_term;
use rsse::ir::{FileId, InvertedIndex};
use rsse::sse::{BasicScheme, PaddingPolicy};
use std::collections::HashMap;

fn workload(seed: u64) -> (InvertedIndex, Vec<String>) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(seed));
    let index = InvertedIndex::build(corpus.documents());
    let keywords = vec!["network".into(), "protocol".into(), "cipher".into()];
    (index, keywords)
}

/// Plaintext oracle: files ranked by raw score descending, ties by id.
fn oracle(index: &InvertedIndex, term: &str) -> Vec<(FileId, f64)> {
    let mut scored = scores_for_term(index, term);
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored
}

#[test]
fn basic_scheme_reproduces_exact_plaintext_ranking() {
    let (index, keywords) = workload(11);
    let scheme = BasicScheme::new(b"oracle seed");
    let enc = scheme
        .build_index(&index, PaddingPolicy::MaxPostingLen)
        .unwrap();
    for kw in &keywords {
        let t = scheme.trapdoor(kw).unwrap();
        let ranked = scheme.rank_entries(&t, enc.search(t.label()).unwrap());
        let want: Vec<FileId> = oracle(&index, kw).into_iter().map(|(f, _)| f).collect();
        let got: Vec<FileId> = ranked.into_iter().map(|r| r.file).collect();
        assert_eq!(got, want, "{kw}");
    }
}

#[test]
fn rsse_ranking_correct_up_to_level_resolution() {
    let (index, keywords) = workload(12);
    let scheme = Rsse::new(b"oracle seed", RsseParams::default());
    let enc = scheme.build_index_from(&index).unwrap();
    let quantizer = scheme.fit_quantizer(&index).unwrap();
    for kw in &keywords {
        let t = scheme.trapdoor(kw).unwrap();
        let got = enc.search(&t, None);
        let levels: HashMap<FileId, u64> = oracle(&index, kw)
            .into_iter()
            .map(|(f, s)| (f, quantizer.level(s)))
            .collect();
        assert_eq!(got.len(), levels.len(), "{kw}: result-set size");
        // Server order must be non-increasing in the true quantized level.
        let mut prev = u64::MAX;
        for r in &got {
            let lvl = levels[&r.file];
            assert!(
                lvl <= prev,
                "{kw}: file {} (level {lvl}) ranked after level {prev}",
                r.file
            );
            prev = lvl;
        }
    }
}

#[test]
fn rsse_and_basic_top_k_agree_up_to_level_ties() {
    let (index, _) = workload(13);
    let rsse = Rsse::new(b"same seed", RsseParams::default());
    let basic = BasicScheme::new(b"same seed");
    let rsse_idx = rsse.build_index_from(&index).unwrap();
    let basic_idx = basic
        .build_index(&index, PaddingPolicy::MaxPostingLen)
        .unwrap();
    let quantizer = rsse.fit_quantizer(&index).unwrap();

    let kw = "network";
    let rt = rsse.trapdoor(kw).unwrap();
    let bt = basic.trapdoor(kw).unwrap();
    let k = 10;
    let rsse_top: Vec<FileId> = rsse_idx
        .search(&rt, Some(k))
        .iter()
        .map(|r| r.file)
        .collect();
    let basic_top: Vec<FileId> = basic
        .top_k(&bt, basic_idx.search(bt.label()).unwrap(), k)
        .iter()
        .map(|r| r.file)
        .collect();

    // Both selections must have the same multiset of quantized levels
    // (they may pick different files *within* a level tie at the cut).
    let level_of = |f: FileId| {
        let raw = scores_for_term(&index, kw)
            .into_iter()
            .find(|(ff, _)| *ff == f)
            .unwrap()
            .1;
        quantizer.level(raw)
    };
    let mut a: Vec<u64> = rsse_top.iter().map(|&f| level_of(f)).collect();
    let mut b: Vec<u64> = basic_top.iter().map(|&f| level_of(f)).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "top-{k} level multisets diverge");
}

#[test]
fn finer_quantization_recovers_exact_order_more_often() {
    // Ablation: with more levels, RSSE's order approaches the exact one.
    let (index, _) = workload(14);
    let kw = "network";
    let exact: Vec<FileId> = oracle(&index, kw).into_iter().map(|(f, _)| f).collect();

    let raw: HashMap<FileId, f64> = scores_for_term(&index, kw).into_iter().collect();
    let mut inversions = Vec::new();
    for levels in [8u64, 128, 4096] {
        let params = RsseParams {
            levels,
            ..RsseParams::default()
        };
        let scheme = Rsse::new(b"ablation seed", params);
        let quantizer = scheme.fit_quantizer(&index).unwrap();
        let enc = scheme.build_index_from(&index).unwrap();
        let t = scheme.trapdoor(kw).unwrap();
        let got: Vec<FileId> = enc.search(&t, None).iter().map(|r| r.file).collect();
        // Count pairwise order disagreements against the exact ranking,
        // ignoring exact-score ties (unorderable by any scheme).
        let pos: HashMap<FileId, usize> = exact.iter().enumerate().map(|(i, f)| (*f, i)).collect();
        let mut inv = 0usize;
        for i in 0..got.len() {
            for j in i + 1..got.len() {
                if raw[&got[i]] == raw[&got[j]] {
                    continue;
                }
                if pos[&got[i]] > pos[&got[j]] {
                    inv += 1;
                    // Every surviving inversion must be a quantization tie:
                    // the two files share a level at this granularity.
                    assert_eq!(
                        quantizer.level(raw[&got[i]]),
                        quantizer.level(raw[&got[j]]),
                        "inversion across distinct levels at {levels} levels"
                    );
                }
            }
        }
        inversions.push(inv);
    }
    assert!(
        inversions[0] >= inversions[2],
        "inversions should shrink with finer levels: {inversions:?}"
    );
}

#[test]
fn owner_recovers_levels_for_every_keyword() {
    let (index, keywords) = workload(15);
    let scheme = Rsse::new(b"owner seed", RsseParams::default());
    let enc = scheme.build_index_from(&index).unwrap();
    let opse = *enc.opse_params().unwrap();
    let quantizer = scheme.fit_quantizer(&index).unwrap();
    // One decryptor for the whole sweep: its per-keyword OPM cache makes
    // repeated decryptions cheap, where `Rsse::decrypt_level` would
    // rebuild a cold OPM on every call.
    let decryptor = scheme.score_decryptor(opse);
    for kw in &keywords {
        let t = scheme.trapdoor(kw).unwrap();
        for r in enc.search(&t, Some(5)) {
            let lvl = decryptor.decrypt_level(kw, r.encrypted_score).unwrap();
            let raw = scores_for_term(&index, kw)
                .into_iter()
                .find(|(f, _)| *f == r.file)
                .unwrap()
                .1;
            assert_eq!(lvl, quantizer.level(raw), "{kw}/{}", r.file);
        }
    }
}
