//! Conjunctive multi-keyword ranked search (the §VIII extension), end to
//! end through the deployment.

use rsse::cloud::Deployment;
use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::InvertedIndex;

fn setup(seed: u64) -> (SyntheticCorpus, Deployment) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(seed));
    let cloud = Deployment::bootstrap(
        b"conjunctive master secret",
        RsseParams::default(),
        corpus.documents(),
    )
    .unwrap();
    (corpus, cloud)
}

#[test]
fn conjunction_returns_exactly_the_intersection() {
    let (corpus, cloud) = setup(61);
    let index = InvertedIndex::build(corpus.documents());
    let (docs, traffic) = cloud.conjunctive_search("network protocol", None).unwrap();
    assert_eq!(traffic.round_trips, 1);

    // Oracle: files containing both keywords.
    let net: std::collections::HashSet<_> = index
        .postings("network")
        .unwrap()
        .iter()
        .map(|p| p.file)
        .collect();
    let proto: std::collections::HashSet<_> = index
        .postings("protocol")
        .unwrap()
        .iter()
        .map(|p| p.file)
        .collect();
    let expected: std::collections::HashSet<_> = net.intersection(&proto).copied().collect();
    let got: std::collections::HashSet<_> = docs.iter().map(|d| d.id()).collect();
    assert_eq!(got, expected);
}

#[test]
fn conjunctive_top_k_is_a_ranking_prefix() {
    let (_, cloud) = setup(62);
    let (all, _) = cloud.conjunctive_search("network protocol", None).unwrap();
    let (top, _) = cloud
        .conjunctive_search("network protocol", Some(3))
        .unwrap();
    assert_eq!(top.len(), 3.min(all.len()));
    for (a, b) in top.iter().zip(&all) {
        assert_eq!(a.id(), b.id());
    }
}

#[test]
fn single_keyword_conjunction_equals_plain_search_set() {
    let (_, cloud) = setup(63);
    let (conj, _) = cloud.conjunctive_search("network", None).unwrap();
    let (plain, _) = cloud.rsse_search("network", None).unwrap();
    let a: std::collections::HashSet<_> = conj.iter().map(|d| d.id()).collect();
    let b: std::collections::HashSet<_> = plain.iter().map(|d| d.id()).collect();
    assert_eq!(a, b);
}

#[test]
fn disjoint_keywords_yield_empty() {
    let (_, cloud) = setup(64);
    let (docs, _) = cloud
        .conjunctive_search("network zebrawordle", None)
        .unwrap();
    // "zebrawordle" has no posting list: intersection is empty.
    assert!(docs.is_empty());
    assert!(cloud.conjunctive_search("the of", None).is_err());
}

#[test]
fn exact_rerank_agrees_with_dominance() {
    // The owner-side exact re-ranking must respect per-keyword dominance.
    let (corpus, _) = setup(65);
    let index = InvertedIndex::build(corpus.documents());
    let scheme = Rsse::new(b"conjunctive master secret", RsseParams::default());
    let enc = scheme.build_index_from(&index).unwrap();
    let opse = *enc.opse_params().unwrap();
    let t = scheme.multi_trapdoor("network protocol").unwrap();
    let hits = enc.search_conjunctive(&t, None);
    if hits.len() < 2 {
        return; // corpus too sparse for this seed — covered by unit tests
    }
    let dfs = [
        index.document_frequency("network"),
        index.document_frequency("protocol"),
    ];
    let exact = scheme
        .rerank_conjunctive(
            &["network", "protocol"],
            &hits,
            opse,
            &dfs,
            index.num_docs(),
        )
        .unwrap();
    assert_eq!(exact.len(), hits.len());
    // Scores are finite and sorted descending.
    let mut prev = f64::INFINITY;
    for (_, s) in &exact {
        assert!(s.is_finite());
        assert!(*s <= prev);
        prev = *s;
    }
}

// ---------------------------------------------------------------------------
// Equivalence suite: the conjunctive pushdown must be invisible across
// every serving configuration. One random schedule of searches and
// updates drives five deployments built from the same corpus — in-memory
// with the conjunctive cache on, cache off, the on-disk segment backend,
// the generational store, and a sharded scatter-gather over 1–4 shards —
// and every conjunctive ranking must be byte-identical across all of
// them: same files, same per-keyword mapped scores, same tie order, same
// truncation.
// ---------------------------------------------------------------------------

use proptest::collection::vec;
use proptest::prelude::*;
use rsse::cloud::{CloudServer, FileCrypter, PoolOptions, ShardedDeployment};
use rsse::ir::{Document, FileId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A tiny vocabulary so random conjunctions keep intersecting the same
/// posting lists; every word survives the tokenizer.
const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "delta", "omega"];

/// Unique temp paths so parallel proptest cases never collide.
fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rsse_conj_eq_{tag}_{}_{n}", std::process::id()))
}

fn vocab_corpus(seed: u64, word_ids: &[Vec<usize>]) -> Vec<Document> {
    word_ids
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let text = ids.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
            let id = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Document::new(FileId::new(id), text)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn conjunctive_rankings_are_byte_identical_across_backends_caches_and_shards(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 4..14),
        steps in vec((0u8..6, 0usize..5, 0usize..5, 0u32..6), 1..12),
        num_shards in 1usize..5,
    ) {
        let docs = vocab_corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();

        let mem = Deployment::bootstrap(&master, params, &docs).unwrap();
        let nocache = Deployment::bootstrap_with_cache(&master, params, &docs, 0).unwrap();
        let seg_path = temp_path("seg");
        let seg = Deployment::bootstrap_segmented(
            &master, params, &docs, &seg_path, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap();
        let gen_dir = temp_path("gen");
        let gen = Deployment::bootstrap_generational(
            &master, params, &docs, &gen_dir, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap();
        let sharded = ShardedDeployment::bootstrap(
            &master, params, &docs, num_shards, PoolOptions::new(1, 16),
        ).unwrap();
        let partitioner = sharded.partitioner();

        let scheme = Rsse::new(&master, params);
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 41;
        for &(kind, w1, w2, k) in &steps {
            let query = format!("{} {}", VOCAB[w1], VOCAB[w2]);
            if kind % 3 == 1 {
                // Grow a document holding both words: it joins the
                // intersection, and every cache layer must notice.
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{} update {next_id} {}", VOCAB[w1], VOCAB[w2]),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                let file = crypter.encrypt(&doc);
                mem.server().apply_update(update.clone(), vec![file.clone()]);
                nocache.server().apply_update(update.clone(), vec![file.clone()]);
                seg.server().apply_update(update.clone(), vec![file.clone()]);
                gen.server().apply_update(update.clone(), vec![file.clone()]);
                let shard = partitioner.shard_of(doc.id());
                sharded.shard_server(shard).unwrap().apply_update(update, vec![file]);
                continue;
            }
            // Search both keyword orders so cache hits serve permuted
            // entries; repeat queries hit the caches filled above.
            let top_k = (k > 0).then_some(k);
            let (want, want_docs, _) = mem.conjunctive_search_ranked(&query, top_k).unwrap();
            let (got, _, _) = nocache.conjunctive_search_ranked(&query, top_k).unwrap();
            prop_assert_eq!(&got, &want, "cache-off diverged for {:?}", &query);
            let (got, _, _) = seg.conjunctive_search_ranked(&query, top_k).unwrap();
            prop_assert_eq!(&got, &want, "segment diverged for {:?}", &query);
            let (got, _, _) = gen.conjunctive_search_ranked(&query, top_k).unwrap();
            prop_assert_eq!(&got, &want, "generational diverged for {:?}", &query);
            let (sharded_docs, outcome) = sharded.conjunctive_search(&query, top_k).unwrap();
            prop_assert!(outcome.is_complete());
            prop_assert_eq!(&outcome.ranking, &want, "sharded diverged for {:?}", &query);
            let want_ids: Vec<_> = want_docs.iter().map(Document::id).collect();
            let got_ids: Vec<_> = sharded_docs.iter().map(Document::id).collect();
            prop_assert_eq!(got_ids, want_ids, "sharded files diverged for {:?}", &query);
        }

        // Final sweep: every two-word conjunction, unlimited and
        // truncated, in both keyword orders.
        for w1 in VOCAB {
            for w2 in VOCAB {
                let query = format!("{w1} {w2}");
                for top_k in [None, Some(2)] {
                    let (want, _, _) = mem.conjunctive_search_ranked(&query, top_k).unwrap();
                    let (got, _, _) = nocache.conjunctive_search_ranked(&query, top_k).unwrap();
                    prop_assert_eq!(&got, &want, "cache-off sweep {:?}", &query);
                    let (got, _, _) = seg.conjunctive_search_ranked(&query, top_k).unwrap();
                    prop_assert_eq!(&got, &want, "segment sweep {:?}", &query);
                    let (got, _, _) = gen.conjunctive_search_ranked(&query, top_k).unwrap();
                    prop_assert_eq!(&got, &want, "generational sweep {:?}", &query);
                    let (_, outcome) = sharded.conjunctive_search(&query, top_k).unwrap();
                    prop_assert_eq!(&outcome.ranking, &want, "sharded sweep {:?}", &query);
                }
            }
        }
        sharded.shutdown();
        let _ = std::fs::remove_file(&seg_path);
        let _ = std::fs::remove_dir_all(&gen_dir);
    }
}

/// The server-side conjunctive cache serves hits byte-identical to the
/// miss that filled them, shares one entry across keyword orderings, and
/// is flushed by updates — observable through its hit/miss counters.
#[test]
fn conjunctive_cache_counters_track_fills_hits_and_invalidation() {
    let (_, cloud) = setup(66);
    let stats = cloud.server().conjunctive_cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 0));

    let (first, _, _) = cloud
        .conjunctive_search_ranked("network protocol", Some(5))
        .unwrap();
    let stats = cloud.server().conjunctive_cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1), "first query fills");

    let (again, _, _) = cloud
        .conjunctive_search_ranked("network protocol", Some(5))
        .unwrap();
    assert_eq!(again, first, "a hit must be byte-identical to its fill");
    let stats = cloud.server().conjunctive_cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));

    // The reversed keyword order shares the entry, scores permuted back.
    let (swapped, _, _) = cloud
        .conjunctive_search_ranked("protocol network", Some(5))
        .unwrap();
    let stats = cloud.server().conjunctive_cache_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (2, 1),
        "order-erased key shares the entry"
    );
    let unswapped: Vec<(u64, Vec<u64>)> = swapped
        .iter()
        .map(|(id, scores)| (*id, scores.iter().copied().rev().collect()))
        .collect();
    assert_eq!(unswapped, first);

    // A smaller top_k is served as a prefix of the cached full ranking.
    let (prefix, _, _) = cloud
        .conjunctive_search_ranked("network protocol", Some(2))
        .unwrap();
    assert_eq!(prefix.len(), 2.min(first.len()));
    assert_eq!(&first[..prefix.len()], &prefix[..]);

    // An update flushes the cache: the next query misses and re-fills.
    let scheme = Rsse::new(b"conjunctive master secret", RsseParams::default());
    let docs: Vec<Document> = vec![Document::new(
        FileId::new(1 << 43),
        "network protocol freshly added".to_string(),
    )];
    let plain = InvertedIndex::build(&docs);
    let updater = scheme.updater_for(&plain).unwrap();
    let crypter = FileCrypter::new(b"conjunctive master secret");
    let update = updater.add_document(&docs[0]).unwrap();
    cloud
        .server()
        .apply_update(update, vec![crypter.encrypt(&docs[0])]);
    let (after, _, _) = cloud
        .conjunctive_search_ranked("network protocol", Some(50))
        .unwrap();
    let stats = cloud.server().conjunctive_cache_stats();
    assert_eq!(stats.misses, 2, "update invalidated the entry");
    assert!(stats.invalidations >= 1);
    assert!(
        after.iter().any(|(id, _)| *id == 1u64 << 43),
        "new member served"
    );
}
