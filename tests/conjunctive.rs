//! Conjunctive multi-keyword ranked search (the §VIII extension), end to
//! end through the deployment.

use rsse::cloud::Deployment;
use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::InvertedIndex;

fn setup(seed: u64) -> (SyntheticCorpus, Deployment) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(seed));
    let cloud = Deployment::bootstrap(
        b"conjunctive master secret",
        RsseParams::default(),
        corpus.documents(),
    )
    .unwrap();
    (corpus, cloud)
}

#[test]
fn conjunction_returns_exactly_the_intersection() {
    let (corpus, cloud) = setup(61);
    let index = InvertedIndex::build(corpus.documents());
    let (docs, traffic) = cloud.conjunctive_search("network protocol", None).unwrap();
    assert_eq!(traffic.round_trips, 1);

    // Oracle: files containing both keywords.
    let net: std::collections::HashSet<_> = index
        .postings("network")
        .unwrap()
        .iter()
        .map(|p| p.file)
        .collect();
    let proto: std::collections::HashSet<_> = index
        .postings("protocol")
        .unwrap()
        .iter()
        .map(|p| p.file)
        .collect();
    let expected: std::collections::HashSet<_> = net.intersection(&proto).copied().collect();
    let got: std::collections::HashSet<_> = docs.iter().map(|d| d.id()).collect();
    assert_eq!(got, expected);
}

#[test]
fn conjunctive_top_k_is_a_ranking_prefix() {
    let (_, cloud) = setup(62);
    let (all, _) = cloud.conjunctive_search("network protocol", None).unwrap();
    let (top, _) = cloud
        .conjunctive_search("network protocol", Some(3))
        .unwrap();
    assert_eq!(top.len(), 3.min(all.len()));
    for (a, b) in top.iter().zip(&all) {
        assert_eq!(a.id(), b.id());
    }
}

#[test]
fn single_keyword_conjunction_equals_plain_search_set() {
    let (_, cloud) = setup(63);
    let (conj, _) = cloud.conjunctive_search("network", None).unwrap();
    let (plain, _) = cloud.rsse_search("network", None).unwrap();
    let a: std::collections::HashSet<_> = conj.iter().map(|d| d.id()).collect();
    let b: std::collections::HashSet<_> = plain.iter().map(|d| d.id()).collect();
    assert_eq!(a, b);
}

#[test]
fn disjoint_keywords_yield_empty() {
    let (_, cloud) = setup(64);
    let (docs, _) = cloud
        .conjunctive_search("network zebrawordle", None)
        .unwrap();
    // "zebrawordle" has no posting list: intersection is empty.
    assert!(docs.is_empty());
    assert!(cloud.conjunctive_search("the of", None).is_err());
}

#[test]
fn exact_rerank_agrees_with_dominance() {
    // The owner-side exact re-ranking must respect per-keyword dominance.
    let (corpus, _) = setup(65);
    let index = InvertedIndex::build(corpus.documents());
    let scheme = Rsse::new(b"conjunctive master secret", RsseParams::default());
    let enc = scheme.build_index_from(&index).unwrap();
    let opse = *enc.opse_params().unwrap();
    let t = scheme.multi_trapdoor("network protocol").unwrap();
    let hits = enc.search_conjunctive(&t, None);
    if hits.len() < 2 {
        return; // corpus too sparse for this seed — covered by unit tests
    }
    let dfs = [
        index.document_frequency("network"),
        index.document_frequency("protocol"),
    ];
    let exact = scheme
        .rerank_conjunctive(
            &["network", "protocol"],
            &hits,
            opse,
            &dfs,
            index.num_docs(),
        )
        .unwrap();
    assert_eq!(exact.len(), hits.len());
    // Scores are finite and sorted descending.
    let mut prev = f64::INFINITY;
    for (_, s) in &exact {
        assert!(s.is_finite());
        assert!(*s <= prev);
        prev = *s;
    }
}
