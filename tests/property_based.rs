//! Property-based tests (proptest) over the core invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse::analysis::Histogram;
use rsse::cloud::Message;
use rsse::crypto::{SecretKey, Tape};
use rsse::hgd::Hypergeometric;
use rsse::ir::{Document, FileId, InvertedIndex, ScoreQuantizer, Tokenizer};
use rsse::opse::{Opm, OpseCipher, OpseParams};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OPSE is strictly order-preserving over any valid (M, N, key).
    #[test]
    fn opse_order_preservation(
        domain in 2u64..=64,
        range_bits in 7u32..=30,
        seed in any::<u64>(),
    ) {
        let params = OpseParams::new(domain, 1u64 << range_bits).unwrap();
        let cipher = OpseCipher::new(SecretKey::derive(&seed.to_be_bytes(), "p"), params);
        let mut prev = 0u64;
        for m in 1..=domain {
            let c = cipher.encrypt(m).unwrap();
            prop_assert!(c > prev, "m={m}: {c} <= {prev}");
            prop_assert!(c >= 1 && c <= params.range_size());
            prev = c;
        }
    }

    /// Decrypt inverts encrypt for every plaintext and key.
    #[test]
    fn opse_roundtrip(
        domain in 1u64..=64,
        extra_bits in 0u32..=20,
        seed in any::<u64>(),
    ) {
        let range = (domain << extra_bits).max(domain);
        let params = OpseParams::new(domain, range).unwrap();
        let cipher = OpseCipher::new(SecretKey::derive(&seed.to_be_bytes(), "r"), params);
        for m in 1..=domain {
            prop_assert_eq!(cipher.decrypt(cipher.encrypt(m).unwrap()).unwrap(), m);
        }
    }

    /// OPM: order across distinct plaintexts holds for arbitrary file ids,
    /// and every ciphertext decrypts to its plaintext.
    #[test]
    fn opm_order_and_roundtrip(
        seed in any::<u64>(),
        pairs in vec((1u64..=32, any::<u64>()), 1..20),
    ) {
        let params = OpseParams::new(32, 1 << 26).unwrap();
        let opm = Opm::new(SecretKey::derive(&seed.to_be_bytes(), "o"), params);
        let mapped: Vec<(u64, u64)> = pairs
            .iter()
            .map(|&(m, fid)| (m, opm.encrypt(m, &fid.to_be_bytes()).unwrap()))
            .collect();
        for &(m1, c1) in &mapped {
            prop_assert_eq!(opm.decrypt(c1).unwrap(), m1);
            for &(m2, c2) in &mapped {
                if m1 < m2 {
                    prop_assert!(c1 < c2, "{m1}->{c1} !< {m2}->{c2}");
                }
            }
        }
    }

    /// Hypergeometric inverse CDF: monotone in u, in-support, deterministic.
    #[test]
    fn hgd_inverse_cdf_properties(
        pop_bits in 4u32..=40,
        m in 1u64..=64,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let n = 1u64 << pop_bits;
        let m = m.min(n);
        let h = Hypergeometric::new(n, m, n / 2).unwrap();
        let (lo, hi) = h.support();
        let (ua, ub) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let ka = h.inverse_cdf(ua);
        let kb = h.inverse_cdf(ub);
        prop_assert!(ka <= kb);
        prop_assert!(ka >= lo && kb <= hi);
        prop_assert_eq!(ka, h.inverse_cdf(ua));
    }

    /// The quantizer is monotone and in-range for arbitrary score sets.
    #[test]
    fn quantizer_monotone(
        scores in vec(0.0f64..1e6, 1..50),
        levels in 1u64..=4096,
    ) {
        prop_assume!(scores.iter().any(|&s| s > 0.0));
        let q = ScoreQuantizer::fit(&scores, levels).unwrap();
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0u64;
        for &s in &sorted {
            let l = q.level(s);
            prop_assert!((1..=levels).contains(&l));
            prop_assert!(l >= prev);
            prev = l;
        }
    }

    /// Wire codec: FetchFiles round-trips for arbitrary id lists.
    #[test]
    fn codec_fetch_roundtrip(ids in vec(any::<u64>(), 0..100)) {
        let msg = Message::FetchFiles { ids };
        let decoded = Message::decode(msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Wire codec: arbitrary byte soup never panics the decoder.
    #[test]
    fn codec_never_panics_on_garbage(data in vec(any::<u8>(), 0..300)) {
        let _ = Message::decode(bytes::BytesMut::from(&data[..]));
    }

    /// Tape determinism and uniform_below bounds for arbitrary inputs.
    #[test]
    fn tape_uniformity_bounds(
        seed in any::<u64>(),
        transcript in vec(any::<u8>(), 0..64),
        n in 1u64..=u64::MAX,
    ) {
        let key = SecretKey::derive(&seed.to_be_bytes(), "tape");
        let mut t1 = Tape::new(&key, &transcript);
        let mut t2 = Tape::new(&key, &transcript);
        let v = t1.uniform_below(n);
        prop_assert!(v < n);
        prop_assert_eq!(v, t2.uniform_below(n));
    }

    /// Histogram totals: every finite in-range sample is counted once.
    #[test]
    fn histogram_conserves_mass(
        samples in vec(0u64..1000, 0..200),
        bins in 1usize..64,
    ) {
        let h = Histogram::of_u64(&samples, bins, 0, 1000);
        prop_assert_eq!(h.total(), samples.len() as u64);
    }

    /// Top-k equals sort-then-truncate for any k over any corpus slice.
    #[test]
    fn topk_equals_sorted_prefix(seed in any::<u64>(), k in 0usize..40) {
        let docs: Vec<Document> = (0..20)
            .map(|i| {
                let reps = (seed.wrapping_mul(i + 1) % 7) + 1;
                let mut text = "filler words ".repeat((i % 5 + 1) as usize);
                for _ in 0..reps {
                    text.push_str(" target");
                }
                Document::new(FileId::new(i), text)
            })
            .collect();
        let scheme = rsse::core::Rsse::new(
            &seed.to_be_bytes(),
            rsse::core::RsseParams::default(),
        );
        let enc = scheme.build_index(&docs).unwrap();
        let t = scheme.trapdoor("target").unwrap();
        let all = enc.search(&t, None);
        let top = enc.search(&t, Some(k));
        prop_assert_eq!(&top[..], &all[..k.min(all.len())]);
    }

    /// Tokenizer output is always lowercase, non-empty, stop-word-free.
    #[test]
    fn tokenizer_invariants(text in "\\PC{0,200}") {
        let tok = Tokenizer::new();
        for token in tok.tokenize(&text) {
            prop_assert!(!token.is_empty());
            prop_assert!(token.chars().count() >= 2);
            prop_assert_eq!(token.to_lowercase(), token.clone());
            prop_assert!(!Tokenizer::is_stop_word(&token));
        }
    }

    /// Index construction: posting lists and doc lengths stay consistent
    /// for arbitrary small corpora.
    #[test]
    fn inverted_index_consistency(texts in vec("[a-z]{2,8}( [a-z]{2,8}){0,20}", 1..10)) {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document::new(FileId::new(i as u64), t.clone()))
            .collect();
        let index = InvertedIndex::build(&docs);
        for (term, postings) in index.iter() {
            prop_assert!(!term.is_empty());
            for p in postings {
                prop_assert!(p.term_frequency >= 1);
                let len = index.doc_length(p.file).unwrap();
                prop_assert!(p.term_frequency <= len);
            }
        }
    }
}
