//! Shard-equivalence harness: the sharding layer's tentpole guarantee,
//! pinned property-based.
//!
//! For random corpora, keywords, result limits, and shard counts 1–8, the
//! sharded scatter-gather deployment must return a ranking
//! **byte-identical** to the single-server `search` under the same master
//! seed — same OPM ciphertexts, same tie-breaking, same truncation. This
//! holds because the owner partitions the *globally built* encrypted
//! index (per-`(keyword, file)` OPM seeding survives the split) and the
//! router's k-way merge reproduces `RankedResult`'s total order exactly;
//! see `crates/cloud/src/shard.rs` and DESIGN.md §6.2.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse::cloud::{FileCrypter, PoolOptions, RouterOptions, ShardedDeployment};
use rsse::core::{Rsse, RsseParams};
use rsse::ir::{Document, FileId, InvertedIndex};

/// A tiny vocabulary, so random corpora collide on keywords and tie on
/// term frequencies — the regime where merge tie-breaking can actually go
/// wrong. Every word survives the tokenizer (3+ letters, no stop words).
const VOCAB: [&str; 6] = ["alpha", "beta", "gamma", "delta", "omega", "sigma"];

/// Documents with sparse, arbitrary-looking file ids (to exercise the
/// partitioner's hash, not just small consecutive ids) over `VOCAB`.
fn corpus(seed: u64, word_ids: &[Vec<usize>]) -> Vec<Document> {
    word_ids
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let text = ids.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
            // Odd multiplier: distinct ids for distinct i, scattered by seed.
            let id = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Document::new(FileId::new(id), text)
        })
        .collect()
}

proptest! {
    // Each case boots up to 8 real worker pools; keep the case count
    // modest and the corpora small.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sharded scatter-gather ranking == single-server ranking, byte for
    /// byte, for shard counts 1–8.
    #[test]
    fn sharded_ranking_is_byte_identical_to_single_server(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..6, 1..12), 3..16),
        num_shards in 1usize..=8,
        keyword in 0usize..6,
        raw_k in 0u32..21,
    ) {
        // The vendored proptest shim has no Option strategy; fold the
        // "no limit" case into the top of the integer range instead.
        let k = (raw_k < 20).then_some(raw_k);
        let docs = corpus(seed, &word_ids);

        // Reference: the unsharded index searched directly.
        let scheme = Rsse::new(&seed.to_be_bytes(), RsseParams::default());
        let single = scheme.build_index(&docs).unwrap();
        let trapdoor = scheme.trapdoor(VOCAB[keyword]).unwrap();
        let reference = single.search(&trapdoor, k.map(|k| k as usize));

        // Same master seed, same corpus, partitioned across real pools.
        let cloud = ShardedDeployment::bootstrap(
            &seed.to_be_bytes(),
            RsseParams::default(),
            &docs,
            num_shards,
            PoolOptions::new(1, 16),
        )
        .unwrap();
        let (ranked_docs, outcome) = cloud.rsse_search(VOCAB[keyword], k).unwrap();

        // Byte-identical ranking: file ids, OPM ciphertexts, tie order.
        prop_assert_eq!(&outcome.ranking, &reference);
        // The files ride along in exactly the merged rank order.
        let got_ids: Vec<u64> = ranked_docs.iter().map(|d| d.id().as_u64()).collect();
        let want_ids: Vec<u64> = reference.iter().map(|r| r.file.as_u64()).collect();
        prop_assert_eq!(got_ids, want_ids);
        // No degradation on a healthy deployment, and every shard metered.
        prop_assert!(outcome.is_complete());
        prop_assert_eq!(outcome.shards_ok as usize, num_shards);
        prop_assert_eq!(outcome.traffic.shard_legs as usize, num_shards);
        prop_assert_eq!(outcome.traffic.round_trips as usize, num_shards);
        prop_assert_eq!(outcome.traffic.error_frames, 0);

        // Scatter-gather is deterministic: a second query returns the same
        // bytes (worker scheduling must not leak into results).
        let (_, again) = cloud.rsse_search(VOCAB[keyword], k).unwrap();
        prop_assert_eq!(&again.ranking, &reference);

        cloud.shutdown();
    }
}

proptest! {
    // Each case boots two real deployments (one with replica pools); keep
    // the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Routing features on (label-filter pruning, merged-result cache,
    /// replica reads) == routing features off, byte for byte, across
    /// random search/update interleavings — including the windows where
    /// filters and the merged cache go stale mid-run.
    #[test]
    fn tuned_routing_is_byte_identical_under_interleaved_updates(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..6, 1..10), 3..12),
        num_shards in 1usize..=4,
        steps in vec((0u8..4, 0usize..6, 0u32..8), 1..16),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();

        // Reference: the same corpus and master seed behind a plain
        // full-scatter router (all features off).
        let plain = ShardedDeployment::bootstrap(
            &master, params, &docs, num_shards, PoolOptions::new(1, 16),
        ).unwrap();
        let tuned = ShardedDeployment::bootstrap_tuned(
            &master, params, &docs, num_shards, PoolOptions::new(1, 16),
            RouterOptions::new()
                .with_pruning()
                .with_merged_cache(1 << 20)
                .with_replicas(2),
        ).unwrap();
        let partitioner = tuned.partitioner();

        // Owner-side update machinery, shared: the same IndexUpdate
        // (cloned) lands on both deployments' owning shard.
        let scheme = Rsse::new(&master, params);
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 42;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 2 == 0 {
                let top_k = (k > 0).then_some(k);
                let (_, want) = plain.rsse_search(word, top_k).unwrap();
                // Twice: the second tuned scatter may be a merged-cache
                // hit and/or prune differently — same bytes either way.
                for round in 0..2 {
                    let (_, got) = tuned.rsse_search(word, top_k).unwrap();
                    prop_assert!(got.is_complete());
                    prop_assert_eq!(
                        &got.ranking, &want.ranking,
                        "tuned ranking diverged for {} (round {})", word, round
                    );
                    // Every shard is accounted for: answered, pruned, or
                    // served from the merged cache (zero legs).
                    let legs = got.traffic.shard_legs + got.traffic.pruned_legs;
                    prop_assert!(
                        legs as usize == num_shards || legs == 0,
                        "unaccounted legs: {:?}", got.traffic
                    );
                }
            } else {
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} routed update {next_id}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                let file = crypter.encrypt(&doc);
                let shard = partitioner.shard_of(doc.id());
                tuned.shard_server(shard).unwrap()
                    .apply_update(update.clone(), vec![file.clone()]);
                plain.shard_server(shard).unwrap()
                    .apply_update(update, vec![file]);
            }
        }

        // Final sweep: every keyword, unlimited — catches stale filter
        // or cache state the random schedule filled but never re-read.
        for word in VOCAB {
            let (_, want) = plain.rsse_search(word, None).unwrap();
            let (_, got) = tuned.rsse_search(word, None).unwrap();
            prop_assert_eq!(
                &got.ranking, &want.ranking,
                "final tuned ranking diverged for {}", word
            );
        }

        plain.shutdown();
        tuned.shutdown();
    }
}
