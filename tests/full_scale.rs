//! Full-scale run at the paper's complete corpus size (5563 documents,
//! the RFC database cardinality). Expensive, so ignored by default:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use rsse::cloud::Deployment;
use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::InvertedIndex;

#[test]
#[ignore = "builds a 5563-document index; run explicitly with --ignored"]
fn rfc_scale_index_and_search() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::rfc_like(2026));
    assert_eq!(corpus.documents().len(), 5563);
    let index = InvertedIndex::build(corpus.documents());

    let scheme = Rsse::new(b"full scale seed", RsseParams::default());
    let (enc, report) = scheme.build_index_with_report(&index).unwrap();
    assert_eq!(report.num_docs, 5563);
    assert!(report.num_keywords > 5_000);

    // Hot-keyword search at scale: still sub-50ms per query.
    let t = scheme.trapdoor("network").unwrap();
    let started = std::time::Instant::now();
    let top = enc.search(&t, Some(50));
    let elapsed = started.elapsed();
    assert_eq!(top.len(), 50);
    assert!(
        elapsed.as_millis() < 500,
        "search took {elapsed:?} at RFC scale"
    );

    // Rare keyword behaves too.
    let t = scheme.trapdoor("multicast").unwrap();
    let hits = enc.search(&t, None);
    assert!(!hits.is_empty());
    assert!(hits.len() < 1000);
}

#[test]
#[ignore = "bootstraps a full deployment over 5563 documents"]
fn rfc_scale_deployment_protocols() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::rfc_like(7));
    let cloud = Deployment::bootstrap(
        b"full scale seed",
        RsseParams::default(),
        corpus.documents(),
    )
    .unwrap();
    let (docs, traffic) = cloud.rsse_search("network", Some(20)).unwrap();
    assert_eq!(docs.len(), 20);
    assert_eq!(traffic.round_trips, 1);
    let (_, naive) = cloud.basic_search_full("multicast").unwrap();
    assert!(naive.total_bytes() > traffic.total_bytes() / 10);
}
