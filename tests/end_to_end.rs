//! End-to-end protocol tests over the full deployment: owner → server →
//! user, through the real wire codec.

use rsse::cloud::{Deployment, NetworkParams};
use rsse::core::RsseParams;
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::InvertedIndex;

fn deployment(seed: u64) -> (SyntheticCorpus, Deployment) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(seed));
    let cloud = Deployment::bootstrap(
        b"integration master secret",
        RsseParams::default(),
        corpus.documents(),
    )
    .expect("bootstrap");
    (corpus, cloud)
}

#[test]
fn rsse_and_basic_full_agree_on_result_sets() {
    let (corpus, cloud) = deployment(1);
    let index = InvertedIndex::build(corpus.documents());
    for kw in ["network", "protocol", "cipher"] {
        let (rsse_docs, _) = cloud.rsse_search(kw, None).unwrap();
        let (basic_docs, _) = cloud.basic_search_full(kw).unwrap();
        let mut a: Vec<u64> = rsse_docs.iter().map(|d| d.id().as_u64()).collect();
        let mut b: Vec<u64> = basic_docs.iter().map(|d| d.id().as_u64()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "{kw}: schemes disagree on the match set");
        assert_eq!(a.len() as u64, index.document_frequency(kw), "{kw}");
    }
}

#[test]
fn retrieved_documents_decrypt_to_originals() {
    let (corpus, cloud) = deployment(2);
    let (docs, _) = cloud.rsse_search("network", Some(7)).unwrap();
    assert_eq!(docs.len(), 7);
    for doc in docs {
        let original = corpus
            .documents()
            .iter()
            .find(|d| d.id() == doc.id())
            .expect("retrieved an outsourced file");
        assert_eq!(original.text(), doc.text());
    }
}

#[test]
fn top_k_is_a_prefix_of_the_full_rsse_ranking() {
    let (_, cloud) = deployment(3);
    let (all, _) = cloud.rsse_search("network", None).unwrap();
    for k in [1u32, 5, 20, 100] {
        let (top, _) = cloud.rsse_search("network", Some(k)).unwrap();
        let want: Vec<u64> = all
            .iter()
            .take(k as usize)
            .map(|d| d.id().as_u64())
            .collect();
        let got: Vec<u64> = top.iter().map(|d| d.id().as_u64()).collect();
        assert_eq!(got, want, "k={k}");
    }
}

#[test]
fn basic_two_round_matches_basic_full_prefix() {
    let (_, cloud) = deployment(4);
    let k = 9;
    let (full, _) = cloud.basic_search_full("network").unwrap();
    let (two, _) = cloud.basic_search_top_k("network", k).unwrap();
    let want: Vec<u64> = full.iter().take(k).map(|d| d.id().as_u64()).collect();
    let got: Vec<u64> = two.iter().map(|d| d.id().as_u64()).collect();
    assert_eq!(got, want);
}

#[test]
fn protocol_cost_shape_matches_the_paper() {
    let (_, cloud) = deployment(5);
    let k = 10;
    let (_, rsse) = cloud.rsse_search("network", Some(k)).unwrap();
    let (_, naive) = cloud.basic_search_full("network").unwrap();
    let (_, two_round) = cloud.basic_search_top_k("network", k as usize).unwrap();

    // One round for RSSE and naive; two for the top-k basic protocol.
    assert_eq!(rsse.round_trips, 1);
    assert_eq!(naive.round_trips, 1);
    assert_eq!(two_round.round_trips, 2);

    // "network" matches all 200 docs, so naive hauls ~20x more bytes.
    assert!(
        naive.total_bytes() > 5 * rsse.total_bytes(),
        "naive {} vs rsse {}",
        naive.total_bytes(),
        rsse.total_bytes()
    );
    // The two-round protocol saves bandwidth over naive too.
    assert!(two_round.total_bytes() < naive.total_bytes());

    // On a WAN, the extra round trip costs the two-round protocol real
    // latency versus RSSE at equal k.
    let wan = NetworkParams::wan();
    assert!(two_round.simulated_time(&wan) > rsse.simulated_time(&wan));
}

#[test]
fn unknown_keyword_is_empty_everywhere() {
    let (_, cloud) = deployment(6);
    let (a, _) = cloud.rsse_search("xylophone", Some(5)).unwrap();
    let (b, _) = cloud.basic_search_full("xylophone").unwrap();
    let (c, _) = cloud.basic_search_top_k("xylophone", 5).unwrap();
    assert!(a.is_empty() && b.is_empty() && c.is_empty());
}

#[test]
fn stop_word_query_fails_cleanly() {
    let (_, cloud) = deployment(7);
    assert!(cloud.rsse_search("the", Some(5)).is_err());
    assert!(cloud.basic_search_full("of and").is_err());
}

#[test]
fn setup_traffic_accounts_for_index_and_files() {
    let (corpus, cloud) = deployment(8);
    // The outsourcing upload must at least carry the encrypted corpus.
    assert!(cloud.setup_traffic.bytes_up > corpus.total_bytes());
    assert_eq!(cloud.setup_traffic.bytes_down, 0);
}

#[test]
fn concurrent_users_share_the_server() {
    let (_, cloud) = deployment(9);
    let reference: Vec<u64> = cloud
        .rsse_search("network", Some(10))
        .unwrap()
        .0
        .iter()
        .map(|d| d.id().as_u64())
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let cloud = &cloud;
            let reference = &reference;
            scope.spawn(move || {
                for _ in 0..5 {
                    let got: Vec<u64> = cloud
                        .rsse_search("network", Some(10))
                        .unwrap()
                        .0
                        .iter()
                        .map(|d| d.id().as_u64())
                        .collect();
                    assert_eq!(&got, reference);
                }
            });
        }
    });
}
