//! Backend-equivalence harness: the storage engine must be *invisible*.
//!
//! The index layer dispatches over pluggable containers — the in-memory
//! `MemBackend` arena, the on-disk `SegmentBackend` (base file + delta
//! overlay), and the segment after `compact()` folded the overlay back
//! into a fresh file. All three hold the same OPM ciphertexts, so for
//! random interleavings of searches, score-dynamics updates, and
//! compactions they must return rankings **byte-identical** in every
//! respect: same files, same encrypted scores, same tie order, same
//! truncation. The generational store (generation stack + L0 delta
//! flushes + *live* compaction) is held to the same standard, including
//! mid-flip: a search issued between `begin_live_compact` and the
//! install must match the in-memory ranking byte-for-byte. The cloud
//! layer too — a `Deployment` warm-restarted from a saved segment or a
//! generation directory must match the in-memory deployment down to the
//! traffic counters, and a sharded deployment serving one store per
//! shard must match the in-memory shards — caches enabled, exactly as
//! deployed. See DESIGN.md §6.4 and §6.6.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse::cloud::{
    CloudServer, Deployment, FileCrypter, Message, PoolOptions, SearchMode, ShardedDeployment,
};
use rsse::core::{BackendKind, Rsse, RsseIndex, RsseParams};
use rsse::ir::{Document, FileId, InvertedIndex};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A tiny vocabulary so random interleavings keep hitting the same
/// posting lists — the regime where overlay merges and compactions
/// actually interleave with reads. Every word survives the tokenizer.
const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "delta", "omega"];

/// Unique temp paths so parallel proptest cases never collide on a
/// segment file or directory.
fn temp_path(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("rsse_backend_eq_{tag}_{}_{n}", std::process::id()))
}

fn corpus(seed: u64, word_ids: &[Vec<usize>]) -> Vec<Document> {
    word_ids
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let text = ids.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
            let id = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Document::new(FileId::new(id), text)
        })
        .collect()
}

fn search_ranking(server: &CloudServer, request: Message) -> Vec<(u64, u64)> {
    match server.handle(request).unwrap() {
        Message::RsseResponse { ranking, .. } => ranking,
        other => panic!("expected RsseResponse, got {other:?}"),
    }
}

// One step of a random schedule is `(kind, keyword, k)`: `kind % 3 == 0`
// searches `VOCAB[keyword]` with limit `k` (0 meaning unlimited), `== 1`
// appends a fresh document mentioning it (landing in the segment's delta
// overlay), and `== 2` compacts the segment then searches — so reads hit
// every overlay state: empty, populated, and freshly folded.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Core level: an index reopened from its saved segment, and one that
    /// keeps compacting, stay byte-identical to the in-memory original
    /// under interleaved searches and updates.
    #[test]
    fn mem_segment_and_compacted_rankings_are_byte_identical(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 3..12),
        steps in vec((0u8..6, 0usize..5, 0u32..8), 1..24),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();
        let scheme = Rsse::new(&master, params);
        let mut mem = scheme.build_index(&docs).unwrap();

        let seg_path = temp_path("core_seg");
        mem.save(std::fs::File::create(&seg_path).unwrap()).unwrap();
        let compact_path = temp_path("core_compact");
        std::fs::copy(&seg_path, &compact_path).unwrap();
        let mut seg = RsseIndex::open_segment(&seg_path).unwrap();
        let mut compacting = RsseIndex::open_segment(&compact_path).unwrap();
        let gen_dir = temp_path("core_gen");
        let mut gen = mem.save_generational(&gen_dir).unwrap();
        prop_assert_eq!(mem.backend_kind(), BackendKind::Mem);
        prop_assert_eq!(seg.backend_kind(), BackendKind::Segment);
        prop_assert_eq!(gen.backend_kind(), BackendKind::Generational);

        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let mut next_id = 1u64 << 40;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 3 == 1 {
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} report number {next_id} about {word}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                update.clone().apply_to(&mut mem);
                update.clone().apply_to(&mut seg);
                update.clone().apply_to(&mut gen);
                update.apply_to(&mut compacting);
                continue;
            }
            if kind % 3 == 2 {
                // Fold the overlay into a fresh file; the merged view must
                // not move by a byte.
                compacting.compact().unwrap();
                prop_assert_eq!(compacting.pending_overlay_entries(), 0);
                // Generational: flush the overlay into an L0 delta, then
                // run a *live* pass — and search in the window between
                // begin and install, where the old stack still serves.
                gen.flush_updates().unwrap();
                prop_assert_eq!(gen.pending_overlay_entries(), 0);
                if let Some(job) = gen.begin_live_compact().unwrap() {
                    let mid = scheme.trapdoor(word).unwrap();
                    prop_assert_eq!(
                        gen.search(&mid, None), mem.search(&mid, None),
                        "mid-compaction ranking diverged for {}", word
                    );
                    job.run().unwrap();
                }
            }
            let top_k = (k > 0).then_some(k as usize);
            let trapdoor = scheme.trapdoor(word).unwrap();
            let want = mem.search(&trapdoor, top_k);
            prop_assert_eq!(
                seg.search(&trapdoor, top_k), want.clone(),
                "segment ranking diverged for {} (k={:?})", word, top_k
            );
            prop_assert_eq!(
                gen.search(&trapdoor, top_k), want.clone(),
                "generational ranking diverged for {} (k={:?})", word, top_k
            );
            prop_assert_eq!(
                compacting.search(&trapdoor, top_k), want,
                "compacted ranking diverged for {} (k={:?})", word, top_k
            );
        }

        // Final sweep: every keyword, unlimited and truncated, plus the
        // full exported ciphertexts and the re-saved segment bytes.
        for word in VOCAB {
            let t = scheme.trapdoor(word).unwrap();
            for top_k in [None, Some(3)] {
                let want = mem.search(&t, top_k);
                prop_assert_eq!(seg.search(&t, top_k), want.clone(), "{}", word);
                prop_assert_eq!(gen.search(&t, top_k), want.clone(), "{}", word);
                prop_assert_eq!(compacting.search(&t, top_k), want, "{}", word);
            }
        }
        prop_assert_eq!(seg.export_parts(), mem.export_parts());
        prop_assert_eq!(gen.export_parts(), mem.export_parts());
        prop_assert_eq!(compacting.export_parts(), mem.export_parts());
        let mut mem_bytes = Vec::new();
        mem.save(&mut mem_bytes).unwrap();
        let mut seg_bytes = Vec::new();
        seg.save(&mut seg_bytes).unwrap();
        prop_assert_eq!(seg_bytes, mem_bytes, "re-saved segments must be byte-identical");
        // The generation directory is a durable replica of the same
        // content: flush the tail overlay and reopen cold.
        gen.flush_updates().unwrap();
        drop(gen);
        let reopened = RsseIndex::open_generational(&gen_dir).unwrap();
        prop_assert_eq!(reopened.export_parts(), mem.export_parts());

        let _ = std::fs::remove_file(&seg_path);
        let _ = std::fs::remove_file(&compact_path);
        let _ = std::fs::remove_dir_all(&gen_dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cloud level: a deployment warm-restarted from a saved segment
    /// (and one freshly bootstrapped onto the segment backend) matches
    /// the in-memory deployment — rankings *and* traffic counters — with
    /// the ranking cache enabled on all of them, across interleaved
    /// updates and compactions.
    #[test]
    fn segment_deployments_match_mem_deployment_rankings_and_traffic(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 3..12),
        steps in vec((0u8..6, 0usize..5, 0u32..8), 1..16),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();

        let mem = Deployment::bootstrap(&master, params, &docs).unwrap();
        // Persist the serving index, then restart warm from the file: no
        // Outsource message, no index rebuild.
        let seg_path = temp_path("deploy_seg");
        mem.save_segment(&seg_path).unwrap();
        let warm = Deployment::bootstrap_from_segment(
            &master, params, &docs, &seg_path, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap();
        prop_assert_eq!(warm.setup_traffic, Default::default(), "warm restart crosses no wire");
        // And a deployment that outsourced straight onto the segment
        // backend (persist-then-serve in one step).
        let built_path = temp_path("deploy_built");
        let built = Deployment::bootstrap_segmented(
            &master, params, &docs, &built_path, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap();
        // And a generational deployment: outsource onto the generation
        // store, shut it down, then warm-restart from the directory —
        // both generational boot paths in one arm.
        let gen_dir = temp_path("deploy_gen");
        drop(Deployment::bootstrap_generational(
            &master, params, &docs, &gen_dir, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap());
        let gen = Deployment::bootstrap_from_generations(
            &master, params, &docs, &gen_dir, CloudServer::DEFAULT_CACHE_BUDGET,
        ).unwrap();
        prop_assert_eq!(gen.setup_traffic, Default::default(), "warm restart crosses no wire");

        let scheme = Rsse::new(&master, params);
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 42;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 3 == 1 {
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} segment deployment update {next_id}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                let file = crypter.encrypt(&doc);
                mem.server().apply_update(update.clone(), vec![file.clone()]);
                warm.server().apply_update(update.clone(), vec![file.clone()]);
                gen.server().apply_update(update.clone(), vec![file.clone()]);
                built.server().apply_update(update, vec![file]);
                continue;
            }
            if kind % 3 == 2 {
                // Compaction must be invisible to every later search; the
                // mem server reports it as a no-op.
                prop_assert!(!mem.server().compact_index().unwrap());
                warm.server().compact_index().unwrap();
                built.server().compact_index().unwrap();
                // The generational server compacts *live* — foreground on
                // even kinds, on a background thread (joined, so the flip
                // lands before the next comparison) on odd ones.
                if kind % 2 == 0 {
                    gen.server().compact_index_live().unwrap();
                } else if let Some(merge) = gen.server().compact_index_background().unwrap() {
                    merge.join().unwrap().unwrap();
                }
            }
            let top_k = (k > 0).then_some(k);
            let want = search_ranking(
                &mem.server(),
                mem.user().search_request(word, top_k, SearchMode::Rsse).unwrap(),
            );
            for (name, d) in [("warm", &warm), ("built", &built), ("gen", &gen)] {
                let got = search_ranking(
                    &d.server(),
                    d.user().search_request(word, top_k, SearchMode::Rsse).unwrap(),
                );
                prop_assert_eq!(&got, &want, "{} ranking diverged for {}", name, word);
            }
            // The full metered protocol run agrees down to the byte
            // counts: identical frames up, identical frames down.
            let (_, mem_traffic) = mem.rsse_search(word, top_k).unwrap();
            let (_, warm_traffic) = warm.rsse_search(word, top_k).unwrap();
            let (_, gen_traffic) = gen.rsse_search(word, top_k).unwrap();
            prop_assert_eq!(mem_traffic, warm_traffic, "traffic diverged for {}", word);
            prop_assert_eq!(mem_traffic, gen_traffic, "generational traffic diverged for {}", word);
        }

        let _ = std::fs::remove_file(&seg_path);
        let _ = std::fs::remove_file(&built_path);
        let _ = std::fs::remove_dir_all(&gen_dir);
    }
}

proptest! {
    // Each case boots two full sharded deployments with worker pools;
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Sharded level: one segment per shard must scatter-gather to the
    /// same merged rankings as in-memory shards, across lockstep updates
    /// routed to the owning shard and per-shard compactions.
    #[test]
    fn sharded_segment_backends_match_mem_shards(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 3..12),
        num_shards in 1usize..=3,
        steps in vec((0u8..6, 0usize..5, 0u32..8), 1..10),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();
        let options = PoolOptions::new(1, 16);

        let mem = ShardedDeployment::bootstrap(
            &master, params, &docs, num_shards, options.clone(),
        ).unwrap();
        let dir = temp_path("shards");
        let seg = ShardedDeployment::bootstrap_segmented(
            &master, params, &docs, num_shards, &dir, options.clone(),
        ).unwrap();
        let gen_dir = temp_path("shards_gen");
        let gens = ShardedDeployment::bootstrap_generational(
            &master, params, &docs, num_shards, &gen_dir, options,
        ).unwrap();
        let partitioner = mem.partitioner();

        let scheme = Rsse::new(&master, params);
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 43;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 3 == 1 {
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} shard segment update {next_id}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                let file = crypter.encrypt(&doc);
                let shard = partitioner.shard_of(doc.id());
                mem.shard_server(shard).unwrap().apply_update(update.clone(), vec![file.clone()]);
                seg.shard_server(shard).unwrap().apply_update(update.clone(), vec![file.clone()]);
                gens.shard_server(shard).unwrap().apply_update(update, vec![file]);
                continue;
            }
            if kind % 3 == 2 {
                for shard in 0..num_shards {
                    seg.shard_server(shard).unwrap().compact_index().unwrap();
                    // Live per-shard compaction under a serving pool.
                    gens.shard_server(shard).unwrap().compact_index_live().unwrap();
                }
            }
            let top_k = (k > 0).then_some(k);
            let (_, want) = mem.rsse_search(word, top_k).unwrap();
            prop_assert!(want.is_complete());
            for (name, d) in [("segment", &seg), ("generational", &gens)] {
                let (_, got) = d.rsse_search(word, top_k).unwrap();
                prop_assert!(got.is_complete());
                prop_assert_eq!(
                    &got.ranking, &want.ranking,
                    "sharded {} ranking diverged for {}", name, word
                );
                // Batched scatter agrees too (the cached path per shard).
                let (_, batch) = d.rsse_search_batch(&[word], top_k).unwrap();
                prop_assert_eq!(
                    &batch.queries[0].0, &want.ranking,
                    "batched {} diverged for {}", name, word
                );
            }
        }
        mem.shutdown();
        seg.shutdown();
        gens.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&gen_dir);
    }
}
