//! Security-property tests mirroring the paper's §V analysis.

use rsse::cloud::adversary::{duplicate_signature, shape_distance, FrequencyAttack};
use rsse::core::{Rsse, RsseParams};
use rsse::crypto::SecretKey;
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::score::scores_for_term;
use rsse::ir::{InvertedIndex, ScoreQuantizer};
use rsse::opse::{Opm, OpseCipher, OpseParams};

fn attack_workload() -> (InvertedIndex, Vec<(String, Vec<u64>)>) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::paper_1000(21));
    let index = InvertedIndex::build(corpus.documents());
    let quantizer = ScoreQuantizer::fit_index(&index, 128).unwrap();
    let background: Vec<(String, Vec<u64>)> = ["network", "protocol", "header", "datagram"]
        .iter()
        .map(|kw| {
            let levels = scores_for_term(&index, kw)
                .into_iter()
                .map(|(_, s)| quantizer.level(s))
                .collect();
            (kw.to_string(), levels)
        })
        .collect();
    (index, background)
}

#[test]
fn deterministic_opse_leaks_keyword_fingerprints() {
    let (_, background) = attack_workload();
    let attack = FrequencyAttack::new(background.clone());
    let params = OpseParams::paper_default();
    let mut identified = 0;
    for (kw, levels) in &background {
        let cipher = OpseCipher::new(SecretKey::derive(b"victim", kw), params);
        let observed: Vec<u64> = levels.iter().map(|&l| cipher.encrypt(l).unwrap()).collect();
        let guess = attack.guess(&observed).unwrap();
        if guess.keyword == *kw && guess.is_confident() {
            identified += 1;
        }
    }
    assert!(
        identified >= 3,
        "the fingerprint attack should beat deterministic OPSE ({identified}/4)"
    );
}

#[test]
fn opm_defeats_the_fingerprint_attack() {
    let (_, background) = attack_workload();
    let attack = FrequencyAttack::new(background.clone());
    let params = OpseParams::paper_default();
    for (kw, levels) in &background {
        let opm = Opm::new(SecretKey::derive(b"victim", kw), params);
        let observed: Vec<u64> = levels
            .iter()
            .enumerate()
            .map(|(i, &l)| opm.encrypt(l, &(i as u64).to_be_bytes()).unwrap())
            .collect();
        // The OPM multiset carries no duplicate structure at all.
        assert_eq!(
            *duplicate_signature(&observed).iter().max().unwrap(),
            1,
            "{kw}"
        );
        let guess = attack.guess(&observed).unwrap();
        assert!(
            !(guess.keyword == *kw && guess.is_confident()),
            "{kw}: the attack should not confidently identify an OPM-protected list"
        );
    }
}

#[test]
fn opm_histogram_shape_is_key_randomized() {
    // The Fig. 6 claim: the same score set under two keys yields shapes at
    // least as far apart from each other as either is from the plaintext —
    // there is no stable shape to fingerprint.
    let (_, background) = attack_workload();
    let (kw, levels) = &background[0];
    let params = OpseParams::paper_default();
    let map = |label: &str| -> Vec<u64> {
        let opm = Opm::new(
            SecretKey::derive(b"shape", &format!("{kw}/{label}")),
            params,
        );
        levels
            .iter()
            .enumerate()
            .map(|(i, &l)| opm.encrypt(l, &(i as u64).to_be_bytes()).unwrap())
            .collect()
    };
    let v1 = map("k1");
    let v2 = map("k2");
    let d12 = shape_distance(&v1, &v2, 32).unwrap();
    assert!(d12 > 0.2, "two keys look alike: TV {d12}");
    // Against deterministic OPSE the shape distance to the plaintext
    // histogram is much smaller than OPM's randomized shapes are to each
    // other, on average over bins of equal count.
    let det = OpseCipher::new(SecretKey::derive(b"shape", "det"), params);
    let det_values: Vec<u64> = levels.iter().map(|&l| det.encrypt(l).unwrap()).collect();
    // Deterministic mapping preserves the multiplicity multiset exactly.
    assert_eq!(
        duplicate_signature(&det_values),
        duplicate_signature(levels)
    );
}

#[test]
fn per_list_keys_randomize_identical_score_sets() {
    // §IV-B: different posting lists use different OPM keys, so identical
    // score multisets map to unrelated value sets.
    let params = OpseParams::paper_default();
    let levels: Vec<u64> = (1..=100).map(|i| (i % 30) + 1).collect();
    let map_with = |list_kw: &str| -> Vec<u64> {
        let key = SecretKey::derive(b"z-key", list_kw);
        let opm = Opm::new(key, params);
        levels
            .iter()
            .enumerate()
            .map(|(i, &l)| opm.encrypt(l, &(i as u64).to_be_bytes()).unwrap())
            .collect()
    };
    let a = map_with("alpha");
    let b = map_with("beta");
    assert_ne!(a, b);
    let common = a.iter().filter(|v| b.contains(v)).count();
    assert!(common <= 2, "{common} shared mapped values across lists");
}

#[test]
fn index_reveals_nothing_before_a_trapdoor_is_issued() {
    // All posting lists have identical length and entry size; labels are
    // HMAC outputs. The only a-priori leakage is (m, ν, entry size).
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(22));
    let index = InvertedIndex::build(corpus.documents());
    let scheme = Rsse::new(b"leakage seed", RsseParams::default());
    let enc = scheme.build_index_from(&index).unwrap();
    let t1 = scheme.trapdoor("network").unwrap();
    let t2 = scheme.trapdoor("cipher").unwrap();
    assert_eq!(enc.list_len(t1.label()), enc.list_len(t2.label()));
    let l1 = enc.raw_list(t1.label()).unwrap();
    let l2 = enc.raw_list(t2.label()).unwrap();
    assert!(l1.iter().chain(l2.iter()).all(|e| e.len() == l1[0].len()));
}

#[test]
fn search_pattern_is_deterministic_by_design() {
    // The paper accepts search-pattern leakage: equal queries yield equal
    // trapdoors (the server can link repeated searches).
    let scheme = Rsse::new(b"pattern seed", RsseParams::default());
    let t1 = scheme.trapdoor("network").unwrap();
    let t2 = scheme.trapdoor("network").unwrap();
    assert_eq!(t1.label(), t2.label());
}

#[test]
fn different_owners_produce_unlinkable_indexes() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(23));
    let index = InvertedIndex::build(corpus.documents());
    let s1 = Rsse::new(b"owner one", RsseParams::default());
    let s2 = Rsse::new(b"owner two", RsseParams::default());
    let e1 = s1.build_index_from(&index).unwrap();
    let t1 = s1.trapdoor("network").unwrap();
    let t2 = s2.trapdoor("network").unwrap();
    assert_ne!(t1.label(), t2.label());
    // Owner 2's trapdoor finds nothing in owner 1's index.
    assert!(e1.search(&t2, None).is_empty());
}
