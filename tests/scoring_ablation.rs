//! Scoring-function ablation: the paper picks eq. (2) from "several
//! hundred variations of the TF×IDF weighting scheme"; this suite checks
//! that the RSSE machinery is correct under the alternatives too.

use rsse::core::{Rsse, RsseParams};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::score::{scores_for_term_with, CollectionStats};
use rsse::ir::{Document, FileId, InvertedIndex, ScoringFunction};

fn functions() -> [ScoringFunction; 3] {
    [
        ScoringFunction::PaperEq2,
        ScoringFunction::bm25(),
        ScoringFunction::SublinearTfIdf,
    ]
}

#[test]
fn server_order_tracks_each_scoring_function() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(71));
    let index = InvertedIndex::build(corpus.documents());
    for scoring in functions() {
        let scheme = Rsse::new(b"ablation seed", RsseParams::with_scoring(scoring));
        let enc = scheme.build_index_from(&index).unwrap();
        let quantizer = scheme.fit_quantizer(&index).unwrap();
        let t = scheme.trapdoor("network").unwrap();
        let got = enc.search(&t, None);
        assert_eq!(got.len() as u64, index.document_frequency("network"));
        // The server's order must be non-increasing in the true quantized
        // level under *this* scoring function.
        let levels: std::collections::HashMap<FileId, u64> =
            scores_for_term_with(&index, "network", scoring)
                .into_iter()
                .map(|(f, s)| (f, quantizer.level(s)))
                .collect();
        let mut prev = u64::MAX;
        for r in &got {
            let lvl = levels[&r.file];
            assert!(lvl <= prev, "{scoring:?}: order violated at {}", r.file);
            prev = lvl;
        }
    }
}

#[test]
fn scoring_functions_produce_genuinely_different_rankings() {
    // tf-heavy short doc vs rare-term doc: eq. 2 (length-normalized, no
    // IDF) and sublinear TF-IDF (IDF, no length norm) must disagree
    // somewhere on a crafted corpus.
    let docs = vec![
        Document::new(FileId::new(1), "target target target filler filler filler filler filler filler filler filler filler filler filler filler filler filler filler"),
        Document::new(FileId::new(2), "target unique"),
    ];
    let index = InvertedIndex::build(&docs);
    let stats = CollectionStats::of(&index);
    let eq2_1 = ScoringFunction::PaperEq2.score(3, 18, 2, &stats);
    let eq2_2 = ScoringFunction::PaperEq2.score(1, 2, 2, &stats);
    let tfidf_1 = ScoringFunction::SublinearTfIdf.score(3, 18, 2, &stats);
    let tfidf_2 = ScoringFunction::SublinearTfIdf.score(1, 2, 2, &stats);
    // eq2: the tiny doc wins on normalization; tf-idf: the tf-heavy doc
    // wins because length is ignored.
    assert!(eq2_2 > eq2_1);
    assert!(tfidf_1 > tfidf_2);
}

#[test]
fn updates_respect_the_configured_scoring() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(72));
    let index = InvertedIndex::build(corpus.documents());
    for scoring in functions() {
        let scheme = Rsse::new(b"update ablation", RsseParams::with_scoring(scoring));
        let mut enc = scheme.build_index_from(&index).unwrap();
        let updater = scheme.updater_for(&index).unwrap();
        let doc = Document::new(FileId::new(4242), "network network network update check");
        updater.add_document(&doc).unwrap().apply_to(&mut enc);
        let t = scheme.trapdoor("network").unwrap();
        let hits = enc.search(&t, None);
        assert!(
            hits.iter().any(|r| r.file == FileId::new(4242)),
            "{scoring:?}"
        );
        // Global order still valid by owner decryption; one hoisted
        // decryptor, not a cold OPM rebuild per entry.
        let decryptor = scheme.score_decryptor(updater.opse_params());
        let mut prev = u64::MAX;
        for r in &hits {
            let lvl = decryptor
                .decrypt_level("network", r.encrypted_score)
                .unwrap();
            assert!(lvl <= prev, "{scoring:?}");
            prev = lvl;
        }
    }
}
