//! Tamper-evident retrieval: AEAD file encryption + Merkle inclusion
//! proofs layered over the RSSE flow.
//!
//! The paper's server is honest-but-curious; these tests exercise the
//! hardening a real deployment adds so that a *misbehaving* server is at
//! least caught: every returned file must verify against the owner's
//! published Merkle root, and its AEAD tag must check under the file key.

use rsse::cloud::audit::MerkleTree;
use rsse::cloud::EncryptedFile;
use rsse::core::{Rsse, RsseParams};
use rsse::crypto::ctr::NONCE_LEN;
use rsse::crypto::{AuthenticatedCipher, SecretKey};
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::{Document, FileId};

/// Owner-side sealing: AEAD with the file id as associated data, nonce
/// derived from the id (unique per file).
fn seal_collection(key: &SecretKey, docs: &[Document]) -> Vec<EncryptedFile> {
    let aead = AuthenticatedCipher::new(key);
    docs.iter()
        .map(|d| {
            let mut nonce = [0u8; NONCE_LEN];
            nonce[..8].copy_from_slice(&d.id().to_bytes());
            EncryptedFile::new(
                d.id(),
                aead.seal(nonce, d.text().as_bytes(), &d.id().to_bytes()),
            )
        })
        .collect()
}

struct VerifyingUser {
    aead: AuthenticatedCipher,
    root: [u8; 32],
}

impl VerifyingUser {
    fn open_verified(
        &self,
        file: &EncryptedFile,
        proof: &rsse::cloud::audit::MerkleProof,
    ) -> Option<Document> {
        if !MerkleTree::verify(&self.root, file, proof) {
            return None;
        }
        let plain = self
            .aead
            .open(file.ciphertext(), &file.id().to_bytes())
            .ok()?;
        Some(Document::new(file.id(), String::from_utf8(plain).ok()?))
    }
}

#[test]
fn honest_server_retrieval_verifies_end_to_end() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(81));
    let docs = corpus.documents();
    let file_key = SecretKey::derive(b"owner secret", "files");

    // Setup: owner seals the collection, builds the index and the Merkle
    // commitment, publishes the root to users out of band.
    let sealed = seal_collection(&file_key, docs);
    let tree = MerkleTree::build(&sealed);
    let scheme = Rsse::new(b"owner secret", RsseParams::default());
    let index = scheme.build_index(docs).unwrap();
    let user = VerifyingUser {
        aead: AuthenticatedCipher::new(&file_key),
        root: tree.root(),
    };

    // Retrieval: the (simulated) server looks up the ranked ids and ships
    // each file with its inclusion proof.
    let t = scheme.trapdoor("network").unwrap();
    for r in index.search(&t, Some(10)) {
        let pos = sealed
            .iter()
            .position(|f| f.id() == r.file)
            .expect("result refers to a sealed file");
        let proof = tree.prove(pos).unwrap();
        let doc = user
            .open_verified(&sealed[pos], &proof)
            .expect("honest retrieval verifies");
        assert_eq!(doc.id(), r.file);
        let original = docs.iter().find(|d| d.id() == r.file).unwrap();
        assert_eq!(doc.text(), original.text());
    }
}

#[test]
fn content_tampering_is_caught_twice() {
    let docs = vec![
        Document::new(FileId::new(1), "quarterly figures: confidential"),
        Document::new(FileId::new(2), "lunch menu"),
    ];
    let file_key = SecretKey::derive(b"owner secret", "files");
    let sealed = seal_collection(&file_key, &docs);
    let tree = MerkleTree::build(&sealed);
    let user = VerifyingUser {
        aead: AuthenticatedCipher::new(&file_key),
        root: tree.root(),
    };

    // A malicious server flips a ciphertext byte.
    let mut tampered_bytes = sealed[0].ciphertext().to_vec();
    tampered_bytes[NONCE_LEN + 3] ^= 0x40;
    let tampered = EncryptedFile::new(sealed[0].id(), tampered_bytes);
    let proof = tree.prove(0).unwrap();
    // The Merkle check already rejects it...
    assert!(user.open_verified(&tampered, &proof).is_none());
    // ...and even if the user skipped the proof, the AEAD tag would fail.
    assert!(user
        .aead
        .open(tampered.ciphertext(), &tampered.id().to_bytes())
        .is_err());
}

#[test]
fn substitution_attacks_are_caught() {
    let docs = vec![
        Document::new(FileId::new(1), "the real document"),
        Document::new(FileId::new(2), "a different document"),
    ];
    let file_key = SecretKey::derive(b"owner secret", "files");
    let sealed = seal_collection(&file_key, &docs);
    let tree = MerkleTree::build(&sealed);
    let user = VerifyingUser {
        aead: AuthenticatedCipher::new(&file_key),
        root: tree.root(),
    };

    // The server returns file 2's (validly sealed) bytes as file 1.
    let proof_1 = tree.prove(0).unwrap();
    let swapped = EncryptedFile::new(FileId::new(1), sealed[1].ciphertext().to_vec());
    assert!(
        user.open_verified(&swapped, &proof_1).is_none(),
        "Merkle binding of id + bytes must reject substitution"
    );
    // Even ignoring the tree, the associated data binds the id.
    assert!(user
        .aead
        .open(swapped.ciphertext(), &FileId::new(1).to_bytes())
        .is_err());
}

#[test]
fn stale_root_rejects_a_rebuilt_collection() {
    let docs_v1 = vec![Document::new(FileId::new(1), "version one")];
    let docs_v2 = vec![Document::new(FileId::new(1), "version two (modified)")];
    let file_key = SecretKey::derive(b"owner secret", "files");
    let sealed_v1 = seal_collection(&file_key, &docs_v1);
    let sealed_v2 = seal_collection(&file_key, &docs_v2);
    let tree_v2 = MerkleTree::build(&sealed_v2);
    let user = VerifyingUser {
        aead: AuthenticatedCipher::new(&file_key),
        root: MerkleTree::build(&sealed_v1).root(),
    };
    // Server serves v2 against a user still holding the v1 root: rejected,
    // which is exactly what a freshness-conscious client wants to see.
    let proof = tree_v2.prove(0).unwrap();
    assert!(user.open_verified(&sealed_v2[0], &proof).is_none());
}
