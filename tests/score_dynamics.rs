//! Score dynamics across the whole deployment (paper §VII): live updates
//! against the cloud server, and the rebuild costs of the static baselines.

use rsse::baselines::bucket::{BucketError, BucketMapper};
use rsse::baselines::cdf::CdfMapper;
use rsse::cloud::{DataOwner, Deployment, FileCrypter, Message, SearchMode};
use rsse::core::{Rsse, RsseParams};
use rsse::crypto::SecretKey;
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::{Document, FileId, InvertedIndex};

#[test]
fn live_update_through_the_deployment() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(41));
    let seed: &[u8] = b"dynamics seed";
    let cloud = Deployment::bootstrap(seed, RsseParams::default(), corpus.documents()).unwrap();

    let before: Vec<u64> = {
        let (docs, _) = cloud.rsse_search("network", None).unwrap();
        docs.iter().map(|d| d.id().as_u64()).collect()
    };

    // The owner prepares an update for a new document and pushes it (plus
    // the encrypted file) to the server.
    let owner_scheme = Rsse::new(seed, RsseParams::default());
    let plain_index = InvertedIndex::build(corpus.documents());
    let updater = owner_scheme.updater_for(&plain_index).unwrap();
    let new_doc = Document::new(FileId::new(9001), "network incident report network");
    let update = updater.add_document(&new_doc).unwrap();
    let crypter = FileCrypter::new(seed);
    cloud
        .server()
        .apply_update(update, vec![crypter.encrypt(&new_doc)]);

    let (after_docs, _) = cloud.rsse_search("network", None).unwrap();
    let after: Vec<u64> = after_docs.iter().map(|d| d.id().as_u64()).collect();
    assert_eq!(after.len(), before.len() + 1);
    assert!(after.contains(&9001));
    for id in &before {
        assert!(after.contains(id), "existing match {id} lost after update");
    }
    // The new document's content round-trips.
    let fetched = after_docs
        .iter()
        .find(|d| d.id() == FileId::new(9001))
        .unwrap();
    assert_eq!(fetched.text(), "network incident report network");
}

#[test]
fn many_updates_never_perturb_existing_mapped_values() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(42));
    let scheme = Rsse::new(b"stability seed", RsseParams::default());
    let plain_index = InvertedIndex::build(corpus.documents());
    let mut enc = scheme.build_index_from(&plain_index).unwrap();
    let t = scheme.trapdoor("network").unwrap();
    let baseline = enc.search(&t, None);

    let updater = scheme.updater_for(&plain_index).unwrap();
    for i in 0..50u64 {
        let doc = Document::new(
            FileId::new(10_000 + i),
            format!("network update number {i} with network traffic"),
        );
        updater.add_document(&doc).unwrap().apply_to(&mut enc);
    }
    let now = enc.search(&t, None);
    assert_eq!(now.len(), baseline.len() + 50);
    for old in &baseline {
        assert!(
            now.iter().any(|r| r == old),
            "entry {old:?} changed across 50 updates"
        );
    }
    // Order is still globally valid by owner-side decryption; hoist one
    // decryptor instead of rebuilding a cold OPM per entry.
    let decryptor = scheme.score_decryptor(updater.opse_params());
    let mut prev = u64::MAX;
    for r in &now {
        let lvl = decryptor
            .decrypt_level("network", r.encrypted_score)
            .unwrap();
        assert!(lvl <= prev);
        prev = lvl;
    }
}

#[test]
fn update_entries_are_indistinguishable_in_size() {
    // Appended entries must look like original ones (same ciphertext size).
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(43));
    let scheme = Rsse::new(b"size seed", RsseParams::default());
    let plain_index = InvertedIndex::build(corpus.documents());
    let mut enc = scheme.build_index_from(&plain_index).unwrap();
    let t = scheme.trapdoor("network").unwrap();
    let before_len = enc.raw_list(t.label()).unwrap()[0].len();

    let updater = scheme.updater_for(&plain_index).unwrap();
    let doc = Document::new(FileId::new(5555), "network network");
    updater.add_document(&doc).unwrap().apply_to(&mut enc);
    let list = enc.raw_list(t.label()).unwrap();
    assert!(list.iter().all(|e| e.len() == before_len));
}

#[test]
fn static_bucketization_requires_rebuild_where_opm_does_not() {
    // Fit both mappings to the same original scores, then insert a score
    // outside the original support.
    let original: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
    let key = SecretKey::derive(b"contrast", "k");
    let bucket = BucketMapper::fit(&original, 10, 1 << 40, key.clone()).unwrap();
    let cdf = CdfMapper::train(&original, 1 << 40, key.clone()).unwrap();

    let new_score = 5.0; // far above the fitted domain
    assert!(matches!(
        bucket.map(new_score, b"new"),
        Err(BucketError::NeedsRebuild { .. })
    ));
    assert!(cdf.map(new_score, b"new").is_err());
    assert!(cdf.needs_retraining(&[new_score], 0.2));

    // The OPM handles the same situation natively: the quantizer clamps to
    // the top level and the mapping needs no refitting.
    use rsse::ir::ScoreQuantizer;
    use rsse::opse::{Opm, OpseParams};
    let quantizer = ScoreQuantizer::fit(&original, 128).unwrap();
    let opm = Opm::new(key, OpseParams::paper_default());
    let level = quantizer.level(new_score);
    assert_eq!(level, 128, "out-of-range scores clamp to the top level");
    let mapped = opm.encrypt(level, b"new").unwrap();
    // And it still compares correctly against previously mapped scores.
    let old_mapped = opm.encrypt(quantizer.level(0.5), b"old").unwrap();
    assert!(mapped > old_mapped);
}

#[test]
fn owner_and_fresh_user_agree_after_updates() {
    // A user authorized *after* updates must see the updated collection.
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(44));
    let seed: &[u8] = b"late user seed";
    let cloud = Deployment::bootstrap(seed, RsseParams::default(), corpus.documents()).unwrap();
    let owner = DataOwner::new(seed, RsseParams::default());

    let plain_index = InvertedIndex::build(corpus.documents());
    let scheme = Rsse::new(seed, RsseParams::default());
    let updater = scheme.updater_for(&plain_index).unwrap();
    let new_doc = Document::new(FileId::new(7777), "network late addition");
    let update = updater.add_document(&new_doc).unwrap();
    let crypter = FileCrypter::new(seed);
    cloud
        .server()
        .apply_update(update, vec![crypter.encrypt(&new_doc)]);

    let late_user = owner.authorize_user();
    let request = late_user
        .search_request("network", None, SearchMode::Rsse)
        .unwrap();
    let response = cloud.server().handle(request).unwrap();
    let Message::RsseResponse { ranking, .. } = response else {
        panic!("wrong response type");
    };
    assert!(ranking.iter().any(|(id, _)| *id == 7777));
}
