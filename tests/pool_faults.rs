//! Fault injection against the serving path: contained panics, deadlines
//! against wedged workers, overload shedding on a full backlog, retry with
//! backoff, uncontained worker death, and error-byte traffic accounting.
//!
//! Together these prove the PR-level acceptance criteria: a panicking
//! request costs exactly one `Internal` error frame (never the pool), a
//! client deadline always fires against a stalled worker, a full backlog
//! answers `Overloaded` without blocking, and error frames are metered on
//! the wire like any other response.

use rsse::cloud::entities::{CloudServer, DataOwner, Deployment};
use rsse::cloud::server_loop::{Fault, PoolOptions, ServerHandle};
use rsse::cloud::{CloudError, ErrorKind, Message, MeteredChannel, SearchMode};
use rsse::core::RsseParams;
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// Silences the default panic printout for the panics this suite injects
/// on purpose; genuine panics still print.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            // `Fault::Panic` carries an "injected fault: …" String;
            // `Fault::KillWorker` panics with a private marker type that is
            // neither &str nor String. Only this binary injects either.
            let injected = payload.downcast_ref::<String>().map_or_else(
                || payload.downcast_ref::<&str>().is_none(),
                |s| s.contains("injected fault"),
            );
            if !injected {
                default_hook(info);
            }
        }));
    });
}

fn spawn_with(options: PoolOptions) -> (DataOwner, ServerHandle) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(57));
    let owner = DataOwner::new(b"fault seed", RsseParams::default());
    let server = CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
    (owner, ServerHandle::spawn_pool_with(server, options))
}

fn search(owner: &DataOwner, top_k: Option<u32>) -> Message {
    owner
        .authorize_user()
        .search_request("network", top_k, SearchMode::Rsse)
        .unwrap()
}

/// A fault hook firing only on conjunctive requests, so plain searches
/// pass through and prove the pool still serves after the fault.
fn fault_on_conjunctive(fault: Fault) -> impl Fn(&Message) -> Option<Fault> + Send + Sync {
    move |msg| matches!(msg, Message::ConjunctiveRequest { .. }).then_some(fault)
}

#[test]
fn injected_panic_is_contained_and_pool_keeps_serving() {
    quiet_injected_panics();
    let (owner, handle) =
        spawn_with(PoolOptions::new(2, 8).with_fault(fault_on_conjunctive(Fault::Panic("boom"))));
    let client = handle.client();

    let poisoned = owner
        .authorize_user()
        .conjunctive_request("network system", Some(3))
        .unwrap();
    let err = client.call(poisoned).unwrap_err();
    let CloudError::Server { kind, detail } = err else {
        panic!("expected a decoded error frame, got {err:?}");
    };
    assert_eq!(kind, ErrorKind::Internal);
    assert!(detail.contains("panicked"), "detail: {detail}");

    // The worker survived: ordinary requests keep being served …
    for _ in 0..4 {
        assert!(matches!(
            client.call(search(&owner, Some(2))).unwrap(),
            Message::RsseResponse { .. }
        ));
    }
    // … and the audit log counted exactly the one contained panic.
    let report = handle.server().serving_report();
    assert_eq!(report.panics, 1);
    assert_eq!(report.searches, 4);
    assert_eq!(handle.shutdown(), 5);
}

#[test]
fn deadline_fires_against_a_wedged_worker() {
    let (owner, handle) = spawn_with(PoolOptions::new(1, 8).with_fault(fault_on_conjunctive(
        Fault::Stall(Duration::from_millis(400)),
    )));
    let client = handle.client();

    let wedging = owner
        .authorize_user()
        .conjunctive_request("network system", Some(3))
        .unwrap();
    let started = Instant::now();
    let err = client
        .call_with_deadline(wedging, Duration::from_millis(50))
        .unwrap_err();
    let waited = started.elapsed();
    assert!(
        matches!(err, CloudError::Timeout { after } if after == Duration::from_millis(50)),
        "expected a timeout, got {err:?}"
    );
    assert!(
        waited < Duration::from_millis(350),
        "deadline must fire well before the 400 ms stall ends, waited {waited:?}"
    );

    // Once the stall drains, the same worker serves again.
    assert!(matches!(
        client.call(search(&owner, Some(1))).unwrap(),
        Message::RsseResponse { .. }
    ));
    handle.shutdown();
}

#[test]
fn full_backlog_sheds_with_an_overloaded_error_without_blocking() {
    let (owner, handle) =
        spawn_with(PoolOptions::new(1, 1).with_io_delay(Duration::from_millis(100)));
    let client = handle.client();
    let req = search(&owner, Some(1));

    // Two filler clients hammer the single worker and single backlog slot
    // so the queue is full nearly all the time; this client then
    // overflows: its shed must be an immediate Overloaded, not a block.
    let stop = Arc::new(AtomicBool::new(false));
    let fillers: Vec<_> = (0..2)
        .map(|_| {
            let filler = handle.client();
            let req = req.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if filler.call(req.clone()).is_err() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    let mut shed = None;
    let give_up = Instant::now() + Duration::from_secs(5);
    while Instant::now() < give_up {
        let started = Instant::now();
        // Anything else means we raced a free slot (or got served): retry.
        if let Err(CloudError::Server {
            kind: ErrorKind::Overloaded,
            detail,
        }) = client.call(req.clone())
        {
            shed = Some((started.elapsed(), detail));
            break;
        }
    }
    let (latency, detail) = shed.expect("a 1-worker/1-slot pool under load must shed");
    assert!(
        latency < Duration::from_millis(50),
        "shedding must not block on the backlog, took {latency:?}"
    );
    assert!(detail.contains("backlog"), "detail: {detail}");

    stop.store(true, Ordering::Relaxed);
    for filler in fillers {
        filler.join().unwrap();
    }
    // The overload was transient: once the hammering stops, the same pool
    // serves normally again.
    assert!(matches!(
        client.call(req).unwrap(),
        Message::RsseResponse { .. }
    ));
    handle.shutdown();
}

#[test]
fn retry_with_backoff_rides_out_a_transient_overload() {
    let (owner, handle) =
        spawn_with(PoolOptions::new(1, 1).with_io_delay(Duration::from_millis(20)));

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = handle.client();
            let req = search(&owner, Some(1));
            scope.spawn(move || {
                // Backlog of 1 with four competing clients: raw calls shed
                // routinely, but bounded retries absorb the transient.
                client
                    .call_with_retry(req, 10, Duration::from_millis(5))
                    .unwrap()
            });
        }
    });
    assert_eq!(handle.shutdown(), 4, "every client was eventually served");
}

#[test]
fn uncontained_worker_death_does_not_poison_shutdown() {
    quiet_injected_panics();
    let (owner, handle) =
        spawn_with(PoolOptions::new(2, 8).with_fault(fault_on_conjunctive(Fault::KillWorker)));
    let client = handle.client();

    let lethal = owner
        .authorize_user()
        .conjunctive_request("network system", Some(3))
        .unwrap();
    // The killed worker never replies; the client sees a dead channel.
    let err = client
        .call_with_deadline(lethal, Duration::from_millis(500))
        .unwrap_err();
    assert!(
        matches!(
            err,
            CloudError::Transport { .. } | CloudError::Timeout { .. }
        ),
        "expected transport failure or timeout, got {err:?}"
    );

    // The surviving worker still serves, and shutdown reports its count
    // instead of panicking on the dead thread's join.
    let served = (0..3)
        .filter(|_| client.call(search(&owner, Some(1))).is_ok())
        .count();
    assert_eq!(served, 3);
    assert_eq!(handle.shutdown(), 3);
}

#[test]
fn dropping_a_handle_with_a_full_backlog_returns() {
    let (owner, handle) = spawn_with(PoolOptions::new(1, 1).with_fault(fault_on_conjunctive(
        Fault::Stall(Duration::from_millis(400)),
    )));
    let client = handle.client();

    // Wedge the only worker, then let a timed-out request sit in the
    // backlog slot: no shutdown sentinel can fit.
    let wedging = owner
        .authorize_user()
        .conjunctive_request("network system", Some(3))
        .unwrap();
    let _ = client.call_with_deadline(wedging, Duration::from_millis(10));
    let _ = client.call_with_deadline(search(&owner, Some(1)), Duration::from_millis(10));

    // Drop must give up on the full queue and return well before the
    // 400 ms stall drains (the worker detaches and exits on its own).
    let started = Instant::now();
    drop(handle);
    assert!(
        started.elapsed() < Duration::from_millis(300),
        "drop must not wait out a wedged pool, took {:?}",
        started.elapsed()
    );
}

#[test]
fn out_of_protocol_round_trip_meters_the_error_frame() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(58));
    let cloud =
        Deployment::bootstrap(b"meter seed", RsseParams::default(), corpus.documents()).unwrap();
    let mut channel = MeteredChannel::new();

    // A response message sent as a request is out of protocol: the server
    // answers with a Rejected error frame whose bytes are metered.
    let bogus = Message::FilesResponse { files: vec![] };
    let err = cloud.round_trip(&mut channel, bogus).unwrap_err();
    let CloudError::Server { kind, .. } = err else {
        panic!("expected a decoded error frame, got {err:?}");
    };
    assert_eq!(kind, ErrorKind::Rejected);

    let report = channel.report();
    assert_eq!(report.error_frames, 1);
    assert_eq!(report.round_trips, 1);
    assert!(report.bytes_down > 0, "error frames cost real bytes");
    assert_eq!(cloud.server().serving_report().rejected, 1);

    // A well-formed search through the same channel meters normally.
    let user = cloud.user();
    let ok = cloud
        .round_trip(
            &mut channel,
            user.search_request("network", Some(2), SearchMode::Rsse)
                .unwrap(),
        )
        .unwrap();
    assert!(matches!(ok, Message::RsseResponse { .. }));
    assert_eq!(
        channel.report().error_frames,
        1,
        "success adds no error frames"
    );
    assert_eq!(channel.report().round_trips, 2);
}
