//! Failure injection: corrupted frames, forged credentials, hostile
//! inputs. Everything must fail closed — errors, never panics or silent
//! wrong answers.

use bytes_shim::corrupt_each_byte;
use rsse::cloud::{CloudServer, Deployment, Message, SearchMode};
use rsse::core::{Rsse, RsseParams, RsseTrapdoor};
use rsse::crypto::SecretKey;
use rsse::ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse::ir::{Document, FileId};

mod bytes_shim {
    /// Yields copies of `frame` with one byte flipped at a sample of
    /// positions (full sweep is O(n²) on decode; sampling keeps CI fast).
    pub fn corrupt_each_byte(frame: &[u8]) -> impl Iterator<Item = Vec<u8>> + '_ {
        let step = (frame.len() / 64).max(1);
        (0..frame.len()).step_by(step).map(move |i| {
            let mut copy = frame.to_vec();
            copy[i] ^= 0x01;
            copy
        })
    }
}

fn small_deployment(seed: u64) -> Deployment {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(seed));
    Deployment::bootstrap(b"failure seed", RsseParams::default(), corpus.documents()).unwrap()
}

#[test]
fn corrupted_search_frames_never_panic_the_server() {
    let cloud = small_deployment(31);
    let server = cloud.server();
    let request = cloud
        .user()
        .search_request("network", Some(5), SearchMode::Rsse)
        .unwrap();
    let frame = request.encode().to_vec();
    let mut decoded_ok = 0;
    for corrupted in corrupt_each_byte(&frame) {
        // Either the frame fails to decode, or it decodes to a (valid but
        // different) message the server answers without panicking.
        if let Ok(msg) = Message::decode(bytes::BytesMut::from(&corrupted[..])) {
            decoded_ok += 1;
            let _ = server.handle(msg);
        }
    }
    // Some corruptions only touch the label/key bytes and still decode.
    assert!(decoded_ok > 0, "sanity: some corruptions remain decodable");
}

#[test]
fn forged_trapdoor_key_yields_empty_results_not_garbage() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(32));
    let scheme = Rsse::new(b"victim seed", RsseParams::default());
    let enc = scheme.build_index(corpus.documents()).unwrap();
    let real = scheme.trapdoor("network").unwrap();
    // Right label, wrong key: entries decrypt to garbage; the validity
    // marker rejects every one.
    for guess in 0..20u64 {
        let forged = RsseTrapdoor::from_parts(
            *real.label(),
            SecretKey::derive(b"brute force", &guess.to_string()),
        );
        assert!(enc.search(&forged, None).is_empty(), "guess {guess}");
    }
}

#[test]
fn unauthorized_user_with_wrong_seed_finds_nothing() {
    let cloud = small_deployment(33);
    let intruder = rsse::cloud::User::new(b"not the real seed", RsseParams::default());
    let request = intruder
        .search_request("network", Some(5), SearchMode::Rsse)
        .unwrap();
    let response = cloud.server().handle(request).unwrap();
    let Message::RsseResponse { ranking, files } = response else {
        panic!("wrong response type");
    };
    assert!(ranking.is_empty() && files.is_empty());
}

#[test]
fn server_rejects_out_of_protocol_messages() {
    let cloud = small_deployment(34);
    // An Outsource message sent to the request handler is out of protocol.
    let bogus = Message::Outsource {
        rsse_lists: vec![],
        basic_lists: vec![],
        opse_domain: 128,
        opse_range: 1 << 46,
        files: vec![],
    };
    assert!(cloud.server().handle(bogus).is_err());
    // And a server cannot be booted from a non-Outsource message.
    assert!(CloudServer::from_outsource(Message::FetchFiles { ids: vec![] }).is_err());
}

#[test]
fn server_with_inconsistent_opse_parameters_fails_closed() {
    let bad = Message::Outsource {
        rsse_lists: vec![],
        basic_lists: vec![],
        opse_domain: 128,
        opse_range: 2, // range < domain
        files: vec![],
    };
    assert!(CloudServer::from_outsource(bad).is_err());
}

#[test]
fn fetch_of_unknown_files_returns_only_known_ones() {
    let cloud = small_deployment(35);
    let response = cloud
        .server()
        .handle(Message::FetchFiles {
            ids: vec![1, 999_999, 2],
        })
        .unwrap();
    let Message::FilesResponse { files } = response else {
        panic!("wrong response type");
    };
    let ids: Vec<u64> = files.iter().map(|f| f.id().as_u64()).collect();
    assert_eq!(ids, vec![1, 2]);
}

#[test]
fn empty_collection_is_rejected_at_build_time() {
    let scheme = Rsse::new(b"seed", RsseParams::default());
    assert!(scheme.build_index(&[]).is_err());
}

#[test]
fn degenerate_documents_survive_the_pipeline() {
    // Documents that tokenize to nothing must not break indexing of others.
    let docs = vec![
        Document::new(FileId::new(1), "!!! ??? ..."),
        Document::new(FileId::new(2), "the of and"),
        Document::new(FileId::new(3), "actual content words here"),
    ];
    let scheme = Rsse::new(b"seed", RsseParams::default());
    let enc = scheme.build_index(&docs).unwrap();
    let t = scheme.trapdoor("content").unwrap();
    let hits = enc.search(&t, None);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].file, FileId::new(3));
}

#[test]
fn hostile_opm_inputs_error_not_panic() {
    use rsse::opse::{Opm, OpseParams};
    let opm = Opm::new(
        SecretKey::derive(b"seed", "hostile"),
        OpseParams::new(16, 1 << 20).unwrap(),
    );
    assert!(opm.encrypt(0, b"f").is_err());
    assert!(opm.encrypt(17, b"f").is_err());
    assert!(opm.decrypt(0).is_err());
    assert!(opm.decrypt((1 << 20) + 1).is_err());
    // Sweep ciphertext space corners: all either decrypt or error cleanly.
    for c in [1u64, 2, (1 << 20) - 1, 1 << 20] {
        let _ = opm.decrypt(c);
    }
}

#[test]
fn update_for_unknown_empty_document_is_rejected() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(36));
    let scheme = Rsse::new(b"seed", RsseParams::default());
    let index = rsse::ir::InvertedIndex::build(corpus.documents());
    let updater = scheme.updater_for(&index).unwrap();
    let empty = Document::new(FileId::new(777), "the !!!");
    assert!(updater.add_document(&empty).is_err());
}
