//! End-to-end test of the `rsse` command-line binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rsse"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rsse_cli_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = workdir("workflow");
    let key = dir.join("key.txt");
    fs::write(&key, "cli test secret").unwrap();
    let corpus = dir.join("corpus");
    let index = dir.join("index.rsse");

    let out = bin()
        .args(["gen-corpus", "--docs", "30", "--seed", "5", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(fs::read_dir(&corpus).unwrap().count(), 30);

    let out = bin()
        .args(["build-index", "--secret-file"])
        .arg(&key)
        .args(["--corpus"])
        .arg(&corpus)
        .args(["--out"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(index.exists());

    let out = bin()
        .args(["search", "--secret-file"])
        .arg(&key)
        .args(["--index"])
        .arg(&index)
        .args(["--keyword", "network", "--top-k", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rank"), "no results table:\n{stdout}");
    assert!(stdout.lines().count() >= 2 && stdout.lines().count() <= 5);

    let out = bin()
        .args(["inspect", "--index"])
        .arg(&index)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("posting lists"));
    assert!(stdout.contains("128 levels"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wrong_secret_finds_nothing() {
    let dir = workdir("wrongkey");
    let key = dir.join("key.txt");
    let badkey = dir.join("bad.txt");
    fs::write(&key, "right secret").unwrap();
    fs::write(&badkey, "wrong secret").unwrap();
    let corpus = dir.join("corpus");
    let index = dir.join("index.rsse");

    assert!(bin()
        .args(["gen-corpus", "--docs", "10", "--out"])
        .arg(&corpus)
        .status()
        .unwrap()
        .success());
    assert!(bin()
        .args(["build-index", "--secret-file"])
        .arg(&key)
        .args(["--corpus"])
        .arg(&corpus)
        .args(["--out"])
        .arg(&index)
        .status()
        .unwrap()
        .success());

    let out = bin()
        .args(["search", "--secret-file"])
        .arg(&badkey)
        .args(["--index"])
        .arg(&index)
        .args(["--keyword", "network"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no matches"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_invocations_fail_cleanly() {
    // No args: usage + exit code 2.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    // Missing flag value.
    let out = bin().args(["search", "--index"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // Nonexistent index file.
    let out = bin()
        .args(["inspect", "--index", "/nonexistent/nothing.rsse"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
