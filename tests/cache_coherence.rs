//! Cache-coherence harness: the ranking cache must be *invisible* except
//! in the serving-cost counters.
//!
//! For random interleavings of searches and live index updates, a server
//! with the hot-keyword ranking cache enabled must return rankings
//! **byte-identical** to a cache-disabled server over the same corpus and
//! master seed — same OPM ciphertexts, same tie order, same truncation —
//! no matter how the interleaving lines up cache fills against
//! invalidations. The sharded deployment (whose shard servers cache by
//! default) is held to the same standard against an uncached single-index
//! reference, so the `shard_equivalence` guarantee survives caching; and
//! batched frames must agree with their per-keyword equivalents. See
//! `crates/cloud/src/cache.rs` and DESIGN.md §6.3.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse::cloud::{Deployment, FileCrypter, Message, PoolOptions, SearchMode, ShardedDeployment};
use rsse::core::{Rsse, RsseParams};
use rsse::ir::{Document, FileId, InvertedIndex};

/// A tiny vocabulary so random interleavings keep hitting the same
/// posting lists — the regime where a stale cache entry would actually
/// get served. Every word survives the tokenizer.
const VOCAB: [&str; 5] = ["alpha", "beta", "gamma", "delta", "omega"];

fn corpus(seed: u64, word_ids: &[Vec<usize>]) -> Vec<Document> {
    word_ids
        .iter()
        .enumerate()
        .map(|(i, ids)| {
            let text = ids.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
            let id = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Document::new(FileId::new(id), text)
        })
        .collect()
}

// One step of a random schedule is `(kind, keyword, k)`: even `kind`
// searches `VOCAB[keyword]` with limit `k` (0 meaning unlimited); odd
// `kind` adds a fresh document mentioning `VOCAB[keyword]`, which must
// invalidate that keyword's cached ranking.

fn search_ranking(server: &rsse::cloud::CloudServer, request: Message) -> Vec<(u64, u64)> {
    match server.handle(request).unwrap() {
        Message::RsseResponse { ranking, .. } => ranking,
        other => panic!("expected RsseResponse, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random search/update interleavings: cache-on == cache-off, byte
    /// for byte, at every step.
    #[test]
    fn cached_rankings_match_uncached_under_interleaved_updates(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 3..12),
        steps in vec((0u8..4, 0usize..5, 0u32..8), 1..24),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();

        let cached = Deployment::bootstrap(&master, params, &docs).unwrap();
        let plain = Deployment::bootstrap_with_cache(&master, params, &docs, 0).unwrap();

        // Owner-side update machinery, shared by both servers: the *same*
        // IndexUpdate (cloned) lands on each, so any divergence in what a
        // search returns is the cache's fault alone.
        let scheme = Rsse::new(&master, params);
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 40;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 2 == 0 {
                let top_k = (k > 0).then_some(k);
                let want = search_ranking(
                    &plain.server(),
                    plain.user().search_request(word, top_k, SearchMode::Rsse).unwrap(),
                );
                let got = search_ranking(
                    &cached.server(),
                    cached.user().search_request(word, top_k, SearchMode::Rsse).unwrap(),
                );
                prop_assert_eq!(got, want, "cached ranking diverged for {}", word);
            } else {
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} report number {next_id} about {word}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                let file = crypter.encrypt(&doc);
                cached.server().apply_update(update.clone(), vec![file.clone()]);
                plain.server().apply_update(update, vec![file]);
            }
        }

        // Final sweep: every keyword, unlimited — catches a stale entry
        // the random schedule filled but never re-read.
        for word in VOCAB {
            let want = search_ranking(
                &plain.server(),
                plain.user().search_request(word, None, SearchMode::Rsse).unwrap(),
            );
            let got = search_ranking(
                &cached.server(),
                cached.user().search_request(word, None, SearchMode::Rsse).unwrap(),
            );
            prop_assert_eq!(got, want, "final ranking diverged for {}", word);

            // Batched == individual on the live, updated index.
            let batch = cached.user().batch_search_request(&[word, word], None).unwrap();
            let Message::BatchReply { results, .. } = cached.server().handle(batch).unwrap()
            else { panic!("expected BatchReply") };
            prop_assert_eq!(results.len(), 2);
            for (ranking, _) in &results {
                prop_assert_eq!(ranking, &want, "batched ranking diverged for {}", word);
            }
        }

        // The disabled cache must stay silent; the enabled one must have
        // actually been exercised by the sweep above.
        let off = plain.server().cache_stats();
        prop_assert_eq!(off.hits + off.misses, 0);
        let on = cached.server().cache_stats();
        prop_assert!(on.hits > 0, "sweep re-reads must hit: {:?}", on);
    }
}

proptest! {
    // Each case boots real worker pools; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sharded deployment with per-shard caches vs. an uncached single
    /// index, across interleaved updates routed to the owning shard.
    #[test]
    fn sharded_caching_preserves_byte_identical_rankings(
        seed in any::<u64>(),
        word_ids in vec(vec(0usize..5, 1..10), 3..12),
        num_shards in 1usize..=4,
        steps in vec((0u8..4, 0usize..5, 0u32..8), 1..12),
    ) {
        let docs = corpus(seed, &word_ids);
        let master = seed.to_be_bytes();
        let params = RsseParams::default();

        let sharded = ShardedDeployment::bootstrap(
            &master, params, &docs, num_shards, PoolOptions::new(1, 16),
        ).unwrap();
        let partitioner = sharded.partitioner();

        // Reference: the unsharded, uncached index, updated in lockstep.
        let scheme = Rsse::new(&master, params);
        let mut reference = scheme.build_index(&docs).unwrap();
        let plain_index = InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = FileCrypter::new(&master);

        let mut next_id = 1u64 << 41;
        for &(kind, keyword, k) in &steps {
            let word = VOCAB[keyword];
            if kind % 2 == 0 {
                let top_k = (k > 0).then_some(k);
                let trapdoor = scheme.trapdoor(word).unwrap();
                let want = reference.search(&trapdoor, top_k.map(|k| k as usize));
                // Twice: the second scatter is served from shard caches.
                for _ in 0..2 {
                    let (_, outcome) = sharded.rsse_search(word, top_k).unwrap();
                    prop_assert!(outcome.is_complete());
                    prop_assert_eq!(&outcome.ranking, &want, "shard ranking diverged for {}", word);
                }
                // Batched scatter agrees with the dedicated scatters.
                let (_, batch) = sharded.rsse_search_batch(&[word], top_k).unwrap();
                prop_assert_eq!(&batch.queries[0].0, &want, "batched shard ranking diverged");
            } else {
                // A new document lives entirely on shard_of(id): every
                // posting entry is partitioned by file id.
                let doc = Document::new(
                    FileId::new(next_id),
                    format!("{word} shard update {next_id}"),
                );
                next_id += 1;
                let update = updater.add_document(&doc).unwrap();
                update.clone().apply_to(&mut reference);
                let shard = partitioner.shard_of(doc.id());
                let server = sharded.shard_server(shard).unwrap();
                server.apply_update(update, vec![crypter.encrypt(&doc)]);
            }
        }
        sharded.shutdown();
    }
}
