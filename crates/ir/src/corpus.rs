//! Deterministic synthetic corpus generation.
//!
//! The paper evaluates on the RFC collection (5563 plain-text files,
//! ~277 MB) which cannot be shipped here. This module generates a synthetic
//! stand-in with the statistics the experiments actually consume:
//!
//! * Zipf-distributed background vocabulary (natural-language-like term
//!   frequencies and posting-list lengths);
//! * log-normal document lengths (the `|F_d|` normalization factor);
//! * configurable **hot keywords** ("network", …) planted in a chosen
//!   fraction of documents with exponentially bursty term frequencies — this
//!   reproduces the skewed per-keyword score histogram of the paper's
//!   Fig. 4.
//!
//! Generation is fully deterministic given the seed.

use crate::document::{Document, FileId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A keyword planted into the corpus with controlled statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HotKeyword {
    /// The term itself (should survive stemming, e.g. "network").
    pub term: String,
    /// Fraction of documents that contain the term (1.0 = every document,
    /// giving the paper's posting list of length = collection size).
    pub doc_fraction: f64,
    /// Mean of the exponential term-frequency burst (higher = more skew).
    pub mean_burst: f64,
}

impl HotKeyword {
    /// Convenience constructor.
    pub fn new(term: impl Into<String>, doc_fraction: f64, mean_burst: f64) -> Self {
        HotKeyword {
            term: term.into(),
            doc_fraction,
            mean_burst,
        }
    }
}

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusParams {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Background vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent of the background vocabulary (≈1.0 for natural text).
    pub zipf_exponent: f64,
    /// Mean document length in tokens (log-normal distributed).
    pub mean_doc_len: usize,
    /// Keywords planted with controlled statistics.
    pub hot_keywords: Vec<HotKeyword>,
    /// RNG seed: same seed, same corpus.
    pub seed: u64,
}

impl CorpusParams {
    /// A tiny corpus for unit tests and doc examples (~200 docs).
    pub fn small(seed: u64) -> Self {
        CorpusParams {
            num_docs: 200,
            vocab_size: 2_000,
            zipf_exponent: 1.05,
            mean_doc_len: 120,
            hot_keywords: vec![
                HotKeyword::new("network", 1.0, 8.0),
                HotKeyword::new("protocol", 0.5, 4.0),
                HotKeyword::new("cipher", 0.1, 2.0),
            ],
            seed,
        }
    }

    /// The paper's measurement configuration: 1000 files, with "network"
    /// present in every file (posting list of length 1000, the Fig. 4 / 8 /
    /// Table I workload).
    pub fn paper_1000(seed: u64) -> Self {
        CorpusParams {
            num_docs: 1_000,
            vocab_size: 8_000,
            zipf_exponent: 1.05,
            mean_doc_len: 300,
            hot_keywords: vec![
                HotKeyword::new("network", 1.0, 10.0),
                HotKeyword::new("protocol", 0.6, 6.0),
                HotKeyword::new("header", 0.4, 4.0),
                HotKeyword::new("datagram", 0.15, 3.0),
                HotKeyword::new("checksum", 0.08, 2.0),
            ],
            seed,
        }
    }

    /// An RFC-database-scale corpus (5563 documents, matching the paper's
    /// full collection size).
    pub fn rfc_like(seed: u64) -> Self {
        CorpusParams {
            num_docs: 5_563,
            vocab_size: 30_000,
            zipf_exponent: 1.05,
            mean_doc_len: 400,
            hot_keywords: vec![
                HotKeyword::new("network", 0.9, 10.0),
                HotKeyword::new("protocol", 0.7, 8.0),
                HotKeyword::new("header", 0.5, 5.0),
                HotKeyword::new("octet", 0.3, 4.0),
                HotKeyword::new("gateway", 0.2, 3.0),
                HotKeyword::new("multicast", 0.05, 2.0),
            ],
            seed,
        }
    }
}

/// Syllables used to synthesize pronounceable, stemmer-stable vocabulary.
/// None ends in `s`/`e` and none forms common English suffixes, so distinct
/// vocabulary indices stay distinct through the Porter stemmer.
const SYLLABLES: [&str; 40] = [
    "bak", "bor", "dat", "dov", "fal", "fin", "gam", "gor", "hak", "hil", "jat", "jun", "kab",
    "kol", "lam", "lim", "mak", "mon", "nag", "nol", "pag", "pin", "quam", "rok", "ral", "sog",
    "sum", "tak", "tol", "ulm", "urt", "vak", "vol", "wam", "wix", "yat", "yol", "zam", "zot",
    "drin",
];

/// Deterministic pronounceable word for background-vocabulary index `i`.
///
/// Unique for `i < 64_000` (40³ combinations).
pub fn vocab_word(i: usize) -> String {
    assert!(i < 64_000, "vocabulary index out of range");
    let a = SYLLABLES[i / 1600];
    let b = SYLLABLES[(i / 40) % 40];
    let c = SYLLABLES[i % 40];
    format!("{a}{b}{c}")
}

/// A generated document collection.
///
/// # Example
///
/// ```
/// use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
///
/// let corpus = SyntheticCorpus::generate(&CorpusParams::small(7));
/// assert_eq!(corpus.documents().len(), 200);
/// // Determinism: the same seed regenerates the identical corpus.
/// let again = SyntheticCorpus::generate(&CorpusParams::small(7));
/// assert_eq!(corpus.documents()[0].text(), again.documents()[0].text());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    params: CorpusParams,
    documents: Vec<Document>,
}

impl SyntheticCorpus {
    /// Generates the corpus described by `params`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size` exceeds the 64 000 synthesizable words or any
    /// parameter is degenerate (zero documents, zero vocabulary).
    pub fn generate(params: &CorpusParams) -> Self {
        assert!(params.num_docs > 0, "corpus must contain documents");
        assert!(
            (1..=64_000).contains(&params.vocab_size),
            "vocabulary size out of range"
        );
        let mut rng = SmallRng::seed_from_u64(params.seed);
        let zipf = ZipfSampler::new(params.vocab_size, params.zipf_exponent);
        let vocab: Vec<String> = (0..params.vocab_size).map(vocab_word).collect();

        let documents = (0..params.num_docs)
            .map(|i| {
                let id = FileId::new(i as u64 + 1);
                let len = sample_doc_len(&mut rng, params.mean_doc_len);
                let mut tokens: Vec<&str> = (0..len)
                    .map(|_| vocab[zipf.sample(&mut rng)].as_str())
                    .collect();
                for hot in &params.hot_keywords {
                    if rng.gen::<f64>() < hot.doc_fraction {
                        let tf = sample_burst(&mut rng, hot.mean_burst);
                        for _ in 0..tf {
                            tokens.push(hot.term.as_str());
                        }
                    }
                }
                Document::new(id, tokens.join(" "))
            })
            .collect();
        SyntheticCorpus {
            params: params.clone(),
            documents,
        }
    }

    /// The generated documents.
    pub fn documents(&self) -> &[Document] {
        &self.documents
    }

    /// The parameters this corpus was generated from.
    pub fn params(&self) -> &CorpusParams {
        &self.params
    }

    /// Total corpus size in bytes (for Table-I-style reporting).
    pub fn total_bytes(&self) -> usize {
        self.documents.iter().map(Document::byte_len).sum()
    }
}

/// Log-normal document length, clamped to `[30, 20·mean]`.
fn sample_doc_len(rng: &mut SmallRng, mean: usize) -> usize {
    // Box-Muller for a standard normal.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
    let sigma = 0.5;
    // E[lognormal(μ,σ)] = exp(μ + σ²/2) — shift μ so the mean comes out right.
    let mu = (mean as f64).ln() - sigma * sigma / 2.0;
    let len = (mu + sigma * z).exp();
    (len.round() as usize).clamp(30, mean * 20)
}

/// Exponentially bursty term frequency, minimum 1.
fn sample_burst(rng: &mut SmallRng, mean: f64) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (1.0 + (-u.ln()) * (mean - 1.0).max(0.0))
        .round()
        .clamp(1.0, 1e6) as u32
}

/// Zipf(s) sampler over ranks `0..n` via inverse-CDF binary search.
#[derive(Debug, Clone)]
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::InvertedIndex;

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticCorpus::generate(&CorpusParams::small(1));
        let b = SyntheticCorpus::generate(&CorpusParams::small(1));
        let c = SyntheticCorpus::generate(&CorpusParams::small(2));
        assert_eq!(a.documents(), b.documents());
        assert_ne!(a.documents(), c.documents());
    }

    #[test]
    fn vocab_words_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            assert!(seen.insert(vocab_word(i)), "duplicate at {i}");
        }
        assert_eq!(vocab_word(0), vocab_word(0));
    }

    #[test]
    fn vocab_words_survive_stemming_distinctly() {
        use crate::stem::porter_stem;
        let mut stems = std::collections::HashSet::new();
        for i in 0..2000 {
            let w = vocab_word(i);
            let s = porter_stem(&w);
            assert!(stems.insert(s.clone()), "stem collision: {w} -> {s}");
        }
    }

    #[test]
    fn hot_keyword_with_fraction_one_hits_every_document() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(3));
        let index = InvertedIndex::build(corpus.documents());
        assert_eq!(
            index.document_frequency("network"),
            corpus.documents().len() as u64
        );
    }

    #[test]
    fn hot_keyword_fractions_respected() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(4));
        let index = InvertedIndex::build(corpus.documents());
        let n = corpus.documents().len() as f64;
        let protocol = index.document_frequency("protocol") as f64 / n;
        assert!((0.35..0.65).contains(&protocol), "protocol df {protocol}");
        let cipher = index.document_frequency("cipher") as f64 / n;
        assert!((0.02..0.25).contains(&cipher), "cipher df {cipher}");
    }

    #[test]
    fn doc_lengths_are_plausible() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(5));
        let index = InvertedIndex::build(corpus.documents());
        let mean: f64 = corpus
            .documents()
            .iter()
            .map(|d| index.doc_length(d.id()).unwrap() as f64)
            .sum::<f64>()
            / corpus.documents().len() as f64;
        // Stop-word removal and stemming shrink the raw token count a bit;
        // the mean should remain within a factor ~2 of the target.
        assert!(
            (60.0..260.0).contains(&mean),
            "mean indexed length {mean} for target 120"
        );
    }

    #[test]
    fn zipf_head_is_heavy() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(6));
        let index = InvertedIndex::build(corpus.documents());
        // The most common background word must out-document a mid-rank word.
        let head = index.document_frequency(&vocab_word(0));
        let tail = index.document_frequency(&vocab_word(1500));
        assert!(head > tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn score_distribution_for_hot_keyword_is_skewed() {
        // The Fig. 4 precondition: the per-keyword quantized score histogram
        // is skewed (its peak bin holds far more than the uniform share).
        use crate::score::{scores_for_term, ScoreQuantizer};
        let corpus = SyntheticCorpus::generate(&CorpusParams::paper_1000(42));
        let index = InvertedIndex::build(corpus.documents());
        let scores = scores_for_term(&index, "network");
        assert_eq!(scores.len(), 1000);
        let raw: Vec<f64> = scores.iter().map(|(_, s)| *s).collect();
        let q = ScoreQuantizer::fit(&raw, 128).unwrap();
        let mut hist = [0u32; 128];
        for &s in &raw {
            hist[(q.level(s) - 1) as usize] += 1;
        }
        let max_bin = *hist.iter().max().unwrap() as f64;
        let uniform = 1000.0 / 128.0;
        assert!(
            max_bin > 4.0 * uniform,
            "histogram too flat: peak {max_bin} vs uniform {uniform}"
        );
    }

    #[test]
    #[should_panic(expected = "vocabulary size")]
    fn rejects_oversized_vocabulary() {
        let mut p = CorpusParams::small(0);
        p.vocab_size = 100_000;
        SyntheticCorpus::generate(&p);
    }

    #[test]
    fn total_bytes_positive() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(9));
        assert!(corpus.total_bytes() > 10_000);
    }
}
