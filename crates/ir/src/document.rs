//! Documents and file identifiers.

use serde::{Deserialize, Serialize};

/// The identifier `id(F_j)` that uniquely locates a file.
///
/// A thin wrapper over `u64`; the byte representation feeds the OPM seed
/// (`TapeGen(K, (D, R, 1‖m, id(F)))`), so it must be stable and canonical.
///
/// # Example
///
/// ```
/// use rsse_ir::FileId;
///
/// let id = FileId::new(42);
/// assert_eq!(id.as_u64(), 42);
/// assert_eq!(FileId::from_bytes(id.to_bytes()), id);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FileId(u64);

impl FileId {
    /// Wraps a raw identifier.
    pub fn new(id: u64) -> Self {
        FileId(id)
    }

    /// The raw identifier.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Canonical 8-byte big-endian encoding (the OPM seed material).
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_be_bytes()
    }

    /// Decodes the canonical encoding.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        FileId(u64::from_be_bytes(bytes))
    }
}

impl core::fmt::Display for FileId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl From<u64> for FileId {
    fn from(v: u64) -> Self {
        FileId(v)
    }
}

/// A plaintext file in the owner's collection `C`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    id: FileId,
    text: String,
}

impl Document {
    /// Creates a document.
    pub fn new(id: FileId, text: impl Into<String>) -> Self {
        Document {
            id,
            text: text.into(),
        }
    }

    /// The document's identifier.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The document's plaintext body.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Body length in bytes (used by the bandwidth accounting of the cloud
    /// simulation).
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_roundtrip() {
        for v in [0u64, 1, 42, u64::MAX] {
            let id = FileId::new(v);
            assert_eq!(FileId::from_bytes(id.to_bytes()), id);
            assert_eq!(id.as_u64(), v);
        }
    }

    #[test]
    fn file_id_display() {
        assert_eq!(FileId::new(7).to_string(), "F7");
    }

    #[test]
    fn file_id_ordering_matches_u64() {
        assert!(FileId::new(1) < FileId::new(2));
    }

    #[test]
    fn document_accessors() {
        let d = Document::new(FileId::new(3), "hello world");
        assert_eq!(d.id(), FileId::new(3));
        assert_eq!(d.text(), "hello world");
        assert_eq!(d.byte_len(), 11);
    }
}
