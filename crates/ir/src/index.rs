//! The plaintext inverted index (postings file).
//!
//! `InvertedIndex` is the classical IR structure of the paper's Fig. 2: a
//! map from each distinct keyword `w_i` to its posting list `F(w_i)` of
//! `(file id, term frequency)` pairs, plus the per-document lengths `|F_d|`
//! needed by the scoring formula. The secure schemes (basic SSE and RSSE)
//! are built by encrypting this structure.

use crate::document::{Document, FileId};
use crate::text::Tokenizer;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One entry of a posting list: a file containing the keyword, with its
/// term frequency `f_{d,t}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The containing file.
    pub file: FileId,
    /// Number of occurrences of the term in the file.
    pub term_frequency: u32,
}

/// The plaintext inverted index over a document collection.
///
/// # Example
///
/// ```
/// use rsse_ir::{Document, FileId, InvertedIndex};
///
/// let docs = vec![
///     Document::new(FileId::new(1), "cloud networks and cloud storage"),
///     Document::new(FileId::new(2), "network protocols"),
/// ];
/// let index = InvertedIndex::build(&docs);
/// let postings = index.postings("network").unwrap();
/// assert_eq!(postings.len(), 2); // both documents mention network(s)
/// assert!(index.postings("zebra").is_none());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Keyword → posting list, ordered for deterministic iteration.
    postings: BTreeMap<String, Vec<Posting>>,
    /// `|F_d|`: number of indexed terms per document.
    doc_lengths: HashMap<FileId, u32>,
    /// Total number of documents `N`.
    num_docs: u64,
}

impl InvertedIndex {
    /// Builds the index with the default tokenizer.
    pub fn build(documents: &[Document]) -> Self {
        Self::build_with(documents, &Tokenizer::new())
    }

    /// Builds the index with an explicit tokenizer.
    pub fn build_with(documents: &[Document], tokenizer: &Tokenizer) -> Self {
        let mut postings: BTreeMap<String, Vec<Posting>> = BTreeMap::new();
        let mut doc_lengths = HashMap::with_capacity(documents.len());
        for doc in documents {
            let tokens = tokenizer.tokenize(doc.text());
            doc_lengths.insert(doc.id(), tokens.len() as u32);
            let mut tf: HashMap<&str, u32> = HashMap::new();
            for token in &tokens {
                *tf.entry(token.as_str()).or_insert(0) += 1;
            }
            for (term, count) in tf {
                postings.entry(term.to_string()).or_default().push(Posting {
                    file: doc.id(),
                    term_frequency: count,
                });
            }
        }
        // Deterministic posting order: by file id.
        for list in postings.values_mut() {
            list.sort_by_key(|p| p.file);
        }
        InvertedIndex {
            postings,
            doc_lengths,
            num_docs: documents.len() as u64,
        }
    }

    /// The posting list `F(w)` for keyword `w` (already tokenized/stemmed),
    /// or `None` if no document contains it.
    pub fn postings(&self, term: &str) -> Option<&[Posting]> {
        self.postings.get(term).map(|v| v.as_slice())
    }

    /// Looks up a raw (unstemmed) keyword by running it through `tokenizer`
    /// first — what a user types versus what the index stores.
    pub fn postings_for_query(&self, query: &str, tokenizer: &Tokenizer) -> Option<&[Posting]> {
        let tokens = tokenizer.tokenize(query);
        let term = tokens.first()?;
        self.postings(term)
    }

    /// Iterates over `(keyword, posting list)` pairs in keyword order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[Posting])> {
        self.postings
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of distinct keywords `m`.
    pub fn num_keywords(&self) -> usize {
        self.postings.len()
    }

    /// Number of documents `N` in the collection.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// `N_i = |F(w_i)|` for keyword `w`, or 0 if absent.
    pub fn document_frequency(&self, term: &str) -> u64 {
        self.postings.get(term).map_or(0, |v| v.len() as u64)
    }

    /// `|F_d|`: indexed length of document `d`, or `None` for unknown files.
    pub fn doc_length(&self, file: FileId) -> Option<u32> {
        self.doc_lengths.get(&file).copied()
    }

    /// The largest posting-list length `ν = max_i N_i` — the padding target
    /// of the paper's `BuildIndex`.
    pub fn max_posting_len(&self) -> usize {
        self.postings.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Mean indexed document length (the BM25 normalization input).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_lengths.is_empty() {
            return 0.0;
        }
        self.doc_lengths.values().map(|&l| l as f64).sum::<f64>() / self.doc_lengths.len() as f64
    }

    /// The average posting-list length `λ` used by the range-size selection.
    pub fn avg_posting_len(&self) -> f64 {
        if self.postings.is_empty() {
            return 0.0;
        }
        self.postings.values().map(Vec::len).sum::<usize>() as f64 / self.postings.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_docs() -> Vec<Document> {
        vec![
            Document::new(
                FileId::new(1),
                "cloud computing and cloud storage in the cloud",
            ),
            Document::new(FileId::new(2), "network protocols for cloud networks"),
            Document::new(FileId::new(3), "database systems"),
        ]
    }

    #[test]
    fn term_frequencies_counted() {
        let idx = InvertedIndex::build(&sample_docs());
        let cloud = idx.postings("cloud").unwrap();
        let f1 = cloud.iter().find(|p| p.file == FileId::new(1)).unwrap();
        assert_eq!(f1.term_frequency, 3);
    }

    #[test]
    fn stemming_merges_variants() {
        let idx = InvertedIndex::build(&sample_docs());
        // "network" and "networks" both stem to "network".
        let net = idx.postings("network").unwrap();
        assert_eq!(net.len(), 1);
        assert_eq!(net[0].term_frequency, 2);
    }

    #[test]
    fn doc_lengths_recorded() {
        let idx = InvertedIndex::build(&sample_docs());
        // Doc 3: "database systems" → [databas, system] → length 2.
        assert_eq!(idx.doc_length(FileId::new(3)), Some(2));
        assert_eq!(idx.doc_length(FileId::new(99)), None);
    }

    #[test]
    fn document_frequency_and_counts() {
        let idx = InvertedIndex::build(&sample_docs());
        assert_eq!(idx.num_docs(), 3);
        assert_eq!(idx.document_frequency("cloud"), 2);
        assert_eq!(idx.document_frequency("zebra"), 0);
    }

    #[test]
    fn postings_sorted_by_file_id() {
        let docs = vec![
            Document::new(FileId::new(9), "alpha"),
            Document::new(FileId::new(2), "alpha"),
            Document::new(FileId::new(5), "alpha"),
        ];
        let idx = InvertedIndex::build(&docs);
        let files: Vec<u64> = idx
            .postings("alpha")
            .unwrap()
            .iter()
            .map(|p| p.file.as_u64())
            .collect();
        assert_eq!(files, vec![2, 5, 9]);
    }

    #[test]
    fn query_stemming_resolves_to_index_term() {
        let idx = InvertedIndex::build(&sample_docs());
        let t = Tokenizer::new();
        assert!(idx.postings_for_query("Networks", &t).is_some());
        assert!(idx.postings_for_query("networking", &t).is_some());
        assert!(
            idx.postings_for_query("the", &t).is_none(),
            "stop word only"
        );
    }

    #[test]
    fn empty_collection() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.num_keywords(), 0);
        assert_eq!(idx.max_posting_len(), 0);
        assert_eq!(idx.avg_posting_len(), 0.0);
    }

    #[test]
    fn padding_statistics() {
        let idx = InvertedIndex::build(&sample_docs());
        assert!(idx.max_posting_len() >= 2);
        assert!(idx.avg_posting_len() > 0.0);
    }
}
