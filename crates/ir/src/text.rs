//! Tokenization pipeline: case folding → splitting → stop-word removal →
//! Porter stemming.
//!
//! Mirrors the "standard IR techniques" the paper applies before keyword
//! extraction (§II, footnote 2).

use crate::stem::porter_stem;

/// The default English stop-word list (a compact version of the classic
/// SMART list — enough to keep function words out of the index).
pub const STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as",
    "at", "be", "because", "been", "before", "being", "below", "between", "both", "but", "by",
    "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "may", "me", "more", "most", "must", "my",
    "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "out",
    "over", "own", "same", "shall", "she", "should", "so", "some", "such", "than", "that", "the",
    "their", "them", "then", "there", "these", "they", "this", "those", "through", "to", "too",
    "under", "until", "up", "upon", "very", "was", "we", "were", "what", "when", "where", "which",
    "while", "who", "whom", "why", "will", "with", "would", "you", "your",
];

/// Configuration for the tokenizer.
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Drop tokens found in the stop list.
    pub remove_stop_words: bool,
    /// Apply the Porter stemmer.
    pub stem: bool,
    /// Drop tokens shorter than this many characters (after stemming).
    pub min_token_len: usize,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            remove_stop_words: true,
            stem: true,
            min_token_len: 2,
        }
    }
}

/// The tokenization pipeline.
///
/// # Example
///
/// ```
/// use rsse_ir::text::Tokenizer;
///
/// let t = Tokenizer::new();
/// let tokens = t.tokenize("The networks are routing packets!");
/// assert_eq!(tokens, vec!["network", "rout", "packet"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the default configuration (stop words
    /// removed, stemming on).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tokenizer with an explicit configuration.
    pub fn with_config(config: TokenizerConfig) -> Self {
        Tokenizer { config }
    }

    /// Whether `word` (already lowercase) is a stop word.
    pub fn is_stop_word(word: &str) -> bool {
        STOP_WORDS.binary_search(&word).is_ok()
    }

    /// Splits `text` into index terms.
    ///
    /// Index terms are stemmer *fixed points* (stemming is iterated until
    /// stable) and are stop-word-filtered both before and after stemming
    /// ("NOS" → "no" would otherwise smuggle a stop word into the index),
    /// so `tokenize` is idempotent: re-tokenizing its own output yields the
    /// same terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|s| !s.is_empty())
            .map(|raw| raw.to_lowercase())
            .filter(|lower| !self.config.remove_stop_words || !Self::is_stop_word(lower))
            .map(|lower| {
                if self.config.stem {
                    // Porter is not idempotent on rare inputs; iterate to a
                    // fixed point (converges in a couple of steps).
                    let mut word = lower;
                    loop {
                        let stemmed = porter_stem(&word);
                        if stemmed == word {
                            break word;
                        }
                        word = stemmed;
                    }
                } else {
                    lower
                }
            })
            .filter(|token| !self.config.remove_stop_words || !Self::is_stop_word(token))
            .filter(|token| token.chars().count() >= self.config.min_token_len)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_word_list_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must stay sorted");
    }

    #[test]
    fn basic_pipeline() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("The quick brown foxes are jumping!"),
            vec!["quick", "brown", "fox", "jump"]
        );
    }

    #[test]
    fn case_folding() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("NETWORK Network network"), vec!["network"; 3]);
    }

    #[test]
    fn punctuation_and_numbers() {
        let t = Tokenizer::new();
        assert_eq!(
            t.tokenize("TCP/IP, RFC-793; port=80"),
            vec!["tcp", "ip", "rfc", "793", "port", "80"]
        );
    }

    #[test]
    fn stop_words_removed() {
        let t = Tokenizer::new();
        assert!(t.tokenize("the of and to in").is_empty());
    }

    #[test]
    fn stemming_can_be_disabled() {
        let t = Tokenizer::with_config(TokenizerConfig {
            stem: false,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("networks routing"), vec!["networks", "routing"]);
    }

    #[test]
    fn stop_removal_can_be_disabled() {
        let t = Tokenizer::with_config(TokenizerConfig {
            remove_stop_words: false,
            stem: false,
            min_token_len: 1,
        });
        assert_eq!(t.tokenize("the cat"), vec!["the", "cat"]);
    }

    #[test]
    fn min_length_filter() {
        let t = Tokenizer::new();
        // Single letters survive splitting but are dropped by the filter
        // ("a" is also a stop word; "x" is not).
        assert!(t.tokenize("x y z").is_empty());
    }

    #[test]
    fn empty_and_whitespace_input() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   \t\n  ").is_empty());
    }

    #[test]
    fn unicode_survives() {
        let t = Tokenizer::new();
        let tokens = t.tokenize("café naïve");
        assert_eq!(tokens, vec!["café", "naïve"]);
    }
}
