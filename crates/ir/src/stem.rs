//! The Porter stemming algorithm (Porter, 1980), from the original paper.
//!
//! The RSSE paper's index-construction step applies "a list of standard IR
//! techniques … including case folding, stemming, and stop words" before
//! keyword extraction; this module supplies the stemming stage.

/// Stems an English word with Porter's algorithm.
///
/// Input is expected to be lowercase ASCII; non-ASCII input is returned
/// unchanged. Words of length ≤ 2 are returned unchanged, per the original
/// algorithm.
///
/// # Example
///
/// ```
/// use rsse_ir::stem::porter_stem;
///
/// assert_eq!(porter_stem("caresses"), "caress");
/// assert_eq!(porter_stem("ponies"), "poni");
/// assert_eq!(porter_stem("relational"), "relat");
/// assert_eq!(porter_stem("networks"), "network");
/// ```
pub fn porter_stem(word: &str) -> String {
    if !word.is_ascii() || word.len() <= 2 {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.bytes().collect();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii in, ascii out")
}

/// Is `w[i]` a consonant (Porter's definition: `y` is a consonant when it
/// follows a vowel position rule)?
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// Porter's measure `m` of the stem `w[..len]`: the number of VC sequences
/// in the form `[C](VC)^m[V]`.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip the initial consonant run.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Vowel run.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Consonant run ends one VC block.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// Does the stem `w[..len]` contain a vowel?
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// Does `w[..len]` end with a double consonant?
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// Does `w[..len]` end consonant-vowel-consonant, where the final consonant
/// is not `w`, `x`, or `y`? (Porter's `*o` condition.)
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    let c = w[len - 1];
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && c != b'w'
        && c != b'x'
        && c != b'y'
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// Replaces `suffix` with `replacement` if the remaining stem has
/// `measure > threshold`. Returns whether the suffix matched (regardless of
/// whether the replacement fired).
fn replace_if_measure(
    w: &mut Vec<u8>,
    suffix: &[u8],
    replacement: &[u8],
    threshold: usize,
) -> bool {
    if !ends_with(w, suffix) {
        return false;
    }
    let stem_len = w.len() - suffix.len();
    if measure(w, stem_len) > threshold {
        w.truncate(stem_len);
        w.extend_from_slice(replacement);
    }
    true
}

#[allow(clippy::if_same_then_else)] // distinct Porter rules sharing an action
fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, b"sses") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, b"eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let matched = if ends_with(w, b"ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, b"ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if matched {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) {
            let last = w[w.len() - 1];
            if last != b'l' && last != b's' && last != b'z' {
                w.truncate(w.len() - 1);
            }
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let last = w.len() - 1;
        w[last] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suffix, replacement) in RULES {
        if replace_if_measure(w, suffix, replacement, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const RULES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    for suffix in RULES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    // Special case: -ion only drops after s or t.
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0
            && (w[stem_len - 1] == b's' || w[stem_len - 1] == b't')
            && measure(w, stem_len) > 1
        {
            w.truncate(stem_len);
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if ends_with(w, b"ll") && measure(w, w.len()) > 1 {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_pairs_from_porters_paper() {
        // Examples drawn from Porter (1980).
        let cases = [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
            ("happy", "happi"),
            ("sky", "sky"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ];
        for (input, want) in cases {
            assert_eq!(porter_stem(input), want, "stem({input})");
        }
    }

    #[test]
    fn ir_vocabulary() {
        assert_eq!(porter_stem("networks"), "network");
        assert_eq!(porter_stem("networking"), "network");
        assert_eq!(porter_stem("protocols"), "protocol");
        assert_eq!(porter_stem("routing"), "rout");
        assert_eq!(porter_stem("routed"), "rout");
        assert_eq!(porter_stem("encryption"), "encrypt");
        assert_eq!(porter_stem("encrypted"), "encrypt");
        assert_eq!(porter_stem("searching"), "search");
        assert_eq!(porter_stem("searches"), "search");
    }

    #[test]
    fn short_words_untouched() {
        assert_eq!(porter_stem("as"), "as");
        assert_eq!(porter_stem("is"), "is");
        assert_eq!(porter_stem("a"), "a");
        assert_eq!(porter_stem(""), "");
    }

    #[test]
    fn non_ascii_untouched() {
        assert_eq!(porter_stem("café"), "café");
    }

    #[test]
    fn idempotent_on_common_stems() {
        for word in ["network", "protocol", "search", "cloud", "server"] {
            let once = porter_stem(word);
            assert_eq!(porter_stem(&once), once, "{word}");
        }
    }

    #[test]
    fn measure_examples() {
        // From the paper: tr=0, ee=0, tree=0, y=0, by=0;
        // trouble=1, oats=1, trees=1, ivy=1;
        // troubles=2, private=2, oaten=2, orrery=2.
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("y"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("trees"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
        assert_eq!(m("oaten"), 2);
        assert_eq!(m("orrery"), 2);
    }
}
