//! Information-retrieval substrate for ranked searchable encryption.
//!
//! Implements everything the RSSE paper borrows from the IR community:
//!
//! * [`text`] — tokenizer with case folding, stop-word removal, and the
//!   Porter stemmer ([`stem`]);
//! * [`index`] — the classical inverted index (posting lists, Fig. 2);
//! * [`score`] — TF×IDF relevance scoring (paper eq. 1 and eq. 2) and
//!   quantization of scores into the OPSE plaintext domain;
//! * [`corpus`] — a deterministic synthetic stand-in for the paper's RFC
//!   test collection.
//!
//! # Example
//!
//! ```
//! use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
//! use rsse_ir::score::scores_for_term;
//! use rsse_ir::InvertedIndex;
//!
//! let corpus = SyntheticCorpus::generate(&CorpusParams::small(1));
//! let index = InvertedIndex::build(corpus.documents());
//! let scored = scores_for_term(&index, "network");
//! assert_eq!(scored.len() as u64, index.document_frequency("network"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod document;
pub mod index;
pub mod score;
pub mod stem;
pub mod text;

pub use document::{Document, FileId};
pub use index::{InvertedIndex, Posting};
pub use score::{score_query, score_single, ScoreQuantizer, ScoringFunction};
pub use text::{Tokenizer, TokenizerConfig};
