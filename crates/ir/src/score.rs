//! Relevance scoring: the TF×IDF formulas of the paper (eq. 1 and eq. 2)
//! and the quantization of scores into the OPSE domain.

use crate::index::InvertedIndex;
use crate::FileId;
use serde::{Deserialize, Serialize};

/// Single-keyword relevance score — the paper's equation (2):
///
/// ```text
/// Score(t, F_d) = (1 / |F_d|) · (1 + ln f_{d,t})
/// ```
///
/// For single-keyword search the IDF factor is constant per query, so this
/// suffices for correct ranking.
///
/// # Example
///
/// ```
/// use rsse_ir::score::score_single;
///
/// // tf = 1 in a 100-term document
/// let s = score_single(1, 100);
/// assert!((s - 0.01).abs() < 1e-12);
/// // Higher tf in the same document scores strictly higher.
/// assert!(score_single(5, 100) > s);
/// ```
///
/// # Panics
///
/// Panics if `doc_len == 0` or `term_frequency == 0` (a posting with zero
/// occurrences cannot exist).
pub fn score_single(term_frequency: u32, doc_len: u32) -> f64 {
    assert!(term_frequency > 0, "postings always have tf >= 1");
    assert!(doc_len > 0, "documents in the index are non-empty");
    (1.0 + (term_frequency as f64).ln()) / doc_len as f64
}

/// Multi-keyword relevance score — the paper's equation (1):
///
/// ```text
/// Score(Q, F_d) = (1/|F_d|) · Σ_{t∈Q} (1 + ln f_{d,t}) · ln(1 + N/f_t)
/// ```
///
/// `terms` supplies, for each query keyword present in the document, the
/// pair `(f_{d,t}, f_t)` — term frequency in the document and document
/// frequency in the collection.
///
/// # Panics
///
/// Panics if `doc_len == 0`, or any `f_t == 0` with a matching posting.
pub fn score_query(terms: &[(u32, u64)], doc_len: u32, num_docs: u64) -> f64 {
    assert!(doc_len > 0, "documents in the index are non-empty");
    let mut acc = 0.0;
    for &(tf, df) in terms {
        if tf == 0 {
            continue;
        }
        assert!(df > 0, "a matched term must occur in >= 1 document");
        acc += (1.0 + (tf as f64).ln()) * (1.0 + num_docs as f64 / df as f64).ln();
    }
    acc / doc_len as f64
}

/// Computes eq. (2) for every posting of `term` in `index`.
///
/// Returns `(file, raw score)` pairs in posting order, or an empty vector
/// for unknown terms.
pub fn scores_for_term(index: &InvertedIndex, term: &str) -> Vec<(FileId, f64)> {
    scores_for_term_with(index, term, ScoringFunction::PaperEq2)
}

/// Like [`scores_for_term`] with an explicit [`ScoringFunction`].
pub fn scores_for_term_with(
    index: &InvertedIndex,
    term: &str,
    scoring: ScoringFunction,
) -> Vec<(FileId, f64)> {
    let Some(postings) = index.postings(term) else {
        return Vec::new();
    };
    let stats = CollectionStats::of(index);
    let df = postings.len() as u64;
    postings
        .iter()
        .map(|p| {
            let len = index
                .doc_length(p.file)
                .expect("posting refers to an indexed document");
            (p.file, scoring.score(p.term_frequency, len, df, &stats))
        })
        .collect()
}

/// Collection-level statistics some scoring functions need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Total number of documents `N`.
    pub num_docs: u64,
    /// Mean indexed document length.
    pub avg_doc_len: f64,
}

impl CollectionStats {
    /// Reads the statistics off a built index.
    pub fn of(index: &InvertedIndex) -> Self {
        CollectionStats {
            num_docs: index.num_docs(),
            avg_doc_len: index.avg_doc_len(),
        }
    }
}

/// The relevance-scoring function used for posting scores.
///
/// The paper notes that "among several hundred variations of the TF×IDF
/// weighting scheme, no single combination of them outperforms any of the
/// others universally" and picks eq. (2) as its example; this enum makes
/// the choice explicit while keeping the paper's formula the default.
/// Every variant is monotone in term frequency for a fixed document, so
/// order-preserving encryption applies to all of them unchanged.
///
/// # Example
///
/// ```
/// use rsse_ir::score::{CollectionStats, ScoringFunction};
///
/// let stats = CollectionStats { num_docs: 1000, avg_doc_len: 300.0 };
/// let eq2 = ScoringFunction::PaperEq2.score(5, 300, 100, &stats);
/// let bm25 = ScoringFunction::bm25().score(5, 300, 100, &stats);
/// assert!(eq2 > 0.0 && bm25 > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ScoringFunction {
    /// The paper's eq. (2): `(1 + ln tf) / |F_d|` (single-keyword ranking;
    /// IDF is constant per query).
    #[default]
    PaperEq2,
    /// Okapi BM25 with parameters `k1` and `b`.
    Bm25 {
        /// Term-frequency saturation (`k1`, commonly 1.2).
        k1: f64,
        /// Length-normalization strength (`b`, commonly 0.75).
        b: f64,
    },
    /// Sublinear TF × IDF: `(1 + ln tf) · ln(1 + N/df)` without length
    /// normalization.
    SublinearTfIdf,
}

impl ScoringFunction {
    /// BM25 with the standard `k1 = 1.2`, `b = 0.75`.
    pub fn bm25() -> Self {
        ScoringFunction::Bm25 { k1: 1.2, b: 0.75 }
    }

    /// Evaluates the function for one posting.
    ///
    /// # Panics
    ///
    /// Panics if `tf == 0` or `doc_len == 0` (no such posting can exist).
    pub fn score(&self, tf: u32, doc_len: u32, df: u64, stats: &CollectionStats) -> f64 {
        assert!(tf > 0, "postings always have tf >= 1");
        assert!(doc_len > 0, "documents in the index are non-empty");
        match *self {
            ScoringFunction::PaperEq2 => score_single(tf, doc_len),
            ScoringFunction::Bm25 { k1, b } => {
                let tf = tf as f64;
                let len_ratio = if stats.avg_doc_len > 0.0 {
                    doc_len as f64 / stats.avg_doc_len
                } else {
                    1.0
                };
                // Standard BM25 IDF with the +1 smoothing so it stays
                // positive even for very common terms.
                let idf =
                    (1.0 + (stats.num_docs as f64 - df as f64 + 0.5) / (df as f64 + 0.5)).ln();
                idf * tf * (k1 + 1.0) / (tf + k1 * (1.0 - b + b * len_ratio))
            }
            ScoringFunction::SublinearTfIdf => {
                let idf = (1.0 + stats.num_docs as f64 / df.max(1) as f64).ln();
                (1.0 + (tf as f64).ln()) * idf
            }
        }
    }
}

/// Quantizes raw floating-point relevance scores into the integer domain
/// `{1..M}` consumed by OPSE/OPM ("we encode the actual score into 128
/// levels", paper §IV-A).
///
/// Fitting records the observed maximum; levels are assigned by linear
/// scaling. Scores above the fitted maximum (e.g. from documents inserted
/// later) clamp to level `M`.
///
/// # Example
///
/// ```
/// use rsse_ir::score::ScoreQuantizer;
///
/// let q = ScoreQuantizer::fit(&[0.5, 0.25, 1.0], 128).unwrap();
/// assert_eq!(q.level(1.0), 128);
/// assert_eq!(q.level(0.5), 64);
/// assert_eq!(q.level(0.0), 1);
/// assert_eq!(q.level(99.0), 128); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreQuantizer {
    max_score: f64,
    levels: u64,
}

impl ScoreQuantizer {
    /// Fits the quantizer to the observed `scores` with `levels = M`.
    ///
    /// Returns `None` if `scores` is empty, contains non-finite values, or
    /// `levels == 0`.
    pub fn fit(scores: &[f64], levels: u64) -> Option<Self> {
        if levels == 0 || scores.is_empty() {
            return None;
        }
        let mut max_score = 0.0f64;
        for &s in scores {
            if !s.is_finite() || s < 0.0 {
                return None;
            }
            max_score = max_score.max(s);
        }
        if max_score == 0.0 {
            return None;
        }
        Some(ScoreQuantizer { max_score, levels })
    }

    /// Fits the quantizer to every score in `index` (the owner's one pass
    /// over the collection before building the secure index).
    pub fn fit_index(index: &InvertedIndex, levels: u64) -> Option<Self> {
        Self::fit_index_with(index, levels, ScoringFunction::PaperEq2)
    }

    /// Like [`Self::fit_index`] with an explicit [`ScoringFunction`].
    pub fn fit_index_with(
        index: &InvertedIndex,
        levels: u64,
        scoring: ScoringFunction,
    ) -> Option<Self> {
        let mut all = Vec::new();
        for (term, _) in index.iter() {
            all.extend(
                scores_for_term_with(index, term, scoring)
                    .into_iter()
                    .map(|(_, s)| s),
            );
        }
        Self::fit(&all, levels)
    }

    /// Number of quantization levels `M`.
    pub fn levels(&self) -> u64 {
        self.levels
    }

    /// The fitted maximum raw score (level `M`'s lower edge).
    pub fn max_score(&self) -> f64 {
        self.max_score
    }

    /// Maps a raw score to its level in `{1..M}`.
    pub fn level(&self, score: f64) -> u64 {
        if !score.is_finite() || score <= 0.0 {
            return 1;
        }
        let scaled = (score / self.max_score * self.levels as f64).ceil() as u64;
        scaled.clamp(1, self.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Document;

    #[test]
    fn eq2_monotone_in_tf() {
        let mut prev = 0.0;
        for tf in 1..100 {
            let s = score_single(tf, 500);
            assert!(s > prev);
            prev = s;
        }
    }

    #[test]
    fn eq2_normalized_by_length() {
        assert!(score_single(5, 100) > score_single(5, 1000));
        // Exactly 10x difference: the length is a pure divisor.
        let ratio = score_single(5, 100) / score_single(5, 1000);
        assert!((ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn eq1_reduces_to_tf_weight_per_term() {
        // A single term with N/f_t fixed: eq. (1) ∝ eq. (2)'s tf part.
        let s = score_query(&[(3, 10)], 100, 1000);
        let expected = (1.0 + 3f64.ln()) * 101f64.ln() / 100.0;
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn eq1_rare_terms_weighted_higher() {
        // Same tf, rarer term (smaller f_t) must contribute more.
        let rare = score_query(&[(2, 5)], 100, 1000);
        let common = score_query(&[(2, 900)], 100, 1000);
        assert!(rare > common);
    }

    #[test]
    fn eq1_sums_over_terms() {
        let both = score_query(&[(2, 10), (4, 20)], 100, 1000);
        let first = score_query(&[(2, 10)], 100, 1000);
        let second = score_query(&[(4, 20)], 100, 1000);
        assert!((both - first - second).abs() < 1e-12);
    }

    #[test]
    fn eq1_skips_absent_terms() {
        let s = score_query(&[(0, 10), (2, 10)], 100, 1000);
        assert!((s - score_query(&[(2, 10)], 100, 1000)).abs() < 1e-15);
    }

    #[test]
    fn scores_for_term_over_index() {
        let docs = vec![
            Document::new(FileId::new(1), "network network network packet"),
            Document::new(FileId::new(2), "network"),
        ];
        let idx = InvertedIndex::build(&docs);
        let scores = scores_for_term(&idx, "network");
        assert_eq!(scores.len(), 2);
        // Doc 2 is one term long with tf=1 → score 1.0; doc 1 has tf=3 over
        // 4 terms → (1+ln3)/4 ≈ 0.525. Doc 2 ranks higher.
        let s1 = scores.iter().find(|(f, _)| *f == FileId::new(1)).unwrap().1;
        let s2 = scores.iter().find(|(f, _)| *f == FileId::new(2)).unwrap().1;
        assert!(s2 > s1);
        assert!(scores_for_term(&idx, "absent").is_empty());
    }

    #[test]
    fn quantizer_levels_and_clamping() {
        let q = ScoreQuantizer::fit(&[2.0], 128).unwrap();
        assert_eq!(q.level(2.0), 128);
        assert_eq!(q.level(2.0 / 128.0), 1);
        assert_eq!(q.level(-1.0), 1);
        assert_eq!(q.level(f64::NAN), 1);
        assert_eq!(q.level(1e9), 128);
    }

    #[test]
    fn quantizer_preserves_order_up_to_level_resolution() {
        let scores: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        let q = ScoreQuantizer::fit(&scores, 128).unwrap();
        let mut prev = 0;
        for &s in &scores {
            let l = q.level(s);
            assert!(l >= prev, "quantization must be monotone");
            prev = l;
        }
        assert_eq!(q.level(scores[999]), 128);
    }

    #[test]
    fn quantizer_rejects_bad_input() {
        assert!(ScoreQuantizer::fit(&[], 128).is_none());
        assert!(ScoreQuantizer::fit(&[1.0], 0).is_none());
        assert!(ScoreQuantizer::fit(&[f64::NAN], 128).is_none());
        assert!(ScoreQuantizer::fit(&[-0.5], 128).is_none());
        assert!(ScoreQuantizer::fit(&[0.0, 0.0], 128).is_none());
    }

    #[test]
    fn bm25_saturates_in_tf() {
        let stats = CollectionStats {
            num_docs: 1000,
            avg_doc_len: 300.0,
        };
        let f = ScoringFunction::bm25();
        let s1 = f.score(1, 300, 100, &stats);
        let s10 = f.score(10, 300, 100, &stats);
        let s100 = f.score(100, 300, 100, &stats);
        assert!(s10 > s1 && s100 > s10, "monotone");
        // Diminishing returns: the 10→100 gain is smaller than 1→10.
        assert!(s100 - s10 < s10 - s1, "saturation");
        // Bounded by idf·(k1+1).
        let bound = (1.0 + (1000.0 - 100.0 + 0.5) / 100.5f64).ln() * 2.2;
        assert!(s100 < bound);
    }

    #[test]
    fn bm25_penalizes_long_documents() {
        let stats = CollectionStats {
            num_docs: 1000,
            avg_doc_len: 300.0,
        };
        let f = ScoringFunction::bm25();
        assert!(f.score(5, 100, 50, &stats) > f.score(5, 900, 50, &stats));
    }

    #[test]
    fn all_scorers_monotone_in_tf() {
        let stats = CollectionStats {
            num_docs: 500,
            avg_doc_len: 200.0,
        };
        for f in [
            ScoringFunction::PaperEq2,
            ScoringFunction::bm25(),
            ScoringFunction::SublinearTfIdf,
        ] {
            let mut prev = 0.0;
            for tf in 1..50 {
                let s = f.score(tf, 200, 40, &stats);
                assert!(s > prev, "{f:?} not monotone at tf={tf}");
                prev = s;
            }
        }
    }

    #[test]
    fn sublinear_tfidf_weighs_rare_terms() {
        let stats = CollectionStats {
            num_docs: 1000,
            avg_doc_len: 300.0,
        };
        let f = ScoringFunction::SublinearTfIdf;
        assert!(f.score(3, 300, 2, &stats) > f.score(3, 300, 900, &stats));
    }

    #[test]
    fn scores_for_term_with_bm25_over_index() {
        let docs = vec![
            Document::new(
                FileId::new(1),
                "network network network padding words here now",
            ),
            Document::new(FileId::new(2), "network"),
        ];
        let idx = InvertedIndex::build(&docs);
        let scored = scores_for_term_with(&idx, "network", ScoringFunction::bm25());
        assert_eq!(scored.len(), 2);
        assert!(scored.iter().all(|(_, s)| s.is_finite() && *s > 0.0));
    }

    #[test]
    fn quantizer_fit_index() {
        let docs = vec![
            Document::new(FileId::new(1), "alpha beta alpha"),
            Document::new(FileId::new(2), "alpha gamma"),
        ];
        let idx = InvertedIndex::build(&docs);
        let q = ScoreQuantizer::fit_index(&idx, 64).unwrap();
        assert_eq!(q.levels(), 64);
        assert!(q.max_score() > 0.0);
    }
}
