//! Property-based tests of the IR substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse_ir::score::{score_single, scores_for_term};
use rsse_ir::stem::porter_stem;
use rsse_ir::{Document, FileId, InvertedIndex, ScoreQuantizer, Tokenizer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The stemmer never panics, never grows a word, and is idempotent for
    /// the overwhelming majority of outputs (we assert full idempotence on
    /// its own output — the classical fixed-point property).
    #[test]
    fn stemmer_contracts(word in "[a-z]{1,20}") {
        let once = porter_stem(&word);
        prop_assert!(once.len() <= word.len() + 1, "{word} grew to {once}");
        let twice = porter_stem(&once);
        // Porter is not strictly idempotent on all inputs; allow one more
        // application to converge, then require a fixed point.
        let thrice = porter_stem(&twice);
        prop_assert_eq!(&thrice, &twice, "no fixed point for {}", word);
    }

    /// Tokenize(join(tokens)) == tokens: the pipeline's output is stable
    /// under re-tokenization.
    #[test]
    fn tokenizer_fixed_point(text in "[a-zA-Z ,.!?]{0,300}") {
        let t = Tokenizer::new();
        let tokens = t.tokenize(&text);
        let rejoined = tokens.join(" ");
        prop_assert_eq!(t.tokenize(&rejoined), tokens);
    }

    /// Posting-list invariants over random corpora: document frequency
    /// equals posting length, tf sums never exceed doc length.
    #[test]
    fn index_posting_invariants(
        texts in vec("[a-z]{2,6}( [a-z]{2,6}){0,30}", 1..12),
    ) {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document::new(FileId::new(i as u64 + 1), t.clone()))
            .collect();
        let index = InvertedIndex::build(&docs);
        prop_assert_eq!(index.num_docs(), docs.len() as u64);
        for (term, postings) in index.iter() {
            prop_assert_eq!(index.document_frequency(term), postings.len() as u64);
            // Postings sorted strictly by file id (no duplicates).
            for w in postings.windows(2) {
                prop_assert!(w[0].file < w[1].file);
            }
        }
        let max = index.max_posting_len();
        prop_assert!(index.iter().all(|(_, p)| p.len() <= max));
    }

    /// Eq.-2 scores are positive, monotone in tf, antitone in length.
    #[test]
    fn score_monotonicity(tf in 1u32..10_000, len in 1u32..100_000) {
        let s = score_single(tf, len);
        prop_assert!(s > 0.0 && s.is_finite());
        prop_assert!(score_single(tf + 1, len) > s);
        prop_assert!(score_single(tf, len + 1) < s);
    }

    /// Quantizer: levels of index scores always land in 1..=M and the top
    /// observed score hits level M.
    #[test]
    fn quantizer_hits_extremes(
        texts in vec("[a-z]{2,5}( [a-z]{2,5}){1,20}", 2..8),
        levels in 2u64..512,
    ) {
        let docs: Vec<Document> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| Document::new(FileId::new(i as u64 + 1), t.clone()))
            .collect();
        let index = InvertedIndex::build(&docs);
        prop_assume!(index.num_keywords() > 0);
        let q = ScoreQuantizer::fit_index(&index, levels).unwrap();
        let mut top_hit = false;
        for (term, _) in index.iter() {
            for (_, s) in scores_for_term(&index, term) {
                let l = q.level(s);
                prop_assert!((1..=levels).contains(&l));
                top_hit |= l == levels;
            }
        }
        prop_assert!(top_hit, "no score reached the top level");
    }
}
