//! The paper's **basic scheme** (§III-C): ranked keyword search with
//! unmodified SSE security.
//!
//! The server learns only the access pattern and search pattern — relevance
//! scores stay semantically encrypted — but therefore *cannot rank*: every
//! search returns the full padded posting list, and the user decrypts,
//! ranks, and (optionally, at the cost of a second round trip) fetches the
//! top-k files. This crate is both the correctness oracle for
//! [`rsse-core`](../rsse_core/index.html) and the baseline whose overheads
//! the efficient scheme eliminates.
//!
//! See [`BasicScheme`] for the entry point.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod error;
pub mod scheme;

pub use error::SseError;
pub use scheme::{BasicEncryptedIndex, BasicScheme, PaddingPolicy, ScoredFile, Trapdoor};
