//! Error types for the basic SSE scheme.

use core::fmt;
use rsse_crypto::CryptoError;

/// Errors from building or querying the basic scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SseError {
    /// A fixed padding target ν was smaller than some posting list.
    PaddingTooSmall {
        /// Configured ν.
        configured: usize,
        /// Longest posting list encountered.
        longest_list: usize,
    },
    /// The query produced no searchable keyword (e.g. only stop words).
    EmptyQuery,
    /// An underlying cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for SseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SseError::PaddingTooSmall {
                configured,
                longest_list,
            } => write!(
                f,
                "padding target {configured} smaller than longest posting list {longest_list}"
            ),
            SseError::EmptyQuery => write!(f, "query contains no searchable keyword"),
            SseError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for SseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SseError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for SseError {
    fn from(e: CryptoError) -> Self {
        SseError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = SseError::Crypto(CryptoError::IntegrityCheckFailed);
        assert!(e.to_string().contains("crypto failure"));
        assert!(e.source().is_some());
        assert!(SseError::EmptyQuery.source().is_none());
    }
}
