//! Posting-entry wire layout of the basic scheme.
//!
//! Fig. 3 stores each valid posting as `0^l ‖ id(F_ij) ‖ E_z(S_ij)`,
//! encrypted under the per-list key `f_y(w_i)`. Padding entries are random
//! strings of the same length, indistinguishable from real ones without the
//! list key.

use rsse_crypto::ctr::NONCE_LEN;
use rsse_ir::FileId;

/// Length of the all-zero validity marker (`0^l` in Fig. 3).
pub const MARKER_LEN: usize = 8;
/// Length of the encoded file identifier.
pub const ID_LEN: usize = 8;
/// Length of the score ciphertext `E_z(S)`: CTR nonce + 8-byte score.
pub const SCORE_CT_LEN: usize = NONCE_LEN + 8;
/// Plaintext length of one posting entry.
pub const ENTRY_PLAIN_LEN: usize = MARKER_LEN + ID_LEN + SCORE_CT_LEN;
/// Ciphertext length of one posting entry (nonce + body).
pub const ENTRY_CT_LEN: usize = NONCE_LEN + ENTRY_PLAIN_LEN;

/// Encodes the entry plaintext `0^l ‖ id ‖ score_ct`.
///
/// # Panics
///
/// Panics if `score_ct` is not exactly [`SCORE_CT_LEN`] bytes.
pub fn encode_entry(file: FileId, score_ct: &[u8]) -> Vec<u8> {
    assert_eq!(score_ct.len(), SCORE_CT_LEN, "fixed-width score ciphertext");
    let mut out = Vec::with_capacity(ENTRY_PLAIN_LEN);
    out.extend_from_slice(&[0u8; MARKER_LEN]);
    out.extend_from_slice(&file.to_bytes());
    out.extend_from_slice(score_ct);
    out
}

/// Decodes an entry plaintext, returning `(file, score_ct)` if the validity
/// marker checks out, `None` for padding/garbage.
pub fn decode_entry(plain: &[u8]) -> Option<(FileId, &[u8])> {
    if plain.len() != ENTRY_PLAIN_LEN {
        return None;
    }
    if plain[..MARKER_LEN] != [0u8; MARKER_LEN] {
        return None;
    }
    let id_bytes: [u8; ID_LEN] = plain[MARKER_LEN..MARKER_LEN + ID_LEN]
        .try_into()
        .expect("length checked");
    Some((FileId::from_bytes(id_bytes), &plain[MARKER_LEN + ID_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let score_ct = [7u8; SCORE_CT_LEN];
        let plain = encode_entry(FileId::new(123), &score_ct);
        assert_eq!(plain.len(), ENTRY_PLAIN_LEN);
        let (file, ct) = decode_entry(&plain).unwrap();
        assert_eq!(file, FileId::new(123));
        assert_eq!(ct, &score_ct);
    }

    #[test]
    fn garbage_rejected() {
        let mut plain = encode_entry(FileId::new(1), &[0u8; SCORE_CT_LEN]);
        plain[0] = 1; // break the marker
        assert!(decode_entry(&plain).is_none());
        assert!(decode_entry(&[0u8; 3]).is_none());
        assert!(decode_entry(&[0u8; ENTRY_PLAIN_LEN + 1]).is_none());
    }

    #[test]
    #[should_panic(expected = "fixed-width")]
    fn wrong_score_len_panics() {
        encode_entry(FileId::new(1), &[0u8; 5]);
    }
}
