//! The paper's **basic scheme** (§III-C): ranked search with SSE-level
//! security, ranking done on the user side.
//!
//! `BuildIndex` follows Fig. 3 literally: per keyword `w_i`, every posting
//! `0^l ‖ id(F_ij) ‖ E_z(S_ij)` is encrypted under the per-list key
//! `f_y(w_i)`, the list is padded with random strings to the global maximum
//! length ν, and the keyword is replaced by the label `π_x(w_i)`. The server
//! learns only access and search patterns; relevance scores remain
//! semantically encrypted, which is why *the server cannot rank* and the
//! user pays post-processing and bandwidth (the inefficiency that motivates
//! RSSE).

use crate::entry::{decode_entry, encode_entry, ENTRY_CT_LEN, SCORE_CT_LEN};
use crate::error::SseError;
use rsse_crypto::ctr::NONCE_LEN;
use rsse_crypto::tape::Transcript;
use rsse_crypto::{KeyMaterial, KeyedLabel, Prf, SecretKey, SemanticCipher, Tape};
use rsse_ir::{FileId, InvertedIndex, Tokenizer};
use std::collections::HashMap;

/// A posting-list label `π_x(w)` (160 bits).
pub type Label = [u8; 20];

/// The search trapdoor `T_w = (π_x(w), f_y(w))`.
///
/// The second component is the per-list decryption key; the server uses the
/// label for lookup and — in the basic scheme — returns opaque entries the
/// *user* decrypts.
#[derive(Clone)]
pub struct Trapdoor {
    label: Label,
    list_key: SecretKey,
}

impl core::fmt::Debug for Trapdoor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Trapdoor {{ label: {:02x?}.., key: <redacted> }}",
            &self.label[..4]
        )
    }
}

impl Trapdoor {
    /// The posting-list label `π_x(w)`.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// The per-list key `f_y(w)`.
    pub fn list_key(&self) -> &SecretKey {
        &self.list_key
    }

    /// Reassembles a trapdoor from its wire components.
    pub fn from_parts(label: Label, list_key: SecretKey) -> Self {
        Trapdoor { label, list_key }
    }
}

/// Padding policy for `BuildIndex`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PaddingPolicy {
    /// Pad every list to the longest observed posting list (the paper's ν).
    #[default]
    MaxPostingLen,
    /// Pad to a fixed ν (fails if any list is longer).
    Fixed(usize),
}

/// A decrypted, ranked search result entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredFile {
    /// The matching file.
    pub file: FileId,
    /// Its raw relevance score (eq. 2).
    pub score: f64,
}

/// The encrypted searchable index held by the cloud server.
#[derive(Debug, Clone, Default)]
pub struct BasicEncryptedIndex {
    lists: HashMap<Label, Vec<Vec<u8>>>,
}

impl BasicEncryptedIndex {
    /// Reassembles an index from its wire parts.
    pub fn from_parts(parts: Vec<(Label, Vec<Vec<u8>>)>) -> Self {
        BasicEncryptedIndex {
            lists: parts.into_iter().collect(),
        }
    }

    /// Exports the index as `(label, entries)` pairs in label order.
    pub fn export_parts(&self) -> Vec<(Label, Vec<Vec<u8>>)> {
        let mut parts: Vec<(Label, Vec<Vec<u8>>)> =
            self.lists.iter().map(|(k, v)| (*k, v.clone())).collect();
        parts.sort_by_key(|a| a.0);
        parts
    }

    /// Server-side `SearchIndex`: locate the posting list by label.
    ///
    /// The basic scheme's server cannot rank — it returns the whole
    /// (padded) list of opaque entries.
    pub fn search(&self, label: &Label) -> Option<&[Vec<u8>]> {
        self.lists.get(label).map(|v| v.as_slice())
    }

    /// Number of posting lists (`m`, the number of distinct keywords).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// The uniform (padded) list length ν, or 0 when empty.
    pub fn padded_len(&self) -> usize {
        self.lists.values().next().map_or(0, Vec::len)
    }

    /// Total index size in bytes (labels + entries).
    pub fn size_bytes(&self) -> usize {
        self.lists
            .iter()
            .map(|(k, v)| k.len() + v.iter().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// The basic ranked-searchable-encryption scheme.
///
/// # Example
///
/// ```
/// use rsse_ir::{Document, FileId, InvertedIndex};
/// use rsse_sse::BasicScheme;
///
/// # fn main() -> Result<(), rsse_sse::SseError> {
/// let docs = vec![
///     Document::new(FileId::new(1), "network routing network"),
///     Document::new(FileId::new(2), "network"),
/// ];
/// let plaintext_index = InvertedIndex::build(&docs);
///
/// let scheme = BasicScheme::new(b"owner master secret");
/// let enc_index = scheme.build_index(&plaintext_index, Default::default())?;
///
/// // Retrieval: server lookup is blind; ranking happens client-side.
/// let trapdoor = scheme.trapdoor("networks")?; // stemming applied
/// let entries = enc_index.search(trapdoor.label()).unwrap();
/// let ranked = scheme.rank_entries(&trapdoor, entries);
/// assert_eq!(ranked.len(), 2);
/// assert!(ranked[0].score >= ranked[1].score);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BasicScheme {
    keys: KeyMaterial,
    tokenizer: Tokenizer,
}

impl BasicScheme {
    /// `KeyGen`: derives the key triple `{x, y, z}` from a master seed.
    pub fn new(master_seed: &[u8]) -> Self {
        BasicScheme {
            keys: KeyMaterial::from_master_seed(master_seed),
            tokenizer: Tokenizer::new(),
        }
    }

    /// Builds the scheme from explicit key material.
    pub fn with_keys(keys: KeyMaterial) -> Self {
        BasicScheme {
            keys,
            tokenizer: Tokenizer::new(),
        }
    }

    /// The scheme's key material (what `Setup` distributes to authorized
    /// users).
    pub fn keys(&self) -> &KeyMaterial {
        &self.keys
    }

    fn canonical_keyword(&self, query: &str) -> Result<String, SseError> {
        self.tokenizer
            .tokenize(query)
            .into_iter()
            .next()
            .ok_or(SseError::EmptyQuery)
    }

    /// `TrapdoorGen(w)`: the pair `(π_x(w), f_y(w))`. The raw query is
    /// case-folded and stemmed first so it matches index terms.
    ///
    /// # Errors
    ///
    /// [`SseError::EmptyQuery`] if the query reduces to nothing.
    pub fn trapdoor(&self, query: &str) -> Result<Trapdoor, SseError> {
        let keyword = self.canonical_keyword(query)?;
        let pi = KeyedLabel::new(self.keys.label_key());
        let f = Prf::new(self.keys.entry_key());
        Ok(Trapdoor {
            label: pi.label(keyword.as_bytes()),
            list_key: f.derive_key(keyword.as_bytes()),
        })
    }

    /// `BuildIndex(K, C)` per Fig. 3, from an already-built plaintext
    /// inverted index.
    ///
    /// # Errors
    ///
    /// [`SseError::PaddingTooSmall`] when a fixed ν is exceeded.
    pub fn build_index(
        &self,
        index: &InvertedIndex,
        padding: PaddingPolicy,
    ) -> Result<BasicEncryptedIndex, SseError> {
        let nu = match padding {
            PaddingPolicy::MaxPostingLen => index.max_posting_len(),
            PaddingPolicy::Fixed(nu) => {
                if index.max_posting_len() > nu {
                    return Err(SseError::PaddingTooSmall {
                        configured: nu,
                        longest_list: index.max_posting_len(),
                    });
                }
                nu
            }
        };
        let pi = KeyedLabel::new(self.keys.label_key());
        let f = Prf::new(self.keys.entry_key());
        let score_cipher = SemanticCipher::new(self.keys.score_key());

        let mut lists = HashMap::with_capacity(index.num_keywords());
        for (term, postings) in index.iter() {
            // Deterministic per-keyword randomness tape for nonces/padding.
            let mut tape = Tape::new(
                self.keys.score_key(),
                &Transcript::new("sse/build").bytes(term.as_bytes()).finish(),
            );
            let list_key = f.derive_key(term.as_bytes());
            let entry_cipher = SemanticCipher::new(&list_key);
            let mut list = Vec::with_capacity(nu);
            for posting in postings {
                let len = index
                    .doc_length(posting.file)
                    .expect("posting refers to an indexed document");
                let score = rsse_ir::score_single(posting.term_frequency, len);
                let mut nonce = [0u8; NONCE_LEN];
                tape.fill_bytes(&mut nonce);
                let score_ct = score_cipher.encrypt_with_nonce(nonce, &score.to_be_bytes());
                debug_assert_eq!(score_ct.len(), SCORE_CT_LEN);
                let plain = encode_entry(posting.file, &score_ct);
                let mut entry_nonce = [0u8; NONCE_LEN];
                tape.fill_bytes(&mut entry_nonce);
                list.push(entry_cipher.encrypt_with_nonce(entry_nonce, &plain));
            }
            // Pad with random strings of the same size (Fig. 3 step 3).
            while list.len() < nu {
                let mut pad = vec![0u8; ENTRY_CT_LEN];
                tape.fill_bytes(&mut pad);
                list.push(pad);
            }
            lists.insert(pi.label(term.as_bytes()), list);
        }
        Ok(BasicEncryptedIndex { lists })
    }

    /// User-side post-processing: decrypt the returned entries, drop the
    /// padding, decrypt relevance scores with `z`, and rank (best first,
    /// ties broken by file id for determinism).
    pub fn rank_entries(&self, trapdoor: &Trapdoor, entries: &[Vec<u8>]) -> Vec<ScoredFile> {
        let entry_cipher = SemanticCipher::new(trapdoor.list_key());
        let score_cipher = SemanticCipher::new(self.keys.score_key());
        // Two reused scratch buffers instead of two fresh Vecs per entry.
        let mut plain = Vec::new();
        let mut score_bytes = Vec::new();
        let mut out: Vec<ScoredFile> = Vec::with_capacity(entries.len());
        out.extend(entries.iter().filter_map(|ct| {
            entry_cipher.decrypt_into(ct, &mut plain).ok()?;
            let (file, score_ct) = decode_entry(&plain)?;
            score_cipher.decrypt_into(score_ct, &mut score_bytes).ok()?;
            let bytes: [u8; 8] = score_bytes.as_slice().try_into().ok()?;
            let score = f64::from_be_bytes(bytes);
            if !score.is_finite() {
                return None;
            }
            Some(ScoredFile { file, score })
        }));
        out.sort_unstable_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.file.cmp(&b.file))
        });
        out
    }

    /// Convenience: the full user-side top-k flow (decrypt, rank, truncate).
    pub fn top_k(&self, trapdoor: &Trapdoor, entries: &[Vec<u8>], k: usize) -> Vec<ScoredFile> {
        let mut ranked = self.rank_entries(trapdoor, entries);
        ranked.truncate(k);
        ranked
    }
}

/// The *server's* view during basic-scheme retrieval: unwrap entries with
/// the trapdoor's list key `f_y(w)`, learning `F(w)` (the access pattern)
/// and the still-encrypted scores `E_z(S)` — but not the scores themselves,
/// which is exactly why this server cannot rank.
pub fn open_entries(list_key: &SecretKey, entries: &[Vec<u8>]) -> Vec<(FileId, Vec<u8>)> {
    let cipher = SemanticCipher::new(list_key);
    entries
        .iter()
        .filter_map(|ct| {
            let plain = cipher.decrypt(ct).ok()?;
            let (file, score_ct) = decode_entry(&plain)?;
            Some((file, score_ct.to_vec()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_ir::Document;

    fn sample_index() -> InvertedIndex {
        let docs = vec![
            Document::new(FileId::new(1), "network routing network network packet"),
            Document::new(FileId::new(2), "network"),
            Document::new(FileId::new(3), "storage cloud cloud"),
            Document::new(FileId::new(4), "network cloud storage packet packet"),
        ];
        InvertedIndex::build(&docs)
    }

    fn scheme() -> BasicScheme {
        BasicScheme::new(b"test master seed")
    }

    #[test]
    fn search_returns_correct_files() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        let ranked = s.rank_entries(&t, enc.search(t.label()).unwrap());
        let mut files: Vec<u64> = ranked.iter().map(|r| r.file.as_u64()).collect();
        files.sort_unstable();
        assert_eq!(files, vec![1, 2, 4]);
    }

    #[test]
    fn ranking_matches_plaintext_scores() {
        let s = scheme();
        let idx = sample_index();
        let enc = s.build_index(&idx, Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        let ranked = s.rank_entries(&t, enc.search(t.label()).unwrap());
        let mut plain = rsse_ir::score::scores_for_term(&idx, "network");
        plain.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let want: Vec<FileId> = plain.into_iter().map(|(f, _)| f).collect();
        let got: Vec<FileId> = ranked.into_iter().map(|r| r.file).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_lists_padded_to_same_length() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let nu = enc.padded_len();
        assert!(nu >= 3);
        for term in ["network", "cloud", "storage", "packet", "rout"] {
            let t = s.trapdoor(term).unwrap();
            assert_eq!(
                enc.search(t.label()).map(<[Vec<u8>]>::len),
                Some(nu),
                "{term}"
            );
        }
    }

    #[test]
    fn entries_are_uniform_size() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        for e in enc.search(t.label()).unwrap() {
            assert_eq!(e.len(), ENTRY_CT_LEN);
        }
    }

    #[test]
    fn unknown_keyword_misses() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("zebra").unwrap();
        assert!(enc.search(t.label()).is_none());
    }

    #[test]
    fn wrong_trapdoor_key_yields_nothing() {
        // A trapdoor with the right label but wrong list key (e.g. an
        // unauthorized user guessing) decrypts every entry to garbage.
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        let forged = Trapdoor::from_parts(*t.label(), SecretKey::derive(b"wrong", "k"));
        let ranked = s.rank_entries(&forged, enc.search(t.label()).unwrap());
        assert!(ranked.is_empty());
    }

    #[test]
    fn padding_is_invisible_in_results() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        // "rout" appears in one document; the list is padded to ν but only
        // one valid entry must come back.
        let t = s.trapdoor("routing").unwrap();
        let ranked = s.rank_entries(&t, enc.search(t.label()).unwrap());
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].file, FileId::new(1));
    }

    #[test]
    fn fixed_padding_enforced() {
        let s = scheme();
        let err = s
            .build_index(&sample_index(), PaddingPolicy::Fixed(1))
            .unwrap_err();
        assert!(matches!(err, SseError::PaddingTooSmall { .. }));
        let ok = s
            .build_index(&sample_index(), PaddingPolicy::Fixed(10))
            .unwrap();
        assert_eq!(ok.padded_len(), 10);
    }

    #[test]
    fn top_k_truncates() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        let top1 = s.top_k(&t, enc.search(t.label()).unwrap(), 1);
        assert_eq!(top1.len(), 1);
        // Doc 2 has tf=1 over 1 term → score 1.0, the maximum.
        assert_eq!(top1[0].file, FileId::new(2));
    }

    #[test]
    fn trapdoor_deterministic_and_stemmed() {
        let s = scheme();
        let a = s.trapdoor("networks").unwrap();
        let b = s.trapdoor("Network").unwrap();
        assert_eq!(a.label(), b.label());
        assert!(s.trapdoor("the of and").is_err());
    }

    #[test]
    fn index_is_rebuildable_deterministically() {
        let s = scheme();
        let e1 = s.build_index(&sample_index(), Default::default()).unwrap();
        let e2 = s.build_index(&sample_index(), Default::default()).unwrap();
        let t = s.trapdoor("network").unwrap();
        assert_eq!(e1.search(t.label()), e2.search(t.label()));
    }

    #[test]
    fn different_seeds_different_labels() {
        let s1 = BasicScheme::new(b"seed one");
        let s2 = BasicScheme::new(b"seed two");
        assert_ne!(
            s1.trapdoor("network").unwrap().label(),
            s2.trapdoor("network").unwrap().label()
        );
    }

    #[test]
    fn size_accounting() {
        let s = scheme();
        let enc = s.build_index(&sample_index(), Default::default()).unwrap();
        let expected = enc.num_lists() * (20 + enc.padded_len() * ENTRY_CT_LEN);
        assert_eq!(enc.size_bytes(), expected);
    }
}
