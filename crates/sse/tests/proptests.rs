//! Property-based tests of the basic scheme against plaintext oracles.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse_ir::{Document, FileId, InvertedIndex};
use rsse_sse::{BasicScheme, PaddingPolicy};

fn corpus_strategy() -> impl Strategy<Value = Vec<Document>> {
    vec("[a-z]{2,5}( [a-z]{2,5}){0,25}", 1..10).prop_map(|texts| {
        texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| Document::new(FileId::new(i as u64 + 1), t))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every indexed keyword of a random corpus: the retrieved file set
    /// equals the plaintext posting list, and the ranking is non-increasing
    /// in the true eq.-2 score.
    #[test]
    fn search_matches_plaintext_oracle(docs in corpus_strategy(), seed in any::<u64>()) {
        let index = InvertedIndex::build(&docs);
        let scheme = BasicScheme::new(&seed.to_be_bytes());
        let enc = scheme.build_index(&index, PaddingPolicy::MaxPostingLen).unwrap();
        for (term, postings) in index.iter() {
            let t = scheme.trapdoor(term).unwrap();
            let ranked = scheme.rank_entries(&t, enc.search(t.label()).unwrap());
            prop_assert_eq!(ranked.len(), postings.len(), "{}", term);
            let mut prev = f64::INFINITY;
            for r in &ranked {
                prop_assert!(r.score <= prev);
                prev = r.score;
                prop_assert!(postings.iter().any(|p| p.file == r.file));
            }
        }
    }

    /// Every posting list is padded to exactly ν and all entries share one
    /// ciphertext size.
    #[test]
    fn padding_uniformity(docs in corpus_strategy(), seed in any::<u64>()) {
        let index = InvertedIndex::build(&docs);
        prop_assume!(index.num_keywords() > 0);
        let scheme = BasicScheme::new(&seed.to_be_bytes());
        let enc = scheme.build_index(&index, PaddingPolicy::MaxPostingLen).unwrap();
        let nu = index.max_posting_len();
        let mut entry_sizes = std::collections::HashSet::new();
        for (term, _) in index.iter() {
            let t = scheme.trapdoor(term).unwrap();
            let list = enc.search(t.label()).unwrap();
            prop_assert_eq!(list.len(), nu);
            for e in list {
                entry_sizes.insert(e.len());
            }
        }
        prop_assert_eq!(entry_sizes.len(), 1, "entry sizes leak validity");
    }

    /// Trapdoors for words absent from the corpus miss; trapdoors under a
    /// different master seed miss too.
    #[test]
    fn unlinkability(docs in corpus_strategy(), s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assume!(s1 != s2);
        let index = InvertedIndex::build(&docs);
        prop_assume!(index.num_keywords() > 0);
        let owner = BasicScheme::new(&s1.to_be_bytes());
        let stranger = BasicScheme::new(&s2.to_be_bytes());
        let enc = owner.build_index(&index, PaddingPolicy::MaxPostingLen).unwrap();
        let term = index.iter().next().unwrap().0.to_string();
        let foreign = stranger.trapdoor(&term).unwrap();
        prop_assert!(enc.search(foreign.label()).is_none());
    }
}
