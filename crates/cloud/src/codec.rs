//! Hand-rolled binary wire codec for the cloud protocol.
//!
//! Length-prefixed, tagged frames over [`bytes::BytesMut`]. The codec is
//! deliberately dependency-free (beyond `bytes`) so every byte on the
//! simulated wire is accounted for explicitly — the bandwidth numbers in
//! the protocol experiments are exact frame sizes, not estimates.

use crate::files::EncryptedFile;
use bytes::{Buf, BufMut, BytesMut};
use rsse_ir::FileId;

/// A posting-list label on the wire.
pub type Label = [u8; 20];

/// Posting lists on the wire: `(label, entries)` pairs.
pub type WireLists = Vec<(Label, Vec<Vec<u8>>)>;

/// Maximum accepted frame body (64 MiB) — guards against malicious length
/// prefixes.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// One query's result inside a [`Message::BatchReply`]: the ranked
/// `(file id, OPM score)` pairs plus the ranked encrypted files.
pub type BatchResult = (Vec<(u64, u64)>, Vec<EncryptedFile>);

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// The buffer ended before the announced length.
    UnexpectedEof,
    /// Unknown message tag.
    BadTag(u8),
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversize(u64),
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadString,
    /// A transport envelope header was malformed (its declared length
    /// cannot even cover the sequence id).
    BadEnvelope(u32),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "frame truncated"),
            CodecError::BadTag(t) => write!(f, "unknown message tag {t}"),
            CodecError::Oversize(n) => write!(f, "length prefix {n} exceeds frame cap"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            CodecError::BadString => write!(f, "string field is not valid UTF-8"),
            CodecError::BadEnvelope(n) => {
                write!(f, "envelope length {n} cannot cover the sequence id")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Which retrieval protocol a search request selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// RSSE: the server ranks and returns top-k files in one round.
    Rsse,
    /// Basic scheme, naive: the server returns *all* matching files plus
    /// encrypted scores in one round (huge bandwidth).
    BasicFull,
    /// Basic scheme, two-round: round one returns only
    /// `(id, E_z(S))` pairs; the user ranks and fetches the top-k files in
    /// a second round.
    BasicEntries,
}

impl SearchMode {
    fn to_byte(self) -> u8 {
        match self {
            SearchMode::Rsse => 0,
            SearchMode::BasicFull => 1,
            SearchMode::BasicEntries => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(SearchMode::Rsse),
            1 => Ok(SearchMode::BasicFull),
            2 => Ok(SearchMode::BasicEntries),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

/// Failure category carried by a [`Message::Error`] frame, so clients can
/// react without parsing the human-readable detail string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request frame did not decode.
    BadFrame,
    /// A request referenced an unknown posting-list label. Reserved on the
    /// wire: this simulation answers unknown labels with empty result sets
    /// (thwarting keyword-existence probing), but deployments that treat
    /// them as errors need the kind to be representable.
    UnknownLabel,
    /// The message decoded but is out of protocol for the serving path.
    Rejected,
    /// The server shed the request because its backlog is full.
    Overloaded,
    /// The server failed internally (including a contained worker panic).
    Internal,
}

impl ErrorKind {
    fn to_byte(self) -> u8 {
        match self {
            ErrorKind::BadFrame => 0,
            ErrorKind::UnknownLabel => 1,
            ErrorKind::Rejected => 2,
            ErrorKind::Overloaded => 3,
            ErrorKind::Internal => 4,
        }
    }

    fn from_byte(b: u8) -> Result<Self, CodecError> {
        match b {
            0 => Ok(ErrorKind::BadFrame),
            1 => Ok(ErrorKind::UnknownLabel),
            2 => Ok(ErrorKind::Rejected),
            3 => Ok(ErrorKind::Overloaded),
            4 => Ok(ErrorKind::Internal),
            other => Err(CodecError::BadTag(other)),
        }
    }
}

impl core::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            ErrorKind::BadFrame => "bad frame",
            ErrorKind::UnknownLabel => "unknown label",
            ErrorKind::Rejected => "rejected request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal error",
        })
    }
}

/// All protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Owner → server: the encrypted indexes and file collection.
    Outsource {
        /// RSSE posting lists `(π_x(w), entries)`.
        rsse_lists: Vec<(Label, Vec<Vec<u8>>)>,
        /// Basic-scheme posting lists.
        basic_lists: Vec<(Label, Vec<Vec<u8>>)>,
        /// OPSE domain size `M` (public parameter).
        opse_domain: u64,
        /// OPSE range size `N` (public parameter).
        opse_range: u64,
        /// The encrypted files.
        files: Vec<EncryptedFile>,
    },
    /// User → server: a trapdoor plus protocol selection.
    SearchRequest {
        /// The posting-list label `π_x(w)`.
        label: Label,
        /// The per-list key `f_y(w)` bytes.
        list_key: [u8; 32],
        /// `Some(k)` requests only the top-k results.
        top_k: Option<u32>,
        /// Which protocol to run.
        mode: SearchMode,
    },
    /// Server → user (RSSE): ranked files, best first.
    RsseResponse {
        /// `(file id, OPM score)` in rank order.
        ranking: Vec<(u64, u64)>,
        /// The ranked encrypted files, same order.
        files: Vec<EncryptedFile>,
    },
    /// Server → user (basic, naive): every matching file + encrypted score.
    BasicFullResponse {
        /// `(file id, E_z(S))` pairs.
        scores: Vec<(u64, Vec<u8>)>,
        /// All matching encrypted files (unranked).
        files: Vec<EncryptedFile>,
    },
    /// Server → user (basic, round one): `(id, E_z(S))` pairs only.
    BasicEntriesResponse {
        /// `(file id, E_z(S))` pairs.
        scores: Vec<(u64, Vec<u8>)>,
    },
    /// User → server (basic, round two): fetch these files.
    FetchFiles {
        /// Requested file ids, in the user's rank order.
        ids: Vec<u64>,
    },
    /// User → server: conjunctive (multi-keyword) ranked search — the
    /// §VIII extension. One `(label, list key)` pair per keyword.
    ConjunctiveRequest {
        /// Per-keyword trapdoor components, in query order.
        trapdoors: Vec<(Label, [u8; 32])>,
        /// `Some(k)` requests only the top-k results.
        top_k: Option<u32>,
    },
    /// Server → user: conjunctive results ranked by mapped-score sum.
    ConjunctiveResponse {
        /// `(file id, per-keyword mapped scores)` in rank order.
        ranking: Vec<(u64, Vec<u64>)>,
        /// The ranked encrypted files, same order.
        files: Vec<EncryptedFile>,
    },
    /// Server → user (basic, round two): the requested files.
    FilesResponse {
        /// Files in the requested order (missing ids are skipped).
        files: Vec<EncryptedFile>,
    },
    /// Owner → server: a §VII score-dynamics update — new posting entries
    /// to append plus the newly encrypted files.
    Update {
        /// RSSE append operations `(π_x(w), new entries)`.
        rsse_lists: Vec<(Label, Vec<Vec<u8>>)>,
        /// Encrypted files for the added documents.
        files: Vec<EncryptedFile>,
    },
    /// Server → owner: acknowledgement of an applied update.
    UpdateAck {
        /// Number of posting lists touched by the update.
        lists_touched: u64,
        /// Number of files ingested.
        files_added: u64,
    },
    /// Coordinator → shard: one scatter leg of a sharded ranked search.
    /// Carries the same trapdoor as a [`Message::SearchRequest`] plus the
    /// shard's identity, echoed back in the reply so legs can be correlated
    /// (and misdirected frames detected) without transport-level state.
    ShardQuery {
        /// The posting-list label `π_x(w)`.
        label: Label,
        /// The per-list key `f_y(w)` bytes.
        list_key: [u8; 32],
        /// `Some(k)` requests only the shard's local top-k (the global
        /// top-k is a subset of the per-shard top-k union under a disjoint
        /// file partition).
        top_k: Option<u32>,
        /// Which shard this leg addresses.
        shard_id: u32,
    },
    /// Shard → coordinator: the shard's locally ranked partial result —
    /// its own top-k over its partition of the posting list, files
    /// included. A failing shard answers [`Message::Error`] instead; the
    /// coordinator merges whatever replies arrive and reports the rest as
    /// degraded coverage.
    ShardReply {
        /// Echo of the queried shard's identity.
        shard_id: u32,
        /// `(file id, OPM score)` in the shard's local rank order.
        ranking: Vec<(u64, u64)>,
        /// The ranked encrypted files, same order.
        files: Vec<EncryptedFile>,
    },
    /// Client → server: several ranked searches amortized over **one**
    /// channel round trip. Per-request wire overhead (envelope queueing,
    /// reply rendezvous) dominates the `cpu` workload, so hot clients and
    /// the shard router coalesce their queries. With `shard_id` present the
    /// batch is one scatter leg of a sharded search (the id is echoed in
    /// the reply, like [`Message::ShardQuery`]); absent, it is a direct
    /// client batch.
    BatchRequest {
        /// Per-query trapdoor + top-k: `(π_x(w), f_y(w), top_k)`.
        queries: Vec<(Label, [u8; 32], Option<u32>)>,
        /// `Some(id)` marks a sharded scatter leg addressed to shard `id`.
        shard_id: Option<u32>,
    },
    /// Server → client: one [`BatchResult`] per query of the matching
    /// [`Message::BatchRequest`], in request order. A batch whose *handling*
    /// fails answers [`Message::Error`] instead; per-query "no match" is an
    /// empty result, exactly as in the single-query protocol.
    BatchReply {
        /// Echo of the request's `shard_id` (None for direct batches).
        shard_id: Option<u32>,
        /// Ranked results, one per query, in request order.
        results: Vec<BatchResult>,
    },
    /// Router → shard: fetch the shard's label filter — the set of
    /// posting-list labels it holds *real* (non-padding) postings for —
    /// so the router can prune scatter legs that provably cannot
    /// contribute to a merged ranking. Carrying the router's last-seen
    /// epoch lets an up-to-date shard answer with a label-free frame.
    FilterRequest {
        /// Which shard is being asked.
        shard_id: u32,
        /// The filter epoch the router already holds, if any; the shard
        /// omits the label set when it matches.
        known_epoch: Option<u64>,
    },
    /// Shard → router: the epoch-tagged label filter. `labels` is `None`
    /// when the requester's `known_epoch` is current (nothing to resend),
    /// otherwise the full sorted label set at `epoch`.
    FilterReply {
        /// Echo of the queried shard's identity.
        shard_id: u32,
        /// Filter epoch; bumped on every update or compaction, so a
        /// router holding this epoch may prune with the filter until the
        /// shard's epoch moves.
        epoch: u64,
        /// The sorted labels with real postings, or `None` when the
        /// requester's `known_epoch` is already current.
        labels: Option<Vec<Label>>,
    },
    /// Router → shard: one scatter leg of a sharded conjunctive search.
    /// Carries the same trapdoor set as a [`Message::ConjunctiveRequest`]
    /// plus the shard's identity, echoed back in the reply so legs can be
    /// correlated (like [`Message::ShardQuery`]). Under a disjoint file
    /// partition each shard intersects locally and the global conjunction
    /// is exactly the union of the per-shard ones.
    ConjunctiveShardQuery {
        /// Per-keyword trapdoor components, in query order.
        trapdoors: Vec<(Label, [u8; 32])>,
        /// `Some(k)` requests only the shard's local top-k (the global
        /// top-k is a subset of the per-shard top-k union under a disjoint
        /// file partition).
        top_k: Option<u32>,
        /// Which shard this leg addresses.
        shard_id: u32,
    },
    /// Shard → router: the shard's locally intersected and ranked partial
    /// conjunctive result, files included. A failing shard answers
    /// [`Message::Error`] instead, exactly like [`Message::ShardReply`].
    ConjunctiveShardReply {
        /// Echo of the queried shard's identity.
        shard_id: u32,
        /// `(file id, per-keyword mapped scores)` in the shard's local
        /// rank order (mapped-score sum descending, file id ascending).
        ranking: Vec<(u64, Vec<u64>)>,
        /// The ranked encrypted files, same order.
        files: Vec<EncryptedFile>,
    },
    /// Server → client: the request failed. Every request gets an answer
    /// frame — success or this — so failures are representable on a real
    /// transport and their bytes count in the bandwidth accounting.
    Error {
        /// Typed failure category.
        kind: ErrorKind,
        /// Human-readable detail, bounded by [`Message::MAX_ERROR_DETAIL`]
        /// when built through [`Message::error`].
        detail: String,
    },
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u64(b.len() as u64);
    buf.put_slice(b);
}

fn get_len(buf: &mut BytesMut) -> Result<usize, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    let n = buf.get_u64();
    if n > MAX_FRAME_LEN as u64 {
        return Err(CodecError::Oversize(n));
    }
    Ok(n as usize)
}

fn get_bytes(buf: &mut BytesMut) -> Result<Vec<u8>, CodecError> {
    let n = get_len(buf)?;
    if buf.remaining() < n {
        return Err(CodecError::UnexpectedEof);
    }
    let mut out = vec![0u8; n];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

fn get_array<const N: usize>(buf: &mut BytesMut) -> Result<[u8; N], CodecError> {
    if buf.remaining() < N {
        return Err(CodecError::UnexpectedEof);
    }
    let mut out = [0u8; N];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

fn get_u64(buf: &mut BytesMut) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u64())
}

fn get_u32(buf: &mut BytesMut) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::UnexpectedEof);
    }
    Ok(buf.get_u32())
}

fn put_opt_u32(buf: &mut BytesMut, v: &Option<u32>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u32(*x);
        }
        None => buf.put_u8(0),
    }
}

/// Optional-u32 field: one presence byte (strictly 0 or 1, so every
/// decodable frame re-encodes to exactly itself), then the value if present.
fn get_opt_u32(buf: &mut BytesMut) -> Result<Option<u32>, CodecError> {
    match get_array::<1>(buf)?[0] {
        0 => Ok(None),
        1 => {
            if buf.remaining() < 4 {
                return Err(CodecError::UnexpectedEof);
            }
            Ok(Some(buf.get_u32()))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

fn put_opt_u64(buf: &mut BytesMut, v: &Option<u64>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u64(*x);
        }
        None => buf.put_u8(0),
    }
}

/// Optional-u64 field, same canonical presence-byte rule as
/// [`get_opt_u32`].
fn get_opt_u64(buf: &mut BytesMut) -> Result<Option<u64>, CodecError> {
    match get_array::<1>(buf)?[0] {
        0 => Ok(None),
        1 => get_u64(buf).map(Some),
        other => Err(CodecError::BadTag(other)),
    }
}

/// Pre-allocation bound for a claimed element count `n`: no container may
/// reserve more slots than the remaining input could possibly encode
/// (`min_item` bytes each), so a hostile count in a short frame cannot make
/// the decoder allocate past the frame itself.
fn bounded_cap(n: usize, buf: &BytesMut, min_item: usize) -> usize {
    n.min(buf.remaining() / min_item.max(1) + 1)
}

fn put_lists(buf: &mut BytesMut, lists: &[(Label, Vec<Vec<u8>>)]) {
    buf.put_u64(lists.len() as u64);
    for (label, entries) in lists {
        buf.put_slice(label);
        buf.put_u64(entries.len() as u64);
        for e in entries {
            put_bytes(buf, e);
        }
    }
}

fn get_lists(buf: &mut BytesMut) -> Result<WireLists, CodecError> {
    let n = get_len(buf)?;
    let mut lists = Vec::with_capacity(bounded_cap(n, buf, 28));
    for _ in 0..n {
        let label: Label = get_array(buf)?;
        let m = get_len(buf)?;
        let mut entries = Vec::with_capacity(bounded_cap(m, buf, 8));
        for _ in 0..m {
            entries.push(get_bytes(buf)?);
        }
        lists.push((label, entries));
    }
    Ok(lists)
}

fn put_files(buf: &mut BytesMut, files: &[EncryptedFile]) {
    buf.put_u64(files.len() as u64);
    for f in files {
        buf.put_u64(f.id().as_u64());
        put_bytes(buf, f.ciphertext());
    }
}

fn get_files(buf: &mut BytesMut) -> Result<Vec<EncryptedFile>, CodecError> {
    let n = get_len(buf)?;
    let mut files = Vec::with_capacity(bounded_cap(n, buf, 16));
    for _ in 0..n {
        let id = get_u64(buf)?;
        let ct = get_bytes(buf)?;
        files.push(EncryptedFile::new(FileId::new(id), ct));
    }
    Ok(files)
}

fn put_scores(buf: &mut BytesMut, scores: &[(u64, Vec<u8>)]) {
    buf.put_u64(scores.len() as u64);
    for (id, ct) in scores {
        buf.put_u64(*id);
        put_bytes(buf, ct);
    }
}

fn get_scores(buf: &mut BytesMut) -> Result<Vec<(u64, Vec<u8>)>, CodecError> {
    let n = get_len(buf)?;
    let mut scores = Vec::with_capacity(bounded_cap(n, buf, 16));
    for _ in 0..n {
        let id = get_u64(buf)?;
        scores.push((id, get_bytes(buf)?));
    }
    Ok(scores)
}

impl Message {
    /// Serializes the message into a framed byte buffer.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(256);
        match self {
            Message::Outsource {
                rsse_lists,
                basic_lists,
                opse_domain,
                opse_range,
                files,
            } => {
                buf.put_u8(1);
                put_lists(&mut buf, rsse_lists);
                put_lists(&mut buf, basic_lists);
                buf.put_u64(*opse_domain);
                buf.put_u64(*opse_range);
                put_files(&mut buf, files);
            }
            Message::SearchRequest {
                label,
                list_key,
                top_k,
                mode,
            } => {
                buf.put_u8(2);
                buf.put_slice(label);
                buf.put_slice(list_key);
                match top_k {
                    Some(k) => {
                        buf.put_u8(1);
                        buf.put_u32(*k);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u8(mode.to_byte());
            }
            Message::RsseResponse { ranking, files } => {
                buf.put_u8(3);
                buf.put_u64(ranking.len() as u64);
                for (id, score) in ranking {
                    buf.put_u64(*id);
                    buf.put_u64(*score);
                }
                put_files(&mut buf, files);
            }
            Message::BasicFullResponse { scores, files } => {
                buf.put_u8(4);
                put_scores(&mut buf, scores);
                put_files(&mut buf, files);
            }
            Message::BasicEntriesResponse { scores } => {
                buf.put_u8(5);
                put_scores(&mut buf, scores);
            }
            Message::FetchFiles { ids } => {
                buf.put_u8(6);
                buf.put_u64(ids.len() as u64);
                for id in ids {
                    buf.put_u64(*id);
                }
            }
            Message::FilesResponse { files } => {
                buf.put_u8(7);
                put_files(&mut buf, files);
            }
            Message::ConjunctiveRequest { trapdoors, top_k } => {
                buf.put_u8(8);
                buf.put_u64(trapdoors.len() as u64);
                for (label, key) in trapdoors {
                    buf.put_slice(label);
                    buf.put_slice(key);
                }
                match top_k {
                    Some(k) => {
                        buf.put_u8(1);
                        buf.put_u32(*k);
                    }
                    None => buf.put_u8(0),
                }
            }
            Message::ConjunctiveResponse { ranking, files } => {
                buf.put_u8(9);
                buf.put_u64(ranking.len() as u64);
                for (id, scores) in ranking {
                    buf.put_u64(*id);
                    buf.put_u64(scores.len() as u64);
                    for s in scores {
                        buf.put_u64(*s);
                    }
                }
                put_files(&mut buf, files);
            }
            Message::Update { rsse_lists, files } => {
                buf.put_u8(10);
                put_lists(&mut buf, rsse_lists);
                put_files(&mut buf, files);
            }
            Message::UpdateAck {
                lists_touched,
                files_added,
            } => {
                buf.put_u8(11);
                buf.put_u64(*lists_touched);
                buf.put_u64(*files_added);
            }
            Message::Error { kind, detail } => {
                buf.put_u8(12);
                buf.put_u8(kind.to_byte());
                put_bytes(&mut buf, detail.as_bytes());
            }
            Message::ShardQuery {
                label,
                list_key,
                top_k,
                shard_id,
            } => {
                buf.put_u8(13);
                buf.put_slice(label);
                buf.put_slice(list_key);
                match top_k {
                    Some(k) => {
                        buf.put_u8(1);
                        buf.put_u32(*k);
                    }
                    None => buf.put_u8(0),
                }
                buf.put_u32(*shard_id);
            }
            Message::ShardReply {
                shard_id,
                ranking,
                files,
            } => {
                buf.put_u8(14);
                buf.put_u32(*shard_id);
                buf.put_u64(ranking.len() as u64);
                for (id, score) in ranking {
                    buf.put_u64(*id);
                    buf.put_u64(*score);
                }
                put_files(&mut buf, files);
            }
            Message::BatchRequest { queries, shard_id } => {
                buf.put_u8(15);
                buf.put_u64(queries.len() as u64);
                for (label, key, top_k) in queries {
                    buf.put_slice(label);
                    buf.put_slice(key);
                    put_opt_u32(&mut buf, top_k);
                }
                put_opt_u32(&mut buf, shard_id);
            }
            Message::BatchReply { shard_id, results } => {
                buf.put_u8(16);
                put_opt_u32(&mut buf, shard_id);
                buf.put_u64(results.len() as u64);
                for (ranking, files) in results {
                    buf.put_u64(ranking.len() as u64);
                    for (id, score) in ranking {
                        buf.put_u64(*id);
                        buf.put_u64(*score);
                    }
                    put_files(&mut buf, files);
                }
            }
            Message::FilterRequest {
                shard_id,
                known_epoch,
            } => {
                buf.put_u8(17);
                buf.put_u32(*shard_id);
                put_opt_u64(&mut buf, known_epoch);
            }
            Message::ConjunctiveShardQuery {
                trapdoors,
                top_k,
                shard_id,
            } => {
                buf.put_u8(19);
                buf.put_u64(trapdoors.len() as u64);
                for (label, key) in trapdoors {
                    buf.put_slice(label);
                    buf.put_slice(key);
                }
                put_opt_u32(&mut buf, top_k);
                buf.put_u32(*shard_id);
            }
            Message::ConjunctiveShardReply {
                shard_id,
                ranking,
                files,
            } => {
                buf.put_u8(20);
                buf.put_u32(*shard_id);
                buf.put_u64(ranking.len() as u64);
                for (id, scores) in ranking {
                    buf.put_u64(*id);
                    buf.put_u64(scores.len() as u64);
                    for s in scores {
                        buf.put_u64(*s);
                    }
                }
                put_files(&mut buf, files);
            }
            Message::FilterReply {
                shard_id,
                epoch,
                labels,
            } => {
                buf.put_u8(18);
                buf.put_u32(*shard_id);
                buf.put_u64(*epoch);
                match labels {
                    Some(labels) => {
                        buf.put_u8(1);
                        buf.put_u64(labels.len() as u64);
                        for label in labels {
                            buf.put_slice(label);
                        }
                    }
                    None => buf.put_u8(0),
                }
            }
        }
        buf
    }

    /// Deserializes a message, requiring the buffer to be fully consumed.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    pub fn decode(mut buf: BytesMut) -> Result<Self, CodecError> {
        if buf.remaining() < 1 {
            return Err(CodecError::UnexpectedEof);
        }
        let tag = buf.get_u8();
        let msg = match tag {
            1 => Message::Outsource {
                rsse_lists: get_lists(&mut buf)?,
                basic_lists: get_lists(&mut buf)?,
                opse_domain: get_u64(&mut buf)?,
                opse_range: get_u64(&mut buf)?,
                files: get_files(&mut buf)?,
            },
            2 => {
                let label: Label = get_array(&mut buf)?;
                let list_key: [u8; 32] = get_array(&mut buf)?;
                let top_k = get_opt_u32(&mut buf)?;
                let mode = SearchMode::from_byte(get_array::<1>(&mut buf)?[0])?;
                Message::SearchRequest {
                    label,
                    list_key,
                    top_k,
                    mode,
                }
            }
            3 => {
                let n = get_len(&mut buf)?;
                let mut ranking = Vec::with_capacity(bounded_cap(n, &buf, 16));
                for _ in 0..n {
                    let id = get_u64(&mut buf)?;
                    let score = get_u64(&mut buf)?;
                    ranking.push((id, score));
                }
                Message::RsseResponse {
                    ranking,
                    files: get_files(&mut buf)?,
                }
            }
            4 => Message::BasicFullResponse {
                scores: get_scores(&mut buf)?,
                files: get_files(&mut buf)?,
            },
            5 => Message::BasicEntriesResponse {
                scores: get_scores(&mut buf)?,
            },
            6 => {
                let n = get_len(&mut buf)?;
                let mut ids = Vec::with_capacity(bounded_cap(n, &buf, 8));
                for _ in 0..n {
                    ids.push(get_u64(&mut buf)?);
                }
                Message::FetchFiles { ids }
            }
            7 => Message::FilesResponse {
                files: get_files(&mut buf)?,
            },
            8 => {
                let n = get_len(&mut buf)?;
                let mut trapdoors = Vec::with_capacity(bounded_cap(n, &buf, 52));
                for _ in 0..n {
                    let label: Label = get_array(&mut buf)?;
                    let key: [u8; 32] = get_array(&mut buf)?;
                    trapdoors.push((label, key));
                }
                let top_k = get_opt_u32(&mut buf)?;
                Message::ConjunctiveRequest { trapdoors, top_k }
            }
            9 => {
                let n = get_len(&mut buf)?;
                let mut ranking = Vec::with_capacity(bounded_cap(n, &buf, 16));
                for _ in 0..n {
                    let id = get_u64(&mut buf)?;
                    let m = get_len(&mut buf)?;
                    let mut scores = Vec::with_capacity(bounded_cap(m, &buf, 8));
                    for _ in 0..m {
                        scores.push(get_u64(&mut buf)?);
                    }
                    ranking.push((id, scores));
                }
                Message::ConjunctiveResponse {
                    ranking,
                    files: get_files(&mut buf)?,
                }
            }
            10 => Message::Update {
                rsse_lists: get_lists(&mut buf)?,
                files: get_files(&mut buf)?,
            },
            11 => Message::UpdateAck {
                lists_touched: get_u64(&mut buf)?,
                files_added: get_u64(&mut buf)?,
            },
            12 => {
                let kind = ErrorKind::from_byte(get_array::<1>(&mut buf)?[0])?;
                let detail =
                    String::from_utf8(get_bytes(&mut buf)?).map_err(|_| CodecError::BadString)?;
                Message::Error { kind, detail }
            }
            13 => {
                let label: Label = get_array(&mut buf)?;
                let list_key: [u8; 32] = get_array(&mut buf)?;
                let top_k = get_opt_u32(&mut buf)?;
                let shard_id = get_u32(&mut buf)?;
                Message::ShardQuery {
                    label,
                    list_key,
                    top_k,
                    shard_id,
                }
            }
            14 => {
                let shard_id = get_u32(&mut buf)?;
                let n = get_len(&mut buf)?;
                let mut ranking = Vec::with_capacity(bounded_cap(n, &buf, 16));
                for _ in 0..n {
                    let id = get_u64(&mut buf)?;
                    let score = get_u64(&mut buf)?;
                    ranking.push((id, score));
                }
                Message::ShardReply {
                    shard_id,
                    ranking,
                    files: get_files(&mut buf)?,
                }
            }
            15 => {
                let n = get_len(&mut buf)?;
                // A query is at least label + key + presence byte = 53 bytes.
                let mut queries = Vec::with_capacity(bounded_cap(n, &buf, 53));
                for _ in 0..n {
                    let label: Label = get_array(&mut buf)?;
                    let key: [u8; 32] = get_array(&mut buf)?;
                    let top_k = get_opt_u32(&mut buf)?;
                    queries.push((label, key, top_k));
                }
                let shard_id = get_opt_u32(&mut buf)?;
                Message::BatchRequest { queries, shard_id }
            }
            16 => {
                let shard_id = get_opt_u32(&mut buf)?;
                let n = get_len(&mut buf)?;
                // An empty result still costs two u64 length prefixes.
                let mut results = Vec::with_capacity(bounded_cap(n, &buf, 16));
                for _ in 0..n {
                    let m = get_len(&mut buf)?;
                    let mut ranking = Vec::with_capacity(bounded_cap(m, &buf, 16));
                    for _ in 0..m {
                        let id = get_u64(&mut buf)?;
                        let score = get_u64(&mut buf)?;
                        ranking.push((id, score));
                    }
                    results.push((ranking, get_files(&mut buf)?));
                }
                Message::BatchReply { shard_id, results }
            }
            17 => Message::FilterRequest {
                shard_id: get_u32(&mut buf)?,
                known_epoch: get_opt_u64(&mut buf)?,
            },
            18 => {
                let shard_id = get_u32(&mut buf)?;
                let epoch = get_u64(&mut buf)?;
                let labels = match get_array::<1>(&mut buf)?[0] {
                    0 => None,
                    1 => {
                        let n = get_len(&mut buf)?;
                        let mut labels = Vec::with_capacity(bounded_cap(n, &buf, 20));
                        for _ in 0..n {
                            labels.push(get_array::<20>(&mut buf)?);
                        }
                        Some(labels)
                    }
                    other => return Err(CodecError::BadTag(other)),
                };
                Message::FilterReply {
                    shard_id,
                    epoch,
                    labels,
                }
            }
            19 => {
                let n = get_len(&mut buf)?;
                let mut trapdoors = Vec::with_capacity(bounded_cap(n, &buf, 52));
                for _ in 0..n {
                    let label: Label = get_array(&mut buf)?;
                    let key: [u8; 32] = get_array(&mut buf)?;
                    trapdoors.push((label, key));
                }
                let top_k = get_opt_u32(&mut buf)?;
                let shard_id = get_u32(&mut buf)?;
                Message::ConjunctiveShardQuery {
                    trapdoors,
                    top_k,
                    shard_id,
                }
            }
            20 => {
                let shard_id = get_u32(&mut buf)?;
                let n = get_len(&mut buf)?;
                let mut ranking = Vec::with_capacity(bounded_cap(n, &buf, 16));
                for _ in 0..n {
                    let id = get_u64(&mut buf)?;
                    let m = get_len(&mut buf)?;
                    let mut scores = Vec::with_capacity(bounded_cap(m, &buf, 8));
                    for _ in 0..m {
                        scores.push(get_u64(&mut buf)?);
                    }
                    ranking.push((id, scores));
                }
                Message::ConjunctiveShardReply {
                    shard_id,
                    ranking,
                    files: get_files(&mut buf)?,
                }
            }
            other => return Err(CodecError::BadTag(other)),
        };
        if buf.remaining() > 0 {
            return Err(CodecError::TrailingBytes(buf.remaining()));
        }
        Ok(msg)
    }

    /// Longest detail string [`Message::error`] will put in an error frame.
    pub const MAX_ERROR_DETAIL: usize = 256;

    /// Builds an [`Message::Error`] frame, truncating `detail` to
    /// [`Message::MAX_ERROR_DETAIL`] bytes (on a char boundary) so error
    /// responses stay small even when wrapping a verbose failure.
    pub fn error(kind: ErrorKind, detail: impl Into<String>) -> Self {
        let mut detail: String = detail.into();
        if detail.len() > Self::MAX_ERROR_DETAIL {
            let mut cut = Self::MAX_ERROR_DETAIL;
            while !detail.is_char_boundary(cut) {
                cut -= 1;
            }
            detail.truncate(cut);
        }
        Message::Error { kind, detail }
    }

    /// Size of the encoded message in bytes, computed arithmetically — no
    /// allocation, so bandwidth sampling stays O(1) per message. Pinned to
    /// `encode().len()` for every variant by the codec tests.
    pub fn wire_len(&self) -> usize {
        fn bytes_len(b: &[u8]) -> usize {
            8 + b.len()
        }
        fn lists_len(lists: &[(Label, Vec<Vec<u8>>)]) -> usize {
            8 + lists
                .iter()
                .map(|(_, entries)| 20 + 8 + entries.iter().map(|e| bytes_len(e)).sum::<usize>())
                .sum::<usize>()
        }
        fn files_len(files: &[EncryptedFile]) -> usize {
            8 + files
                .iter()
                .map(|f| 8 + bytes_len(f.ciphertext()))
                .sum::<usize>()
        }
        fn scores_len(scores: &[(u64, Vec<u8>)]) -> usize {
            8 + scores
                .iter()
                .map(|(_, ct)| 8 + bytes_len(ct))
                .sum::<usize>()
        }
        fn opt_u32_len(v: &Option<u32>) -> usize {
            1 + if v.is_some() { 4 } else { 0 }
        }
        fn opt_u64_len(v: &Option<u64>) -> usize {
            1 + if v.is_some() { 8 } else { 0 }
        }
        1 + match self {
            Message::Outsource {
                rsse_lists,
                basic_lists,
                files,
                ..
            } => lists_len(rsse_lists) + lists_len(basic_lists) + 8 + 8 + files_len(files),
            Message::SearchRequest { top_k, .. } => 20 + 32 + opt_u32_len(top_k) + 1,
            Message::RsseResponse { ranking, files } => 8 + 16 * ranking.len() + files_len(files),
            Message::BasicFullResponse { scores, files } => scores_len(scores) + files_len(files),
            Message::BasicEntriesResponse { scores } => scores_len(scores),
            Message::FetchFiles { ids } => 8 + 8 * ids.len(),
            Message::FilesResponse { files } => files_len(files),
            Message::ConjunctiveRequest { trapdoors, top_k } => {
                8 + 52 * trapdoors.len() + opt_u32_len(top_k)
            }
            Message::ConjunctiveResponse { ranking, files } => {
                8 + ranking
                    .iter()
                    .map(|(_, scores)| 8 + 8 + 8 * scores.len())
                    .sum::<usize>()
                    + files_len(files)
            }
            Message::Update { rsse_lists, files } => lists_len(rsse_lists) + files_len(files),
            Message::UpdateAck { .. } => 8 + 8,
            Message::Error { detail, .. } => 1 + bytes_len(detail.as_bytes()),
            Message::ShardQuery { top_k, .. } => 20 + 32 + opt_u32_len(top_k) + 4,
            Message::ShardReply { ranking, files, .. } => {
                4 + 8 + 16 * ranking.len() + files_len(files)
            }
            Message::BatchRequest { queries, shard_id } => {
                8 + queries
                    .iter()
                    .map(|(_, _, top_k)| 20 + 32 + opt_u32_len(top_k))
                    .sum::<usize>()
                    + opt_u32_len(shard_id)
            }
            Message::BatchReply { shard_id, results } => {
                opt_u32_len(shard_id)
                    + 8
                    + results
                        .iter()
                        .map(|(ranking, files)| 8 + 16 * ranking.len() + files_len(files))
                        .sum::<usize>()
            }
            Message::FilterRequest { known_epoch, .. } => 4 + opt_u64_len(known_epoch),
            Message::FilterReply { labels, .. } => {
                4 + 8 + 1 + labels.as_ref().map_or(0, |labels| 8 + 20 * labels.len())
            }
            Message::ConjunctiveShardQuery {
                trapdoors, top_k, ..
            } => 8 + 52 * trapdoors.len() + opt_u32_len(top_k) + 4,
            Message::ConjunctiveShardReply { ranking, files, .. } => {
                4 + 8
                    + ranking
                        .iter()
                        .map(|(_, scores)| 8 + 8 + 8 * scores.len())
                        .sum::<usize>()
                    + files_len(files)
            }
        }
    }
}

/// Wire tag of [`Message::Error`] frames — exposed crate-internally so
/// the transport layer can classify reply bodies for traffic metering
/// (one byte peek) without a full decode.
pub(crate) const ERROR_FRAME_TAG: u8 = 12;

/// Bytes of the transport envelope prepended to every message body on a
/// byte stream: a big-endian `u32` length (covering the sequence id and
/// the body) followed by the big-endian `u64` pipelining sequence id.
pub const FRAME_HEADER_LEN: usize = 12;

/// Builds one length-delimited wire frame: `u32 len | u64 seq | body`,
/// where `len = 8 + body.len()`. This is the *only* place frame bytes are
/// assembled, so both transports put byte-identical frames on their wire
/// and the traffic meters count the very same lengths.
///
/// # Panics
///
/// If `body` exceeds [`MAX_FRAME_LEN`] — encoded messages are produced by
/// [`Message::encode`], which cannot exceed the cap without the encoder
/// itself being out of protocol.
pub fn frame_message(seq: u64, body: &[u8]) -> Vec<u8> {
    assert!(body.len() <= MAX_FRAME_LEN, "frame body over the wire cap");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&(body.len() as u32 + 8).to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(body);
    out
}

/// Reassembles length-delimited frames from an arbitrarily split byte
/// stream — the read side of [`frame_message`].
///
/// Feed whatever chunk the socket produced with [`Self::feed`], then
/// drain complete frames with [`Self::next_frame`]. The declared length
/// is validated as soon as the four length bytes are visible: a frame
/// announcing more than [`MAX_FRAME_LEN`] (or less than the sequence id
/// it must carry) is rejected *before* its payload is buffered, so a
/// hostile peer cannot make the assembler allocate the lie. After an
/// error the stream is unsynchronized and the caller must drop the
/// connection; the assembler keeps returning the same error.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` — compacted away once it grows past a
    /// threshold or the buffer fully drains, so a long-lived connection
    /// does not accrete its history.
    pos: usize,
}

/// Consumed-prefix size past which [`FrameAssembler`] compacts its buffer.
const ASSEMBLER_COMPACT_THRESHOLD: usize = 64 << 10;

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends raw stream bytes (any split, including single bytes).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete frame as `(seq, body)`, or `None` when the
    /// stream has not yet delivered one.
    ///
    /// # Errors
    ///
    /// [`CodecError::Oversize`] when a header declares a body over
    /// [`MAX_FRAME_LEN`]; [`CodecError::BadEnvelope`] when it declares a
    /// length too short to carry the sequence id. Both fire before any
    /// payload bytes are required (or kept).
    pub fn next_frame(&mut self) -> Result<Option<(u64, Vec<u8>)>, CodecError> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes");
        let len = u32::from_be_bytes(len_bytes);
        if (len as usize) < 8 {
            return Err(CodecError::BadEnvelope(len));
        }
        let body_len = len as usize - 8;
        if body_len > MAX_FRAME_LEN {
            return Err(CodecError::Oversize(u64::from(len)));
        }
        if avail < 4 + len as usize {
            self.compact();
            return Ok(None);
        }
        let seq_at = self.pos + 4;
        let seq = u64::from_be_bytes(self.buf[seq_at..seq_at + 8].try_into().expect("8 bytes"));
        let body = self.buf[seq_at + 8..seq_at + 8 + body_len].to_vec();
        self.pos += 4 + len as usize;
        self.compact();
        Ok(Some((seq, body)))
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > ASSEMBLER_COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Outsource {
                rsse_lists: vec![([1u8; 20], vec![vec![1, 2, 3], vec![4, 5]])],
                basic_lists: vec![([2u8; 20], vec![vec![9; 40]])],
                opse_domain: 128,
                opse_range: 1 << 46,
                files: vec![EncryptedFile::new(FileId::new(7), vec![0xaa; 100])],
            },
            Message::SearchRequest {
                label: [3u8; 20],
                list_key: [4u8; 32],
                top_k: Some(10),
                mode: SearchMode::Rsse,
            },
            Message::SearchRequest {
                label: [3u8; 20],
                list_key: [4u8; 32],
                top_k: None,
                mode: SearchMode::BasicEntries,
            },
            Message::RsseResponse {
                ranking: vec![(1, 999), (2, 500)],
                files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
            },
            Message::BasicFullResponse {
                scores: vec![(1, vec![5; 24])],
                files: vec![EncryptedFile::new(FileId::new(1), vec![7; 30])],
            },
            Message::BasicEntriesResponse {
                scores: vec![(1, vec![5; 24]), (9, vec![6; 24])],
            },
            Message::FetchFiles { ids: vec![3, 1, 2] },
            Message::FilesResponse {
                files: vec![
                    EncryptedFile::new(FileId::new(3), vec![1]),
                    EncryptedFile::new(FileId::new(1), vec![]),
                ],
            },
            Message::ConjunctiveRequest {
                trapdoors: vec![([7u8; 20], [8u8; 32]), ([9u8; 20], [10u8; 32])],
                top_k: Some(4),
            },
            Message::ConjunctiveResponse {
                ranking: vec![(1, vec![100, 200]), (2, vec![50, 60])],
                files: vec![EncryptedFile::new(FileId::new(1), vec![0xde, 0xad])],
            },
            Message::Update {
                rsse_lists: vec![([5u8; 20], vec![vec![1; 40], vec![2; 40]])],
                files: vec![EncryptedFile::new(FileId::new(12), vec![0xbe; 48])],
            },
            Message::UpdateAck {
                lists_touched: 3,
                files_added: 1,
            },
            Message::ShardQuery {
                label: [11u8; 20],
                list_key: [12u8; 32],
                top_k: Some(6),
                shard_id: 3,
            },
            Message::ShardQuery {
                label: [11u8; 20],
                list_key: [12u8; 32],
                top_k: None,
                shard_id: 0,
            },
            Message::ShardReply {
                shard_id: 3,
                ranking: vec![(4, 777), (9, 300)],
                files: vec![EncryptedFile::new(FileId::new(4), vec![0xcc; 18])],
            },
            Message::ShardReply {
                shard_id: 1,
                ranking: vec![],
                files: vec![],
            },
            Message::BatchRequest {
                queries: vec![
                    ([13u8; 20], [14u8; 32], Some(5)),
                    ([15u8; 20], [16u8; 32], None),
                ],
                shard_id: None,
            },
            Message::BatchRequest {
                queries: vec![([17u8; 20], [18u8; 32], Some(1))],
                shard_id: Some(2),
            },
            Message::BatchRequest {
                queries: vec![],
                shard_id: None,
            },
            Message::BatchReply {
                shard_id: None,
                results: vec![
                    (
                        vec![(1, 900), (2, 400)],
                        vec![EncryptedFile::new(FileId::new(1), vec![0xab; 12])],
                    ),
                    (vec![], vec![]),
                ],
            },
            Message::BatchReply {
                shard_id: Some(2),
                results: vec![(
                    vec![(8, 123)],
                    vec![EncryptedFile::new(FileId::new(8), vec![])],
                )],
            },
            Message::BatchReply {
                shard_id: None,
                results: vec![],
            },
            Message::FilterRequest {
                shard_id: 4,
                known_epoch: Some(9),
            },
            Message::FilterRequest {
                shard_id: 0,
                known_epoch: None,
            },
            Message::FilterReply {
                shard_id: 4,
                epoch: 10,
                labels: Some(vec![[19u8; 20], [20u8; 20]]),
            },
            Message::FilterReply {
                shard_id: 4,
                epoch: 10,
                labels: Some(vec![]),
            },
            Message::FilterReply {
                shard_id: 2,
                epoch: 9,
                labels: None,
            },
            Message::ConjunctiveShardQuery {
                trapdoors: vec![([21u8; 20], [22u8; 32]), ([23u8; 20], [24u8; 32])],
                top_k: Some(5),
                shard_id: 3,
            },
            Message::ConjunctiveShardQuery {
                trapdoors: vec![([25u8; 20], [26u8; 32])],
                top_k: None,
                shard_id: 0,
            },
            Message::ConjunctiveShardReply {
                shard_id: 3,
                ranking: vec![(4, vec![700, 80]), (9, vec![300, 20])],
                files: vec![EncryptedFile::new(FileId::new(4), vec![0xcd; 18])],
            },
            Message::ConjunctiveShardReply {
                shard_id: 1,
                ranking: vec![],
                files: vec![],
            },
            Message::Error {
                kind: ErrorKind::Rejected,
                detail: "expected a request".to_string(),
            },
            Message::Error {
                kind: ErrorKind::Overloaded,
                detail: String::new(),
            },
            Message::Error {
                kind: ErrorKind::Internal,
                detail: "wörker pänic".to_string(),
            },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for msg in sample_messages() {
            let encoded = msg.encode();
            let decoded = Message::decode(encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_an_error_not_a_panic() {
        for msg in sample_messages() {
            let encoded = msg.encode();
            for cut in 0..encoded.len() {
                let mut truncated = encoded.clone();
                truncated.truncate(cut);
                assert!(
                    Message::decode(truncated).is_err(),
                    "cut at {cut} must fail for {msg:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = Message::FetchFiles { ids: vec![1] }.encode();
        encoded.put_u8(0xff);
        assert_eq!(Message::decode(encoded), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(99);
        assert_eq!(Message::decode(buf), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(6); // FetchFiles
        buf.put_u64(u64::MAX); // absurd count
        assert!(matches!(Message::decode(buf), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn empty_buffer_rejected() {
        assert_eq!(
            Message::decode(BytesMut::new()),
            Err(CodecError::UnexpectedEof)
        );
    }

    #[test]
    fn wire_len_matches_encoding() {
        for msg in sample_messages() {
            assert_eq!(
                msg.wire_len(),
                msg.encode().len(),
                "arithmetic wire_len diverges for {msg:?}"
            );
        }
    }

    #[test]
    fn error_frame_detail_is_bounded_on_a_char_boundary() {
        let msg = Message::error(ErrorKind::Internal, "ä".repeat(300));
        let Message::Error { kind, detail } = &msg else {
            panic!("wrong variant");
        };
        assert_eq!(*kind, ErrorKind::Internal);
        assert!(detail.len() <= Message::MAX_ERROR_DETAIL);
        assert!(detail.chars().all(|c| c == 'ä'));
        let decoded = Message::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn error_frame_with_invalid_utf8_detail_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(12);
        buf.put_u8(ErrorKind::BadFrame.to_byte());
        put_bytes(&mut buf, &[0xff, 0xfe]);
        assert_eq!(Message::decode(buf), Err(CodecError::BadString));
    }

    #[test]
    fn unknown_error_kind_byte_is_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(12);
        buf.put_u8(9);
        put_bytes(&mut buf, b"x");
        assert_eq!(Message::decode(buf), Err(CodecError::BadTag(9)));
    }

    #[test]
    fn shard_query_presence_byte_is_strict() {
        // Same canonicality rule as SearchRequest: the has-top-k byte must
        // be exactly 0 or 1 or the frame is rejected.
        let mut encoded = Message::ShardQuery {
            label: [1u8; 20],
            list_key: [2u8; 32],
            top_k: None,
            shard_id: 5,
        }
        .encode();
        encoded[1 + 20 + 32] = 2;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn batch_request_presence_bytes_are_strict() {
        // Both the per-query has-top-k byte and the trailing has-shard-id
        // byte must be exactly 0 or 1 (canonical codec).
        let msg = Message::BatchRequest {
            queries: vec![([1u8; 20], [2u8; 32], None)],
            shard_id: None,
        };
        let per_query_offset = 1 + 8 + 20 + 32;
        let mut encoded = msg.encode();
        encoded[per_query_offset] = 3;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(3)));
        let mut encoded = msg.encode();
        encoded[per_query_offset + 1] = 4;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(4)));
    }

    #[test]
    fn batch_reply_shard_presence_byte_is_strict() {
        let mut encoded = Message::BatchReply {
            shard_id: None,
            results: vec![],
        }
        .encode();
        encoded[1] = 2;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn hostile_batch_counts_are_rejected_not_allocated() {
        // A huge query count in a tiny frame must fail cleanly.
        let mut buf = BytesMut::new();
        buf.put_u8(15);
        buf.put_u64(u64::MAX);
        assert!(matches!(Message::decode(buf), Err(CodecError::Oversize(_))));
        // A large-but-legal count with no payload behind it must hit EOF.
        let mut buf = BytesMut::new();
        buf.put_u8(15);
        buf.put_u64(1 << 20);
        assert_eq!(Message::decode(buf), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn filter_frame_presence_bytes_are_strict() {
        // FilterRequest's has-epoch byte and FilterReply's has-labels byte
        // must be exactly 0 or 1 (canonical codec).
        let mut encoded = Message::FilterRequest {
            shard_id: 1,
            known_epoch: None,
        }
        .encode();
        encoded[1 + 4] = 2;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(2)));
        let mut encoded = Message::FilterReply {
            shard_id: 1,
            epoch: 7,
            labels: None,
        }
        .encode();
        encoded[1 + 4 + 8] = 5;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(5)));
    }

    #[test]
    fn hostile_filter_label_counts_are_rejected_not_allocated() {
        // A huge label count in a tiny FilterReply must fail cleanly.
        let mut buf = BytesMut::new();
        buf.put_u8(18);
        buf.put_u32(0); // shard_id
        buf.put_u64(1); // epoch
        buf.put_u8(1); // labels present
        buf.put_u64(u64::MAX); // absurd count
        assert!(matches!(Message::decode(buf), Err(CodecError::Oversize(_))));
        // A large-but-legal count with no labels behind it must hit EOF.
        let mut buf = BytesMut::new();
        buf.put_u8(18);
        buf.put_u32(0);
        buf.put_u64(1);
        buf.put_u8(1);
        buf.put_u64(1 << 20);
        assert_eq!(Message::decode(buf), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn conjunctive_shard_query_presence_byte_is_strict() {
        // The has-top-k byte sits after the trapdoor vector; it must be
        // exactly 0 or 1 (canonical codec).
        let mut encoded = Message::ConjunctiveShardQuery {
            trapdoors: vec![([1u8; 20], [2u8; 32])],
            top_k: None,
            shard_id: 5,
        }
        .encode();
        encoded[1 + 8 + 52] = 2;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn hostile_conjunctive_shard_counts_are_rejected_not_allocated() {
        // A huge trapdoor count in a tiny leg frame must fail cleanly.
        let mut buf = BytesMut::new();
        buf.put_u8(19);
        buf.put_u64(u64::MAX);
        assert!(matches!(Message::decode(buf), Err(CodecError::Oversize(_))));
        // A huge ranking count in a tiny reply must fail cleanly too.
        let mut buf = BytesMut::new();
        buf.put_u8(20);
        buf.put_u32(0); // shard_id
        buf.put_u64(u64::MAX);
        assert!(matches!(Message::decode(buf), Err(CodecError::Oversize(_))));
        // A large-but-legal count with no payload behind it must hit EOF.
        let mut buf = BytesMut::new();
        buf.put_u8(20);
        buf.put_u32(0);
        buf.put_u64(1 << 20);
        assert_eq!(Message::decode(buf), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn non_boolean_top_k_presence_byte_is_rejected() {
        // A has-top-k byte other than 0/1 must fail, so every decodable
        // frame re-encodes to exactly its input bytes (canonical codec).
        let mut encoded = Message::SearchRequest {
            label: [3u8; 20],
            list_key: [4u8; 32],
            top_k: None,
            mode: SearchMode::Rsse,
        }
        .encode();
        let has_k_offset = 1 + 20 + 32;
        encoded[has_k_offset] = 7;
        assert_eq!(Message::decode(encoded), Err(CodecError::BadTag(7)));
    }

    #[test]
    fn frame_roundtrips_through_the_assembler() {
        let mut stream = Vec::new();
        let msgs = sample_messages();
        for (i, msg) in msgs.iter().enumerate() {
            stream.extend_from_slice(&frame_message(i as u64, &msg.encode()));
        }
        let mut asm = FrameAssembler::new();
        asm.feed(&stream);
        for (i, msg) in msgs.iter().enumerate() {
            let (seq, body) = asm.next_frame().unwrap().expect("frame complete");
            assert_eq!(seq, i as u64);
            assert_eq!(body, msg.encode().to_vec());
        }
        assert_eq!(asm.next_frame().unwrap(), None);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_reassembles_from_single_byte_feeds() {
        let body = Message::FetchFiles { ids: vec![7, 9] }.encode();
        let frame = frame_message(0xDEAD_BEEF, &body);
        let mut asm = FrameAssembler::new();
        for (i, b) in frame.iter().enumerate() {
            assert_eq!(asm.next_frame().unwrap(), None, "complete at byte {i}?");
            asm.feed(std::slice::from_ref(b));
        }
        let (seq, got) = asm.next_frame().unwrap().expect("complete");
        assert_eq!(seq, 0xDEAD_BEEF);
        assert_eq!(got, body.to_vec());
    }

    #[test]
    fn oversize_header_is_rejected_before_the_payload_arrives() {
        let mut asm = FrameAssembler::new();
        // Only the four length bytes: a declared body over the cap must
        // already fail, with nothing buffered beyond the header.
        asm.feed(&(MAX_FRAME_LEN as u32 + 8 + 1).to_be_bytes());
        assert!(matches!(asm.next_frame(), Err(CodecError::Oversize(_))));
        // The error is sticky: the stream cannot resynchronize.
        assert!(matches!(asm.next_frame(), Err(CodecError::Oversize(_))));
    }

    #[test]
    fn envelope_too_short_for_the_sequence_id_is_rejected() {
        for len in [0u32, 1, 7] {
            let mut asm = FrameAssembler::new();
            asm.feed(&len.to_be_bytes());
            assert_eq!(asm.next_frame().unwrap_err(), CodecError::BadEnvelope(len));
        }
        // len == 8 is the smallest legal frame: an empty body.
        let mut asm = FrameAssembler::new();
        asm.feed(&frame_message(3, &[]));
        assert_eq!(asm.next_frame().unwrap(), Some((3, Vec::new())));
    }

    #[test]
    fn assembler_compacts_its_consumed_prefix() {
        let body = vec![0xABu8; 32 << 10];
        let frame = frame_message(1, &body);
        let mut asm = FrameAssembler::new();
        for i in 0..4 {
            asm.feed(&frame);
            let (_, got) = asm.next_frame().unwrap().expect("complete");
            assert_eq!(got, body, "iteration {i}");
            assert_eq!(asm.buffered(), 0);
        }
        // Internal buffer must not have accreted all four frames.
        assert!(asm.buf.capacity() < 4 * frame.len());
    }
}
