//! **Extension** — retrieval integrity via Merkle authentication, plus the
//! server-side audit log.
//!
//! The paper's server is honest-but-curious, so it always returns the
//! right files. A deployable system should *verify* that: the owner
//! publishes a Merkle root over the encrypted collection at Setup; the
//! server accompanies every returned file with an inclusion proof; users
//! check proofs against the root they obtained out of band. Combined with
//! [`rsse_crypto::aead`] this upgrades storage to tamper-evident even
//! against a server that misbehaves on content (it can still withhold —
//! completeness needs further machinery).
//!
//! [`AuditCounters`] is the operational half: the server records every
//! handled request so operators (and the concurrency tests) can account
//! for exactly what was served. Early versions kept an [`AuditLog`] behind
//! a `parking_lot::RwLock` inside
//! [`CloudServer`](crate::entities::CloudServer); the per-request
//! `audit.write()` turned out to serialize the whole worker pool on
//! CPU-bound workloads, so the hot path now bumps lock-free
//! [`AuditCounters`] instead and `AuditLog` remains as the offline,
//! ring-retaining form used by operators and tests.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::files::EncryptedFile;
use rsse_crypto::{Digest, Sha256};

/// What kind of request an audit record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Single-keyword search (any of the three retrieval protocols).
    Search,
    /// A round-two file fetch.
    Fetch,
    /// Conjunctive multi-keyword search.
    Conjunctive,
    /// One scatter leg of a sharded search served by this shard.
    ShardQuery,
    /// One scatter leg of a sharded *conjunctive* search served by this
    /// shard.
    ConjunctiveShard,
    /// A batched frame carrying several searches in one round trip.
    Batch,
    /// A §VII score-dynamics update.
    Update,
    /// A label-filter fetch from the shard router.
    Filter,
    /// A message the server refused to handle.
    Rejected,
    /// A request whose handler panicked; the panic was contained and the
    /// client got an `Internal` error frame.
    Panicked,
}

/// Aggregated serving counters, cheap to copy out of the log.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServingReport {
    /// Total requests handled (including rejected ones).
    pub total: u64,
    /// Single-keyword searches.
    pub searches: u64,
    /// Round-two file fetches.
    pub fetches: u64,
    /// Conjunctive searches.
    pub conjunctive: u64,
    /// Sharded-search scatter legs served by this shard.
    pub shard_queries: u64,
    /// Sharded-conjunctive scatter legs served by this shard.
    pub conjunctive_shard_queries: u64,
    /// Batched frames handled (each may carry many searches).
    pub batches: u64,
    /// Score-dynamics updates applied.
    pub updates: u64,
    /// Label-filter fetches served to the shard router.
    pub filter_fetches: u64,
    /// Requests rejected as out-of-protocol.
    pub rejected: u64,
    /// Contained worker panics (each answered with an `Internal` error
    /// frame; the worker kept serving).
    pub panics: u64,
    /// Searches served straight off the ranking cache.
    pub cache_hits: u64,
    /// Searches that ranked from the index (cache cold, disabled, or
    /// invalidated).
    pub cache_misses: u64,
}

/// The server's request audit log: aggregate counters plus a bounded
/// ring of the most recent request kinds.
#[derive(Debug)]
pub struct AuditLog {
    report: ServingReport,
    recent: std::collections::VecDeque<RequestKind>,
    capacity: usize,
}

impl AuditLog {
    /// Default number of recent records retained.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty log retaining at most `capacity` recent records.
    pub fn with_capacity(capacity: usize) -> Self {
        AuditLog {
            report: ServingReport::default(),
            recent: std::collections::VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Records one handled request.
    pub fn record(&mut self, kind: RequestKind) {
        self.report.total += 1;
        match kind {
            RequestKind::Search => self.report.searches += 1,
            RequestKind::Fetch => self.report.fetches += 1,
            RequestKind::Conjunctive => self.report.conjunctive += 1,
            RequestKind::ShardQuery => self.report.shard_queries += 1,
            RequestKind::ConjunctiveShard => self.report.conjunctive_shard_queries += 1,
            RequestKind::Batch => self.report.batches += 1,
            RequestKind::Update => self.report.updates += 1,
            RequestKind::Filter => self.report.filter_fetches += 1,
            RequestKind::Rejected => self.report.rejected += 1,
            RequestKind::Panicked => self.report.panics += 1,
        }
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(kind);
    }

    /// The aggregate counters.
    pub fn report(&self) -> ServingReport {
        self.report
    }

    /// The retained recent request kinds, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = RequestKind> + '_ {
        self.recent.iter().copied()
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        AuditLog::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

/// Lock-free serving counters for the hot path.
///
/// Every worker thread calls [`AuditCounters::record`] once per request;
/// with the earlier `RwLock<AuditLog>` that write lock serialized the
/// whole pool on CPU-bound workloads (the `cpu` throughput scenario scaled
/// *negatively* past one worker). Relaxed atomics cost one uncontended
/// RMW per field and impose no ordering on the serving path — the counters
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct AuditCounters {
    total: AtomicU64,
    searches: AtomicU64,
    fetches: AtomicU64,
    conjunctive: AtomicU64,
    shard_queries: AtomicU64,
    conjunctive_shard_queries: AtomicU64,
    batches: AtomicU64,
    updates: AtomicU64,
    filter_fetches: AtomicU64,
    rejected: AtomicU64,
    panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl AuditCounters {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one handled request. Lock-free; callable from any worker.
    pub fn record(&self, kind: RequestKind) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let field = match kind {
            RequestKind::Search => &self.searches,
            RequestKind::Fetch => &self.fetches,
            RequestKind::Conjunctive => &self.conjunctive,
            RequestKind::ShardQuery => &self.shard_queries,
            RequestKind::ConjunctiveShard => &self.conjunctive_shard_queries,
            RequestKind::Batch => &self.batches,
            RequestKind::Update => &self.updates,
            RequestKind::Filter => &self.filter_fetches,
            RequestKind::Rejected => &self.rejected,
            RequestKind::Panicked => &self.panics,
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of one ranking-cache lookup.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots the counters. Individual loads are Relaxed, so a snapshot
    /// taken concurrently with traffic may be mid-request inconsistent;
    /// quiesced reads (after `shutdown`) are exact.
    pub fn report(&self) -> ServingReport {
        ServingReport {
            total: self.total.load(Ordering::Relaxed),
            searches: self.searches.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            conjunctive: self.conjunctive.load(Ordering::Relaxed),
            shard_queries: self.shard_queries.load(Ordering::Relaxed),
            conjunctive_shard_queries: self.conjunctive_shard_queries.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            filter_fetches: self.filter_fetches.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// A Merkle tree over the hashes of an encrypted file collection.
///
/// Leaves are `H(0x00 ‖ id ‖ ciphertext)`, inner nodes
/// `H(0x01 ‖ left ‖ right)`; the domain separation prevents
/// leaf/inner-node confusion attacks. Odd nodes are promoted unchanged.
///
/// # Example
///
/// ```
/// use rsse_cloud::audit::MerkleTree;
/// use rsse_cloud::EncryptedFile;
/// use rsse_ir::FileId;
///
/// let files: Vec<EncryptedFile> = (0..5)
///     .map(|i| EncryptedFile::new(FileId::new(i), vec![i as u8; 32]))
///     .collect();
/// let tree = MerkleTree::build(&files);
/// let proof = tree.prove(2).unwrap();
/// assert!(MerkleTree::verify(&tree.root(), &files[2], &proof));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaves, `levels.last()` = [root].
    levels: Vec<Vec<[u8; 32]>>,
}

/// An inclusion proof: sibling hashes from leaf to root, each tagged with
/// whether the sibling sits to the left.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// `(sibling_hash, sibling_is_left)` pairs, leaf-level first.
    pub path: Vec<([u8; 32], bool)>,
}

fn leaf_hash(file: &EncryptedFile) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(&file.id().to_bytes());
    h.update(file.ciphertext());
    h.finalize()
}

fn inner_hash(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left);
    h.update(right);
    h.finalize()
}

impl MerkleTree {
    /// Builds the tree over `files` in the given (canonical) order.
    ///
    /// # Panics
    ///
    /// Panics on an empty collection — there is nothing to commit to.
    pub fn build(files: &[EncryptedFile]) -> Self {
        assert!(!files.is_empty(), "cannot commit to an empty collection");
        let mut levels = vec![files.iter().map(leaf_hash).collect::<Vec<_>>()];
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                next.push(match pair {
                    [l, r] => inner_hash(l, r),
                    [odd] => *odd, // promoted unchanged
                    _ => unreachable!("chunks(2) yields 1..=2 items"),
                });
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The published root commitment.
    pub fn root(&self) -> [u8; 32] {
        self.levels.last().expect("non-empty")[0]
    }

    /// Number of committed files.
    pub fn num_leaves(&self) -> usize {
        self.levels[0].len()
    }

    /// Produces the inclusion proof for the leaf at `index`, or `None` if
    /// out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.num_leaves() {
            return None;
        }
        let mut path = Vec::with_capacity(self.levels.len());
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = i ^ 1;
            if sibling < level.len() {
                path.push((level[sibling], sibling < i));
            }
            // An odd promoted node contributes no sibling at this level.
            i /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }

    /// Verifies that `file` is committed under `root` by `proof`.
    pub fn verify(root: &[u8; 32], file: &EncryptedFile, proof: &MerkleProof) -> bool {
        let mut acc = leaf_hash(file);
        for (sibling, sibling_is_left) in &proof.path {
            acc = if *sibling_is_left {
                inner_hash(sibling, &acc)
            } else {
                inner_hash(&acc, sibling)
            };
        }
        &acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_ir::FileId;

    fn files(n: u64) -> Vec<EncryptedFile> {
        (0..n)
            .map(|i| EncryptedFile::new(FileId::new(i), vec![i as u8; 24 + (i as usize % 5)]))
            .collect()
    }

    #[test]
    fn every_leaf_proves_for_various_sizes() {
        for n in [1u64, 2, 3, 4, 5, 7, 8, 9, 16, 33] {
            let fs = files(n);
            let tree = MerkleTree::build(&fs);
            for (i, f) in fs.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(
                    MerkleTree::verify(&tree.root(), f, &proof),
                    "n={n} leaf {i}"
                );
            }
        }
    }

    #[test]
    fn tampered_file_fails_verification() {
        let fs = files(8);
        let tree = MerkleTree::build(&fs);
        let proof = tree.prove(3).unwrap();
        let forged = EncryptedFile::new(fs[3].id(), {
            let mut c = fs[3].ciphertext().to_vec();
            c[0] ^= 1;
            c
        });
        assert!(!MerkleTree::verify(&tree.root(), &forged, &proof));
    }

    #[test]
    fn wrong_id_fails_verification() {
        let fs = files(8);
        let tree = MerkleTree::build(&fs);
        let proof = tree.prove(3).unwrap();
        let misattributed = EncryptedFile::new(FileId::new(99), fs[3].ciphertext().to_vec());
        assert!(!MerkleTree::verify(&tree.root(), &misattributed, &proof));
    }

    #[test]
    fn proof_for_one_leaf_rejects_another() {
        let fs = files(8);
        let tree = MerkleTree::build(&fs);
        let proof = tree.prove(3).unwrap();
        assert!(!MerkleTree::verify(&tree.root(), &fs[4], &proof));
    }

    #[test]
    fn truncated_proof_fails() {
        let fs = files(16);
        let tree = MerkleTree::build(&fs);
        let mut proof = tree.prove(5).unwrap();
        proof.path.pop();
        assert!(!MerkleTree::verify(&tree.root(), &fs[5], &proof));
    }

    #[test]
    fn roots_differ_when_any_file_differs() {
        let a = MerkleTree::build(&files(8));
        let mut changed = files(8);
        changed[7] = EncryptedFile::new(FileId::new(7), vec![0xFF; 10]);
        let b = MerkleTree::build(&changed);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn out_of_range_proof_is_none() {
        let tree = MerkleTree::build(&files(4));
        assert!(tree.prove(4).is_none());
    }

    #[test]
    fn single_file_tree() {
        let fs = files(1);
        let tree = MerkleTree::build(&fs);
        let proof = tree.prove(0).unwrap();
        assert!(proof.path.is_empty());
        assert!(MerkleTree::verify(&tree.root(), &fs[0], &proof));
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_panics() {
        MerkleTree::build(&[]);
    }

    #[test]
    fn audit_log_counts_and_caps_recent() {
        let mut log = AuditLog::with_capacity(4);
        for _ in 0..3 {
            log.record(RequestKind::Search);
        }
        log.record(RequestKind::Update);
        log.record(RequestKind::Rejected);
        log.record(RequestKind::Fetch);
        let report = log.report();
        assert_eq!(report.total, 6);
        assert_eq!(report.searches, 3);
        assert_eq!(report.updates, 1);
        assert_eq!(report.rejected, 1);
        assert_eq!(report.fetches, 1);
        assert_eq!(report.conjunctive, 0);
        assert_eq!(report.shard_queries, 0);
        assert_eq!(report.conjunctive_shard_queries, 0);
        assert_eq!(report.panics, 0);
        // Only the 4 most recent records survive.
        let recent: Vec<RequestKind> = log.recent().collect();
        assert_eq!(
            recent,
            vec![
                RequestKind::Search,
                RequestKind::Update,
                RequestKind::Rejected,
                RequestKind::Fetch
            ]
        );
    }

    #[test]
    fn shard_query_legs_are_counted() {
        let mut log = AuditLog::with_capacity(4);
        log.record(RequestKind::ShardQuery);
        log.record(RequestKind::ShardQuery);
        let report = log.report();
        assert_eq!(report.total, 2);
        assert_eq!(report.shard_queries, 2);
        assert_eq!(report.searches, 0);
        assert!(log.recent().all(|k| k == RequestKind::ShardQuery));
    }

    #[test]
    fn atomic_counters_match_log_semantics() {
        let counters = AuditCounters::new();
        let mut log = AuditLog::with_capacity(16);
        let kinds = [
            RequestKind::Search,
            RequestKind::Search,
            RequestKind::Batch,
            RequestKind::ShardQuery,
            RequestKind::Update,
            RequestKind::Rejected,
            RequestKind::Panicked,
            RequestKind::Fetch,
            RequestKind::Conjunctive,
            RequestKind::ConjunctiveShard,
            RequestKind::Filter,
        ];
        for kind in kinds {
            counters.record(kind);
            log.record(kind);
        }
        assert_eq!(counters.report(), log.report());
    }

    #[test]
    fn cache_outcomes_are_counted_separately_from_requests() {
        let counters = AuditCounters::new();
        counters.record(RequestKind::Search);
        counters.record_cache(false);
        counters.record(RequestKind::Search);
        counters.record_cache(true);
        counters.record_cache(true);
        let report = counters.report();
        assert_eq!(report.total, 2, "cache outcomes are not requests");
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
    }

    #[test]
    fn counters_are_exact_across_threads() {
        let counters = std::sync::Arc::new(AuditCounters::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record(RequestKind::Search);
                        c.record_cache(true);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let report = counters.report();
        assert_eq!(report.total, 4000);
        assert_eq!(report.searches, 4000);
        assert_eq!(report.cache_hits, 4000);
    }

    #[test]
    fn contained_panics_are_counted_and_retained() {
        let mut log = AuditLog::with_capacity(4);
        log.record(RequestKind::Search);
        log.record(RequestKind::Panicked);
        let report = log.report();
        assert_eq!(report.total, 2);
        assert_eq!(report.panics, 1);
        assert_eq!(report.searches, 1);
        assert!(log.recent().any(|k| k == RequestKind::Panicked));
    }
}
