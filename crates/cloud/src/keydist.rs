//! **Extension** — trapdoor-key distribution for authorized users.
//!
//! The paper's Setup phase says the owner "distribute\[s\] the necessary
//! secret parameters (the trapdoor generation key) to a group of
//! authorized users by employing off-the-shelf public key cryptography or
//! more efficient primitive such as broadcast encryption". This module
//! implements the key-wrapping registry that stands in for that machinery:
//!
//! * each enrolled user shares a key-encryption key (KEK) with the owner
//!   (the artifact a PKI or broadcast-encryption scheme would establish);
//! * `grant` wraps the current master credential under a user's KEK;
//! * `revoke` + `rotate` implement the coarse-grained revocation the
//!   symmetric setting allows: rotating re-keys the whole system, and only
//!   still-enrolled users receive the new wrapped credential.

use rsse_crypto::ctr::Sealer;
use rsse_crypto::{CryptoError, SecretKey, SemanticCipher};
use std::collections::HashMap;

/// An opaque wrapped credential handed to one user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedCredential {
    /// Credential epoch (bumped by each rotation).
    pub epoch: u64,
    ciphertext: Vec<u8>,
}

/// The owner-side user registry.
#[derive(Debug)]
pub struct KeyDistributor {
    master_seed: Vec<u8>,
    epoch: u64,
    users: HashMap<String, SecretKey>,
}

impl KeyDistributor {
    /// Creates a distributor over the owner's current master seed.
    pub fn new(master_seed: &[u8]) -> Self {
        KeyDistributor {
            master_seed: master_seed.to_vec(),
            epoch: 0,
            users: HashMap::new(),
        }
    }

    /// The current epoch (bumped by [`Self::rotate`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current master seed (what an authorized user reconstructs).
    pub fn master_seed(&self) -> &[u8] {
        &self.master_seed
    }

    /// Enrolls a user with an established KEK and returns their wrapped
    /// credential.
    pub fn enroll(&mut self, user_id: &str, kek: SecretKey) -> WrappedCredential {
        self.users.insert(user_id.to_string(), kek.clone());
        self.wrap(&kek)
    }

    /// Re-issues the current credential to an already-enrolled user.
    pub fn grant(&self, user_id: &str) -> Option<WrappedCredential> {
        self.users.get(user_id).map(|kek| self.wrap(kek))
    }

    /// Removes a user from the registry. Their existing credential keeps
    /// working until the owner rotates — the inherent limitation of
    /// symmetric-key authorization the paper inherits.
    pub fn revoke(&mut self, user_id: &str) -> bool {
        self.users.remove(user_id).is_some()
    }

    /// Rotates the master credential: derives a fresh seed, bumps the
    /// epoch, and returns new wrapped credentials for every still-enrolled
    /// user. The owner must rebuild/re-encrypt the outsourced index under
    /// the new seed for revocation to take effect.
    pub fn rotate(&mut self) -> Vec<(String, WrappedCredential)> {
        self.epoch += 1;
        self.master_seed = SecretKey::derive(&self.master_seed, &format!("rotate/{}", self.epoch))
            .as_bytes()
            .to_vec();
        let mut out: Vec<(String, WrappedCredential)> = self
            .users
            .iter()
            .map(|(id, kek)| (id.clone(), self.wrap(kek)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn wrap(&self, kek: &SecretKey) -> WrappedCredential {
        let mut sealer = Sealer::new(SemanticCipher::new(kek), self.epoch);
        WrappedCredential {
            epoch: self.epoch,
            ciphertext: sealer.seal(&self.master_seed),
        }
    }
}

/// User-side unwrap: recover the master seed with the shared KEK.
///
/// # Errors
///
/// Propagates decryption failures (truncated credential).
pub fn unwrap_credential(
    kek: &SecretKey,
    credential: &WrappedCredential,
) -> Result<Vec<u8>, CryptoError> {
    SemanticCipher::new(kek).decrypt(&credential.ciphertext)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kek(label: &str) -> SecretKey {
        SecretKey::derive(b"user kek material", label)
    }

    #[test]
    fn enrolled_user_recovers_the_master_seed() {
        let mut dist = KeyDistributor::new(b"the master seed");
        let cred = dist.enroll("alice", kek("alice"));
        let seed = unwrap_credential(&kek("alice"), &cred).unwrap();
        assert_eq!(seed, b"the master seed");
    }

    #[test]
    fn wrong_kek_does_not_recover_the_seed() {
        let mut dist = KeyDistributor::new(b"the master seed");
        let cred = dist.enroll("alice", kek("alice"));
        let got = unwrap_credential(&kek("mallory"), &cred).unwrap();
        assert_ne!(got, b"the master seed");
    }

    #[test]
    fn rotation_changes_the_seed_and_skips_revoked_users() {
        let mut dist = KeyDistributor::new(b"seed v0");
        dist.enroll("alice", kek("alice"));
        dist.enroll("bob", kek("bob"));
        assert!(dist.revoke("bob"));
        assert!(!dist.revoke("bob"), "double revoke is a no-op");

        let reissued = dist.rotate();
        assert_eq!(dist.epoch(), 1);
        let names: Vec<&str> = reissued.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alice"]);

        // Alice's new credential unwraps to the *new* seed.
        let (_, cred) = &reissued[0];
        assert_eq!(cred.epoch, 1);
        let new_seed = unwrap_credential(&kek("alice"), cred).unwrap();
        assert_ne!(new_seed, b"seed v0");
        assert_eq!(new_seed, dist.master_seed());
    }

    #[test]
    fn grant_reissues_current_epoch_only_to_enrolled_users() {
        let mut dist = KeyDistributor::new(b"seed");
        dist.enroll("alice", kek("alice"));
        assert!(dist.grant("alice").is_some());
        assert!(dist.grant("nobody").is_none());
    }

    #[test]
    fn rotated_system_rejects_old_credentials_end_to_end() {
        use rsse_core::{Rsse, RsseParams};
        use rsse_ir::{Document, FileId};

        let mut dist = KeyDistributor::new(b"epoch zero seed");
        let cred_old = dist.enroll("alice", kek("alice"));
        dist.rotate();

        // The owner rebuilds the index under the rotated seed.
        let docs = vec![Document::new(FileId::new(1), "network notes")];
        let owner = Rsse::new(dist.master_seed(), RsseParams::default());
        let index = owner.build_index(&docs).unwrap();

        // A user stuck with the pre-rotation credential derives stale keys.
        let stale_seed = unwrap_credential(&kek("alice"), &cred_old).unwrap();
        let stale = Rsse::new(&stale_seed, RsseParams::default());
        let t = stale.trapdoor("network").unwrap();
        assert!(index.search(&t, None).is_empty());

        // A refreshed credential works.
        let cred_new = dist.grant("alice").unwrap();
        let fresh_seed = unwrap_credential(&kek("alice"), &cred_new).unwrap();
        let fresh = Rsse::new(&fresh_seed, RsseParams::default());
        let t = fresh.trapdoor("network").unwrap();
        assert_eq!(index.search(&t, None).len(), 1);
    }
}
