//! Error type for the cloud deployment simulation.

use crate::codec::CodecError;
use core::fmt;
use rsse_core::RsseError;
use rsse_crypto::CryptoError;
use rsse_sse::SseError;

/// Errors from the simulated deployment.
#[derive(Debug)]
#[non_exhaustive]
pub enum CloudError {
    /// Wire decoding failed.
    Codec(CodecError),
    /// The peer sent a message the handler does not expect in this state.
    UnexpectedMessage {
        /// What the handler expected.
        expected: &'static str,
    },
    /// RSSE scheme failure.
    Rsse(RsseError),
    /// Basic scheme failure.
    Sse(SseError),
    /// Cryptographic failure.
    Crypto(CryptoError),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Codec(e) => write!(f, "wire decoding failed: {e}"),
            CloudError::UnexpectedMessage { expected } => {
                write!(f, "unexpected message; expected {expected}")
            }
            CloudError::Rsse(e) => write!(f, "rsse failure: {e}"),
            CloudError::Sse(e) => write!(f, "sse failure: {e}"),
            CloudError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for CloudError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloudError::Codec(e) => Some(e),
            CloudError::Rsse(e) => Some(e),
            CloudError::Sse(e) => Some(e),
            CloudError::Crypto(e) => Some(e),
            CloudError::UnexpectedMessage { .. } => None,
        }
    }
}

impl From<CodecError> for CloudError {
    fn from(e: CodecError) -> Self {
        CloudError::Codec(e)
    }
}

impl From<RsseError> for CloudError {
    fn from(e: RsseError) -> Self {
        CloudError::Rsse(e)
    }
}

impl From<SseError> for CloudError {
    fn from(e: SseError) -> Self {
        CloudError::Sse(e)
    }
}

impl From<CryptoError> for CloudError {
    fn from(e: CryptoError) -> Self {
        CloudError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CloudError::Codec(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("wire decoding"));
        assert!(e.source().is_some());
        let u = CloudError::UnexpectedMessage { expected: "files" };
        assert!(u.source().is_none());
    }
}
