//! Error type for the cloud deployment simulation.

use crate::codec::{CodecError, ErrorKind};
use core::fmt;
use rsse_core::{PersistError, RsseError};
use rsse_crypto::CryptoError;
use rsse_sse::SseError;
use std::time::Duration;

/// Errors from the simulated deployment.
#[derive(Debug)]
#[non_exhaustive]
pub enum CloudError {
    /// Wire decoding failed.
    Codec(CodecError),
    /// The peer sent a message the handler does not expect in this state.
    UnexpectedMessage {
        /// What the handler expected.
        expected: &'static str,
    },
    /// The server answered with a [`crate::codec::Message::Error`] frame.
    Server {
        /// Typed failure category from the wire.
        kind: ErrorKind,
        /// The frame's detail string.
        detail: String,
    },
    /// A client call exceeded its deadline before the server replied.
    Timeout {
        /// The deadline that expired.
        after: Duration,
    },
    /// The transport to the server is gone (pool shut down or worker died
    /// before replying).
    Transport {
        /// What the transport was doing when it failed.
        context: &'static str,
    },
    /// Every shard of a scatter-gather query failed — there is no partial
    /// result left to degrade to. Individual shard failures are *not*
    /// errors (the router merges the surviving replies and reports the
    /// dead legs as degraded coverage); this fires only on total loss.
    AllShardsFailed {
        /// Number of shards queried, all of which failed.
        shards: u32,
    },
    /// Index persistence failure (saving, opening, or compacting an
    /// on-disk segment).
    Persist(PersistError),
    /// RSSE scheme failure.
    Rsse(RsseError),
    /// Basic scheme failure.
    Sse(SseError),
    /// Cryptographic failure.
    Crypto(CryptoError),
}

impl CloudError {
    /// The [`ErrorKind`] a server puts on the wire when a request fails
    /// with this error: decode failures are `BadFrame`, out-of-protocol
    /// messages `Rejected`, everything else `Internal`.
    pub fn wire_kind(&self) -> ErrorKind {
        match self {
            CloudError::Codec(_) => ErrorKind::BadFrame,
            CloudError::UnexpectedMessage { .. } => ErrorKind::Rejected,
            CloudError::Server { kind, .. } => *kind,
            _ => ErrorKind::Internal,
        }
    }
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Codec(e) => write!(f, "wire decoding failed: {e}"),
            CloudError::UnexpectedMessage { expected } => {
                write!(f, "unexpected message; expected {expected}")
            }
            CloudError::Server { kind, detail } => {
                write!(f, "server error ({kind}): {detail}")
            }
            CloudError::Timeout { after } => {
                write!(f, "no response within {} ms", after.as_millis())
            }
            CloudError::Transport { context } => write!(f, "transport failed: {context}"),
            CloudError::AllShardsFailed { shards } => {
                write!(f, "all {shards} shards failed; no partial result")
            }
            CloudError::Persist(e) => write!(f, "index persistence failed: {e}"),
            CloudError::Rsse(e) => write!(f, "rsse failure: {e}"),
            CloudError::Sse(e) => write!(f, "sse failure: {e}"),
            CloudError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for CloudError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CloudError::Codec(e) => Some(e),
            CloudError::Persist(e) => Some(e),
            CloudError::Rsse(e) => Some(e),
            CloudError::Sse(e) => Some(e),
            CloudError::Crypto(e) => Some(e),
            CloudError::UnexpectedMessage { .. }
            | CloudError::Server { .. }
            | CloudError::Timeout { .. }
            | CloudError::Transport { .. }
            | CloudError::AllShardsFailed { .. } => None,
        }
    }
}

impl From<CodecError> for CloudError {
    fn from(e: CodecError) -> Self {
        CloudError::Codec(e)
    }
}

impl From<RsseError> for CloudError {
    fn from(e: RsseError) -> Self {
        CloudError::Rsse(e)
    }
}

impl From<PersistError> for CloudError {
    fn from(e: PersistError) -> Self {
        CloudError::Persist(e)
    }
}

impl From<SseError> for CloudError {
    fn from(e: SseError) -> Self {
        CloudError::Sse(e)
    }
}

impl From<CryptoError> for CloudError {
    fn from(e: CryptoError) -> Self {
        CloudError::Crypto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CloudError::Codec(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("wire decoding"));
        assert!(e.source().is_some());
        let u = CloudError::UnexpectedMessage { expected: "files" };
        assert!(u.source().is_none());
        let s = CloudError::Server {
            kind: ErrorKind::Overloaded,
            detail: "backlog full".into(),
        };
        assert!(s.to_string().contains("overloaded"));
        assert!(s.source().is_none());
        let t = CloudError::Timeout {
            after: Duration::from_millis(250),
        };
        assert!(t.to_string().contains("250"));
        let a = CloudError::AllShardsFailed { shards: 4 };
        assert!(a.to_string().contains("all 4 shards"));
        assert!(a.source().is_none());
        assert_eq!(a.wire_kind(), ErrorKind::Internal);
    }

    #[test]
    fn wire_kind_maps_failure_classes() {
        assert_eq!(
            CloudError::Codec(CodecError::UnexpectedEof).wire_kind(),
            ErrorKind::BadFrame
        );
        assert_eq!(
            CloudError::UnexpectedMessage { expected: "x" }.wire_kind(),
            ErrorKind::Rejected
        );
        assert_eq!(
            CloudError::Crypto(CryptoError::IntegrityCheckFailed).wire_kind(),
            ErrorKind::Internal
        );
        assert_eq!(
            CloudError::Server {
                kind: ErrorKind::Overloaded,
                detail: String::new()
            }
            .wire_kind(),
            ErrorKind::Overloaded
        );
    }
}
