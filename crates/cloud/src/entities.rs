//! The three protocol entities of the paper's Fig. 1 — data owner, cloud
//! server, data user — and a [`Deployment`] harness that wires them through
//! the metered channel.
//!
//! Three retrieval protocols are implemented, matching the paper's
//! discussion:
//!
//! 1. **RSSE** (§IV): one round; the server ranks on OPM values and returns
//!    only the top-k files.
//! 2. **Basic, naive** (§III-C): one round; the server returns *every*
//!    matching file plus its semantically encrypted score; the user ranks.
//! 3. **Basic, two-round top-k** (§III-C discussion): round one transfers
//!    only `(id, E_z(S))` pairs; the user ranks and fetches top-k files in
//!    round two — saving bandwidth, paying an extra round trip.

use crate::audit::{AuditCounters, RequestKind, ServingReport};
use crate::cache::{CacheStats, ConjunctiveCache, RankingCache};
use crate::codec::{BatchResult, Label, Message, SearchMode};
use crate::error::CloudError;
use crate::files::{EncryptedFile, FileCrypter, FileStore};
use crate::network::{MeteredChannel, TrafficReport};
use parking_lot::{RwLock, RwLockReadGuard};
use rsse_core::{
    canonical_label_order, ranked_prefix, BatchReadStats, CompactionStats, ConjunctiveResult,
    GenerationStats, MultiTrapdoor, RankedResult, Rsse, RsseIndex, RsseParams, RsseTrapdoor,
};
use rsse_crypto::SecretKey;
use rsse_ir::{Document, FileId, InvertedIndex};
use rsse_opse::OpseParams;
use rsse_sse::scheme::open_entries;
use rsse_sse::{BasicEncryptedIndex, BasicScheme};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// The data owner: holds the master secret, builds both secure indexes,
/// encrypts the collection, and authorizes users by sharing the seed
/// (standing in for the paper's broadcast-encryption key distribution).
#[derive(Debug)]
pub struct DataOwner {
    master_seed: Vec<u8>,
    rsse: Rsse,
    basic: BasicScheme,
    files: FileCrypter,
}

impl DataOwner {
    /// Creates the owner from a master seed and RSSE parameters.
    pub fn new(master_seed: &[u8], params: RsseParams) -> Self {
        DataOwner {
            master_seed: master_seed.to_vec(),
            rsse: Rsse::new(master_seed, params),
            basic: BasicScheme::new(master_seed),
            files: FileCrypter::new(master_seed),
        }
    }

    /// The `Setup` phase: build both indexes, encrypt all files, and emit
    /// the `Outsource` message.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn outsource(&self, docs: &[Document]) -> Result<Message, CloudError> {
        let plaintext_index = InvertedIndex::build(docs);
        let rsse_index = self.rsse.build_index_from(&plaintext_index)?;
        let opse = *rsse_index
            .opse_params()
            .expect("freshly built index carries parameters");
        let basic_index = self
            .basic
            .build_index(&plaintext_index, Default::default())?;
        Ok(Message::Outsource {
            rsse_lists: rsse_index.export_parts(),
            basic_lists: basic_index.export_parts(),
            opse_domain: opse.domain_size(),
            opse_range: opse.range_size(),
            files: self.files.encrypt_collection(docs),
        })
    }

    /// Authorizes a user: in the paper, the trapdoor-generation key is
    /// distributed via public-key crypto or broadcast encryption; here the
    /// credential is the master seed itself.
    pub fn authorize_user(&self) -> User {
        User::new(&self.master_seed, *self.rsse.params())
    }

    /// Encrypts the collection without touching either index — the
    /// warm-restart path: the server reopens its index from a persisted
    /// segment, and only the file ciphertexts (deterministic under the
    /// owner's key) need re-supplying.
    pub fn encrypt_files(&self, docs: &[Document]) -> Vec<EncryptedFile> {
        self.files.encrypt_collection(docs)
    }

    /// Sharded `Setup`: builds the global encrypted index **once**, then
    /// partitions its ciphertexts across the partitioner's shards by
    /// file-id hash, emitting one `Outsource` message per shard.
    ///
    /// Partitioning the *built* index — rather than building one index per
    /// shard — is what makes sharded ranking byte-identical to the
    /// unsharded path: scores are computed against global collection
    /// statistics, and each OPM value is seeded per `(keyword, file)`, so
    /// a per-shard rebuild would change both. Entries are semantically
    /// encrypted, so only the owner can route them; it does so with
    /// [`Rsse::posting_owners`], which reproduces the build's entry order
    /// without decrypting anything. Padding entries (positions past the
    /// real postings) spread round-robin so every shard keeps cover
    /// traffic. Each encrypted file is stored only on the shard owning its
    /// id; the basic-scheme index is not sharded (single-server protocols
    /// 2 and 3 stay on the unsharded deployment).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn outsource_sharded(
        &self,
        docs: &[Document],
        partitioner: &crate::shard::IndexPartitioner,
    ) -> Result<Vec<Message>, CloudError> {
        Ok(self.outsource_sharded_with_filters(docs, partitioner)?.0)
    }

    /// [`DataOwner::outsource_sharded`] plus the per-shard **exact** label
    /// filters: for each shard, the sorted set of posting-list labels whose
    /// partition on that shard contains at least one *real* (non-padding)
    /// entry. Padding-only partitions rank to nothing
    /// (`RsseIndex::search` drops entries that fail authenticated
    /// decryption), so a router may skip any shard outside a label's
    /// filter without changing the merged ranking. Only the owner can
    /// compute these exactly — [`Rsse::posting_owners`] tells real entries
    /// from padding, which the server-side conservative filter cannot.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn outsource_sharded_with_filters(
        &self,
        docs: &[Document],
        partitioner: &crate::shard::IndexPartitioner,
    ) -> Result<(Vec<Message>, Vec<Vec<Label>>), CloudError> {
        let plaintext_index = InvertedIndex::build(docs);
        let rsse_index = self.rsse.build_index_from(&plaintext_index)?;
        let opse = *rsse_index
            .opse_params()
            .expect("freshly built index carries parameters");
        let owners: std::collections::HashMap<_, _> = self
            .rsse
            .posting_owners(&plaintext_index)
            .into_iter()
            .collect();
        let n = partitioner.num_shards();
        let shard_indexes = rsse_index.split_parts(n, |label, pos, _| {
            match owners.get(label).and_then(|files| files.get(pos)) {
                Some(file) => partitioner.shard_of(*file),
                None => pos % n, // padding entry
            }
        });
        let mut shard_labels: Vec<BTreeSet<Label>> = vec![BTreeSet::new(); n];
        for (label, files) in &owners {
            for file in files {
                shard_labels[partitioner.shard_of(*file)].insert(*label);
            }
        }
        let mut shard_files: Vec<Vec<EncryptedFile>> = vec![Vec::new(); n];
        for file in self.files.encrypt_collection(docs) {
            shard_files[partitioner.shard_of(file.id())].push(file);
        }
        Ok((
            shard_indexes
                .into_iter()
                .zip(shard_files)
                .map(|(index, files)| Message::Outsource {
                    rsse_lists: index.export_parts(),
                    basic_lists: Vec::new(),
                    opse_domain: opse.domain_size(),
                    opse_range: opse.range_size(),
                    files,
                })
                .collect(),
            shard_labels
                .into_iter()
                .map(|labels| labels.into_iter().collect())
                .collect(),
        ))
    }
}

/// The fields of a decoded [`Message::Outsource`]: RSSE posting lists,
/// basic-scheme posting lists, validated OPSE parameters, and the
/// encrypted collection.
type OutsourceParts = (
    Vec<(Label, Vec<Vec<u8>>)>,
    Vec<(Label, Vec<Vec<u8>>)>,
    OpseParams,
    Vec<EncryptedFile>,
);

/// The honest-but-curious cloud server.
///
/// All mutable state — the RSSE index (§VII score-dynamics appends), the
/// file store, and the ranking cache — sits behind `parking_lot` locks, so
/// `handle` takes `&self` and an `Arc<CloudServer>` can serve many worker
/// threads concurrently: searches take read locks and never serialize
/// against each other; only updates take the write side. Audit counters
/// are lock-free atomics ([`AuditCounters`]) — the per-request
/// `audit.write()` of earlier versions serialized the whole pool.
#[derive(Debug)]
pub struct CloudServer {
    rsse_index: RwLock<RsseIndex>,
    basic_index: BasicEncryptedIndex,
    files: RwLock<FileStore>,
    counters: AuditCounters,
    /// Hot-keyword ranking cache (DESIGN.md §6.3). An `RwLock` whose read
    /// side carries the whole hit path: [`RankingCache::get`] takes
    /// `&self` (LRU clock and counters are atomics), so concurrent workers
    /// hit in parallel; only fills, invalidations, and eviction take the
    /// write side. The expensive ranking work on a miss happens *outside*
    /// the lock, guarded by the cache epoch.
    cache: RwLock<RankingCache>,
    /// Conjunctive-result cache, same epoch discipline as `cache`: full
    /// intersected rankings keyed by the **sorted** label set, with mapped
    /// scores stored in canonical (label-sorted) part order so every
    /// keyword ordering of one query shares one entry (DESIGN.md §6.8).
    /// Invalidated wholesale on updates and compactions — a conjunction
    /// touches several lists, so per-label surgical invalidation would
    /// need a reverse map for a path that is rebuilt in one batched read.
    conjunctive_cache: RwLock<ConjunctiveCache>,
    /// The shard-side label filter: which posting-list labels this server
    /// (treated as one shard of a sharded deployment) may hold real
    /// postings for, plus the epoch stamped into every `FilterReply`
    /// (DESIGN.md §6.5). Seeded conservatively from the index directory at
    /// boot, replaced by the owner's exact set at sharded bootstrap, grown
    /// by every update.
    filter: RwLock<LabelFilter>,
    /// Lock-free mirror of the filter epoch, shared with in-process
    /// routers so they can detect staleness with one atomic load per
    /// query instead of a filter-fetch round trip.
    filter_watch: Arc<AtomicU64>,
}

/// The label set behind [`Message::FilterReply`], with its epoch.
#[derive(Debug)]
struct LabelFilter {
    labels: BTreeSet<Label>,
    epoch: u64,
}

impl CloudServer {
    /// Default ranking-cache budget: plenty for every hot list of the
    /// simulated corpora while still exercising eviction under adversarial
    /// growth.
    pub const DEFAULT_CACHE_BUDGET: usize = 32 << 20;

    /// Boots the server from the owner's `Outsource` message with the
    /// default ranking-cache budget.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] for any other message type, or an
    /// OPSE parameter error for inconsistent public parameters.
    pub fn from_outsource(msg: Message) -> Result<Self, CloudError> {
        Self::from_outsource_with_cache(msg, Self::DEFAULT_CACHE_BUDGET)
    }

    /// Boots the server with an explicit ranking-cache byte budget; `0`
    /// disables caching entirely (every search ranks from the index).
    ///
    /// # Errors
    ///
    /// As [`CloudServer::from_outsource`].
    pub fn from_outsource_with_cache(
        msg: Message,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let (rsse_lists, basic_lists, opse, files) = Self::split_outsource(msg)?;
        Ok(Self::assemble(
            RsseIndex::from_parts(rsse_lists, opse),
            basic_lists,
            files,
            cache_budget_bytes,
        ))
    }

    /// Boots the server from the owner's `Outsource` message **onto the
    /// segment backend**: the received index is persisted to
    /// `segment_path` as an `RSSEIDX2` segment and then served from disk
    /// via its label→offset directory — only the touched posting list is
    /// read per query, and a later restart can skip this step entirely by
    /// calling [`CloudServer::from_segment`] on the same path.
    ///
    /// # Errors
    ///
    /// As [`CloudServer::from_outsource`], plus [`CloudError::Persist`]
    /// for failures writing or reopening the segment.
    pub fn from_outsource_segment(
        msg: Message,
        segment_path: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let (rsse_lists, basic_lists, opse, files) = Self::split_outsource(msg)?;
        let staged = RsseIndex::from_parts(rsse_lists, opse);
        staged
            .save(
                std::fs::File::create(segment_path.as_ref())
                    .map_err(rsse_core::PersistError::from)?,
            )
            .map_err(rsse_core::PersistError::from)?;
        let index = RsseIndex::open_segment(segment_path)?;
        Ok(Self::assemble(
            index,
            basic_lists,
            files,
            cache_budget_bytes,
        ))
    }

    /// Warm restart: boots the server straight from a previously saved
    /// segment file — no `Outsource` message, no index rebuild, no
    /// materialization; the first query is answerable as soon as the
    /// directory is read. The basic-scheme index is not persisted (it
    /// exists for the paper's baseline protocols), so a segment-booted
    /// server serves the RSSE protocol only.
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on malformed or unreadable segment files.
    pub fn from_segment(
        segment_path: impl AsRef<std::path::Path>,
        files: Vec<EncryptedFile>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let index = RsseIndex::open_segment(segment_path)?;
        Ok(Self::assemble(index, Vec::new(), files, cache_budget_bytes))
    }

    /// Boots the server from the owner's `Outsource` message **onto the
    /// generational store**: the received index is persisted under `dir`
    /// as a base generation plus manifest and served from disk. Unlike
    /// the single-segment backend, later updates flush into cheap L0
    /// delta generations ([`CloudServer::flush_index`]) and fold back
    /// together with a *live* compaction that never stops serving
    /// ([`CloudServer::compact_index_live`]) — the boot path for
    /// update-heavy deployments.
    ///
    /// # Errors
    ///
    /// As [`CloudServer::from_outsource`], plus [`CloudError::Persist`]
    /// for failures writing or reopening the store.
    pub fn from_outsource_generational(
        msg: Message,
        dir: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let (rsse_lists, basic_lists, opse, files) = Self::split_outsource(msg)?;
        let staged = RsseIndex::from_parts(rsse_lists, opse);
        let index = staged.save_generational(dir)?;
        Ok(Self::assemble(
            index,
            basic_lists,
            files,
            cache_budget_bytes,
        ))
    }

    /// Warm restart from a generational store directory — the
    /// generational counterpart of [`CloudServer::from_segment`]: no
    /// `Outsource` message, no rebuild; the manifest and per-generation
    /// directories are read and the first query is served from disk.
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on a malformed manifest or generation
    /// file.
    pub fn from_generation_dir(
        dir: impl AsRef<std::path::Path>,
        files: Vec<EncryptedFile>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let index = RsseIndex::open_generational(dir)?;
        Ok(Self::assemble(index, Vec::new(), files, cache_budget_bytes))
    }

    fn split_outsource(msg: Message) -> Result<OutsourceParts, CloudError> {
        let Message::Outsource {
            rsse_lists,
            basic_lists,
            opse_domain,
            opse_range,
            files,
        } = msg
        else {
            return Err(CloudError::UnexpectedMessage {
                expected: "Outsource",
            });
        };
        let opse = OpseParams::new(opse_domain, opse_range)
            .map_err(|e| CloudError::Rsse(rsse_core::RsseError::Opse(e)))?;
        Ok((rsse_lists, basic_lists, opse, files))
    }

    fn assemble(
        index: RsseIndex,
        basic_lists: Vec<(Label, Vec<Vec<u8>>)>,
        files: Vec<EncryptedFile>,
        cache_budget_bytes: usize,
    ) -> Self {
        let mut store = FileStore::new();
        store.ingest(files);
        // Conservative filter seed: every label whose list is non-empty.
        // Padding entries count (the server cannot tell them apart), so
        // this is a superset of the true posting owners — always safe to
        // prune against, just weaker than the owner's exact install.
        let labels: BTreeSet<Label> = index.occupied_labels().into_iter().collect();
        CloudServer {
            rsse_index: RwLock::new(index),
            basic_index: BasicEncryptedIndex::from_parts(basic_lists),
            files: RwLock::new(store),
            counters: AuditCounters::new(),
            cache: RwLock::new(RankingCache::new(cache_budget_bytes)),
            conjunctive_cache: RwLock::new(ConjunctiveCache::new(cache_budget_bytes)),
            filter: RwLock::new(LabelFilter { labels, epoch: 0 }),
            filter_watch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the label filter wholesale — the sharded-bootstrap path,
    /// where the owner supplies the **exact** per-shard label set from
    /// [`DataOwner::outsource_sharded_with_filters`]. Bumps the filter
    /// epoch so routers holding the conservative seed re-fetch.
    pub fn install_label_filter(&self, labels: Vec<Label>) {
        let mut filter = self.filter.write();
        filter.labels = labels.into_iter().collect();
        filter.epoch += 1;
        self.filter_watch.store(filter.epoch, Ordering::Release);
    }

    /// The lock-free filter-epoch watch. An in-process router holds a
    /// clone and compares it against the epoch of its cached filter before
    /// every pruning decision; a mismatch means "re-fetch over the
    /// protocol before trusting the filter again".
    pub fn filter_watch(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.filter_watch)
    }

    /// Dispatches one request message to one response message.
    ///
    /// Safe to call concurrently from many threads: searches and fetches
    /// take read locks only, while [`Message::Update`] briefly takes the
    /// write side.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] for non-request messages.
    pub fn handle(&self, msg: Message) -> Result<Message, CloudError> {
        let (kind, outcome) = self.dispatch(msg);
        self.counters.record(kind);
        outcome
    }

    /// One ranked search against the RSSE index, served from the ranking
    /// cache when possible.
    ///
    /// * **Hit** — the label's full ranking is cached; any `top_k` is a
    ///   prefix copy ([`ranked_prefix`]), zero per-entry work.
    /// * **Miss** — ranks the *entire* list (`top_k = None`) outside the
    ///   cache lock, then offers the result back under the epoch snapshot
    ///   taken before the index read, so a fill racing an invalidation can
    ///   never park stale data (see `crate::cache`).
    /// * **Disabled** (budget 0) — direct heap top-k search, as before the
    ///   cache existed; neither hits nor misses are counted.
    fn ranked_search(
        &self,
        label: Label,
        list_key: [u8; 32],
        top_k: Option<usize>,
    ) -> Vec<RankedResult> {
        let trapdoor = RsseTrapdoor::from_parts(label, SecretKey::from_bytes(list_key));
        let fill_epoch = {
            // The hot path holds only the read lock: `get` takes `&self`,
            // so concurrent hits never serialize against each other.
            let cache = self.cache.read();
            if !cache.is_enabled() {
                drop(cache);
                return self.rsse_index.read().search(&trapdoor, top_k);
            }
            match cache.get(&label) {
                Some(ranking) => {
                    drop(cache);
                    self.counters.record_cache(true);
                    return ranked_prefix(&ranking, top_k);
                }
                None => cache.epoch(),
            }
        };
        self.counters.record_cache(false);
        // Rank the full list so every later top-k is a prefix of this fill.
        let full = Arc::new(self.rsse_index.read().search(&trapdoor, None));
        let result = ranked_prefix(&full, top_k);
        self.cache
            .write()
            .insert_if_current(label, full, fill_epoch);
        result
    }

    /// Ranked ids + the matching encrypted files for one query — the body
    /// shared by the single, sharded, and batched search arms.
    fn ranked_search_with_files(
        &self,
        label: Label,
        list_key: [u8; 32],
        top_k: Option<u32>,
    ) -> (Vec<(u64, u64)>, Vec<EncryptedFile>) {
        let results = self.ranked_search(label, list_key, top_k.map(|k| k as usize));
        let ids: Vec<FileId> = results.iter().map(|r| r.file).collect();
        (
            results
                .iter()
                .map(|r| (r.file.as_u64(), r.encrypted_score))
                .collect(),
            self.files.read().fetch_many(&ids),
        )
    }

    /// Serves every query of one batch frame together, so the index can
    /// fetch all touched posting lists in file-offset order
    /// ([`RsseIndex::search_batch`]; [`CloudServer::batch_read_stats`]
    /// counts the seeks saved) instead of seeking per query.
    ///
    /// Per-query replies stay byte-identical to serial
    /// [`Self::ranked_search_with_files`] calls: cache hits take the same
    /// prefix copy; misses are full-list rankings (`top_k = None`) that
    /// answer via [`ranked_prefix`] — which equals the direct heap top-k
    /// by the sort-then-truncate property — and are offered back under
    /// one epoch snapshot taken before the index read, exactly like the
    /// single-query fill. Cache hit/miss counters follow serial order: a
    /// label missing at batch start counts one miss, its duplicates count
    /// hits (they would have hit the just-filled entry).
    fn ranked_search_batch(
        &self,
        queries: Vec<(Label, [u8; 32], Option<u32>)>,
    ) -> Vec<BatchResult> {
        /// How one query of the batch resolves: a cached full ranking, or
        /// an index into the batched miss-fill rankings.
        enum Plan {
            Cached(Arc<Vec<RankedResult>>),
            Miss(usize),
        }
        let mut plans: Vec<Plan> = Vec::with_capacity(queries.len());
        let mut miss_trapdoors: Vec<RsseTrapdoor> = Vec::new();
        let mut miss_slot: HashMap<Label, usize> = HashMap::new();
        let cache_enabled;
        let fill_epoch;
        {
            let cache = self.cache.read();
            cache_enabled = cache.is_enabled();
            fill_epoch = cache.epoch();
            for (label, key, _) in &queries {
                if cache_enabled {
                    if let Some(ranking) = cache.get(label) {
                        plans.push(Plan::Cached(ranking));
                        continue;
                    }
                }
                let slot = *miss_slot.entry(*label).or_insert_with(|| {
                    miss_trapdoors.push(RsseTrapdoor::from_parts(
                        *label,
                        SecretKey::from_bytes(*key),
                    ));
                    miss_trapdoors.len() - 1
                });
                plans.push(Plan::Miss(slot));
            }
        }
        let full: Vec<Arc<Vec<RankedResult>>> = self
            .rsse_index
            .read()
            .search_batch(&miss_trapdoors, None)
            .into_iter()
            .map(Arc::new)
            .collect();
        if cache_enabled && !full.is_empty() {
            let mut cache = self.cache.write();
            for (trapdoor, ranking) in miss_trapdoors.iter().zip(&full) {
                cache.insert_if_current(*trapdoor.label(), Arc::clone(ranking), fill_epoch);
            }
        }
        let mut filled: HashSet<Label> = HashSet::new();
        queries
            .iter()
            .zip(&plans)
            .map(|((label, _, top_k), plan)| {
                let ranking: &[RankedResult] = match plan {
                    Plan::Cached(ranking) => {
                        self.counters.record_cache(true);
                        ranking
                    }
                    Plan::Miss(slot) => {
                        if cache_enabled {
                            // First sight of the label is the miss; its
                            // duplicates would have hit the fresh fill.
                            self.counters.record_cache(!filled.insert(*label));
                        }
                        &full[*slot]
                    }
                };
                let results = ranked_prefix(ranking, top_k.map(|k| k as usize));
                let ids: Vec<FileId> = results.iter().map(|r| r.file).collect();
                (
                    results
                        .iter()
                        .map(|r| (r.file.as_u64(), r.encrypted_score))
                        .collect(),
                    self.files.read().fetch_many(&ids),
                )
            })
            .collect()
    }

    /// Counters of the index's batched sorted-read path (zero on the
    /// in-memory backend).
    pub fn batch_read_stats(&self) -> BatchReadStats {
        self.rsse_index.read().batch_read_stats()
    }

    /// Counters of the index's conjunctive pushdown path (zero until the
    /// first conjunctive query).
    pub fn conjunctive_stats(&self) -> rsse_core::ConjunctiveStats {
        self.rsse_index.read().conjunctive_stats()
    }

    /// One conjunctive search against the RSSE index, served from the
    /// conjunctive cache when possible.
    ///
    /// The cache key is the **sorted** label set, so every keyword
    /// ordering of one query shares a single entry; cached values keep
    /// their per-keyword scores in canonical (label-sorted) part order and
    /// the hit path permutes them back to the query's keyword order. Any
    /// `top_k` is a prefix of the cached full ranking — results are
    /// totally ordered by (score sum, file id), which is independent of
    /// keyword order. Same epoch discipline as [`Self::ranked_search`]:
    /// the intersection runs outside the cache lock and the fill is
    /// rejected if any invalidation happened in between.
    fn conjunctive_ranked_search(
        &self,
        trapdoors: Vec<(Label, [u8; 32])>,
        top_k: Option<usize>,
    ) -> Vec<ConjunctiveResult> {
        let labels: Vec<Label> = trapdoors.iter().map(|(label, _)| *label).collect();
        let parts: Vec<RsseTrapdoor> = trapdoors
            .into_iter()
            .map(|(label, key)| RsseTrapdoor::from_parts(label, SecretKey::from_bytes(key)))
            .collect();
        let multi = MultiTrapdoor::from_parts(parts);
        if labels.is_empty() {
            return Vec::new();
        }
        let order = canonical_label_order(&labels);
        let key: Vec<Label> = order.iter().map(|&i| labels[i]).collect();
        let fill_epoch = {
            let cache = self.conjunctive_cache.read();
            if !cache.is_enabled() {
                drop(cache);
                return self.rsse_index.read().search_conjunctive(&multi, top_k);
            }
            match cache.get(&key) {
                Some(canonical) => {
                    drop(cache);
                    self.counters.record_cache(true);
                    // Canonical slot k holds query part order[k]; invert so
                    // query part i reads from canonical slot inv[i].
                    let mut inv = vec![0usize; order.len()];
                    for (k, &i) in order.iter().enumerate() {
                        inv[i] = k;
                    }
                    let take = top_k.unwrap_or(canonical.len()).min(canonical.len());
                    return canonical[..take]
                        .iter()
                        .map(|r| ConjunctiveResult {
                            file: r.file,
                            mapped_scores: inv.iter().map(|&k| r.mapped_scores[k]).collect(),
                            score_sum: r.score_sum,
                        })
                        .collect();
                }
                None => cache.epoch(),
            }
        };
        self.counters.record_cache(false);
        // Intersect the full ranking so every later top-k is a prefix of
        // this fill.
        let full = self.rsse_index.read().search_conjunctive(&multi, None);
        let canonical: Vec<ConjunctiveResult> = full
            .iter()
            .map(|r| ConjunctiveResult {
                file: r.file,
                mapped_scores: order.iter().map(|&i| r.mapped_scores[i]).collect(),
                score_sum: r.score_sum,
            })
            .collect();
        self.conjunctive_cache
            .write()
            .insert_if_current(key, Arc::new(canonical), fill_epoch);
        let mut result = full;
        if let Some(k) = top_k {
            result.truncate(k);
        }
        result
    }

    /// Ranked `(id, per-keyword scores)` pairs + the matching encrypted
    /// files for one conjunctive query — the body shared by the single and
    /// sharded conjunctive arms.
    fn conjunctive_search_with_files(
        &self,
        trapdoors: Vec<(Label, [u8; 32])>,
        top_k: Option<u32>,
    ) -> (Vec<(u64, Vec<u64>)>, Vec<EncryptedFile>) {
        let results = self.conjunctive_ranked_search(trapdoors, top_k.map(|k| k as usize));
        let ids: Vec<FileId> = results.iter().map(|r| r.file).collect();
        let files = self.files.read().fetch_many(&ids);
        (
            results
                .into_iter()
                .map(|r| (r.file.as_u64(), r.mapped_scores))
                .collect(),
            files,
        )
    }

    fn dispatch(&self, msg: Message) -> (RequestKind, Result<Message, CloudError>) {
        match msg {
            Message::SearchRequest {
                label,
                list_key,
                top_k,
                mode,
            } => {
                let key = SecretKey::from_bytes(list_key);
                let response = match mode {
                    SearchMode::Rsse => {
                        let (ranking, files) =
                            self.ranked_search_with_files(label, list_key, top_k);
                        Message::RsseResponse { ranking, files }
                    }
                    SearchMode::BasicFull => {
                        let entries = self.basic_index.search(&label).unwrap_or(&[]);
                        let opened = open_entries(&key, entries);
                        let ids: Vec<FileId> = opened.iter().map(|(f, _)| *f).collect();
                        Message::BasicFullResponse {
                            scores: opened.into_iter().map(|(f, ct)| (f.as_u64(), ct)).collect(),
                            files: self.files.read().fetch_many(&ids),
                        }
                    }
                    SearchMode::BasicEntries => {
                        let entries = self.basic_index.search(&label).unwrap_or(&[]);
                        let opened = open_entries(&key, entries);
                        Message::BasicEntriesResponse {
                            scores: opened.into_iter().map(|(f, ct)| (f.as_u64(), ct)).collect(),
                        }
                    }
                };
                (RequestKind::Search, Ok(response))
            }
            Message::FetchFiles { ids } => {
                let ids: Vec<FileId> = ids.into_iter().map(FileId::new).collect();
                (
                    RequestKind::Fetch,
                    Ok(Message::FilesResponse {
                        files: self.files.read().fetch_many(&ids),
                    }),
                )
            }
            Message::ConjunctiveRequest { trapdoors, top_k } => {
                let (ranking, files) = self.conjunctive_search_with_files(trapdoors, top_k);
                (
                    RequestKind::Conjunctive,
                    Ok(Message::ConjunctiveResponse { ranking, files }),
                )
            }
            Message::ConjunctiveShardQuery {
                trapdoors,
                top_k,
                shard_id,
            } => {
                // One conjunctive scatter leg: the disjoint file partition
                // makes this shard's local intersection exactly the global
                // intersection restricted to its files, so intersecting
                // locally and echoing the shard identity suffices — the
                // router k-way merges the per-shard rankings. Served
                // through the conjunctive cache like the direct arm, so
                // sharded conjunctions stay byte-identical with caching on.
                let (ranking, files) = self.conjunctive_search_with_files(trapdoors, top_k);
                (
                    RequestKind::ConjunctiveShard,
                    Ok(Message::ConjunctiveShardReply {
                        shard_id,
                        ranking,
                        files,
                    }),
                )
            }
            Message::ShardQuery {
                label,
                list_key,
                top_k,
                shard_id,
            } => {
                // One scatter leg: rank this shard's partition of the list
                // locally and echo the shard identity for correlation. The
                // local top-k suffices globally because files partition
                // disjointly across shards. Routed through the ranking
                // cache like every other RSSE search, so sharded rankings
                // stay byte-identical with caching on (the cache stores
                // this shard's own partition ranking).
                let (ranking, files) = self.ranked_search_with_files(label, list_key, top_k);
                (
                    RequestKind::ShardQuery,
                    Ok(Message::ShardReply {
                        shard_id,
                        ranking,
                        files,
                    }),
                )
            }
            Message::BatchRequest { queries, shard_id } => {
                let results = self.ranked_search_batch(queries);
                (
                    RequestKind::Batch,
                    Ok(Message::BatchReply { shard_id, results }),
                )
            }
            Message::Update { rsse_lists, files } => {
                let lists_touched = rsse_lists.len() as u64;
                let files_added = files.len() as u64;
                self.apply_update(rsse_core::IndexUpdate::from_parts(rsse_lists), files);
                (
                    RequestKind::Update,
                    Ok(Message::UpdateAck {
                        lists_touched,
                        files_added,
                    }),
                )
            }
            Message::FilterRequest {
                shard_id,
                known_epoch,
            } => {
                let filter = self.filter.read();
                // An up-to-date requester gets the epoch echo only; anyone
                // else gets the full sorted label set to prune with.
                let labels = (known_epoch != Some(filter.epoch))
                    .then(|| filter.labels.iter().copied().collect());
                (
                    RequestKind::Filter,
                    Ok(Message::FilterReply {
                        shard_id,
                        epoch: filter.epoch,
                        labels,
                    }),
                )
            }
            _ => (
                RequestKind::Rejected,
                Err(CloudError::UnexpectedMessage {
                    expected:
                        "SearchRequest, FetchFiles, ConjunctiveRequest, ConjunctiveShardQuery, \
                         ShardQuery, BatchRequest, FilterRequest or Update",
                }),
            ),
        }
    }

    /// The curious server's raw view of the RSSE index (for the adversary
    /// experiments). Holds the read lock for the guard's lifetime.
    pub fn rsse_index(&self) -> RwLockReadGuard<'_, RsseIndex> {
        self.rsse_index.read()
    }

    /// Applies an owner-issued score-dynamics update.
    ///
    /// Takes the write locks briefly; concurrent searches observe either
    /// the pre- or post-update index, never a torn state. Ranking-cache
    /// entries for the touched labels are invalidated *after* the index
    /// write completes, so a concurrent miss-fill that snapshotted its
    /// epoch before this update either read the post-update index (valid
    /// fill) or is rejected by the epoch bump (stale fill) — it can never
    /// park a pre-update ranking.
    pub fn apply_update(&self, update: rsse_core::IndexUpdate, new_files: Vec<EncryptedFile>) {
        let touched: Vec<Label> = update.labels().copied().collect();
        update.apply_to(&mut self.rsse_index.write());
        self.files.write().ingest(new_files);
        {
            let mut cache = self.cache.write();
            for label in &touched {
                cache.invalidate(label);
            }
        }
        // A conjunction may span any label set including a touched one;
        // the cache stores no reverse map, so flush it wholesale (the
        // epoch bump also rejects in-flight fills that read pre-update).
        self.conjunctive_cache.write().invalidate_all();
        // Grow the label filter by the touched labels and bump its epoch —
        // *after* the index write, so a router that observes the new epoch
        // (and re-fetches) is guaranteed a filter covering this update.
        // The epoch bumps even when no label is new: routers also key
        // their merged-result caches off this watch, and those must see
        // every update.
        let mut filter = self.filter.write();
        filter.labels.extend(touched);
        filter.epoch += 1;
        self.filter_watch.store(filter.epoch, Ordering::Release);
    }

    /// Compacts a segment-backed index: folds the delta overlay into a
    /// freshly written segment file (atomic rename) and reopens it.
    /// Returns `true` when a rewrite happened — `false` for the in-memory
    /// backend or an empty overlay. Holds the index write lock for the
    /// rewrite, and flushes the ranking cache afterwards: compaction
    /// preserves every ranking, but the conservative flush keeps the
    /// cache's epoch story simple (a fill racing the compaction can never
    /// straddle two file identities).
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on I/O or re-validation failures; the old
    /// segment remains intact and serving.
    pub fn compact_index(&self) -> Result<bool, CloudError> {
        let compacted = self.rsse_index.write().compact()?;
        if compacted {
            self.note_index_rewrite();
        }
        Ok(compacted)
    }

    /// Flushes pending overlay updates to durable storage. On a
    /// generational index this seals the overlay into a new L0 delta
    /// generation under a brief write lock — cost proportional to the
    /// *overlay*, never the index; on a single-segment index it is a
    /// full stop-the-world compaction. Either way the logical content is
    /// unchanged, so cached rankings stay valid and are kept.
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on I/O failures; pending updates stay in
    /// memory and keep serving.
    pub fn flush_index(&self) -> Result<bool, CloudError> {
        Ok(self.rsse_index.write().flush_updates()?)
    }

    /// Compacts a generational index **live**, on the calling thread:
    /// flushes the overlay (brief write lock), then merges the whole
    /// generation stack while searches keep serving from the old stack —
    /// no index lock is held during the merge; the only serving-path
    /// pause is the atomic pointer flip, reported as
    /// [`rsse_core::CompactionStats::install_pause`]. Returns the merge
    /// statistics, or `None` when there was nothing to merge (fewer than
    /// two generations, or a non-generational backend — those compact
    /// stop-the-world via [`CloudServer::compact_index`]).
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on I/O failures, and in particular
    /// [`rsse_core::PersistError::CompactInProgress`] — immediately,
    /// never queued — when a live compaction is already running.
    pub fn compact_index_live(&self) -> Result<Option<CompactionStats>, CloudError> {
        let flushed = self.rsse_index.write().flush_updates()?;
        let job = self.rsse_index.read().begin_live_compact()?;
        let stats = match job {
            Some(job) => Some(job.run()?),
            None => None,
        };
        if flushed || stats.is_some() {
            self.note_index_rewrite();
        }
        Ok(stats)
    }

    /// [`CloudServer::compact_index_live`] on a background thread: the
    /// flush and the merge hand-off happen now (so a `None` return means
    /// nothing needed merging); the merge itself, the cache flush, and
    /// the filter-epoch bump run on the returned thread. Joining yields
    /// the merge statistics.
    ///
    /// # Errors
    ///
    /// As [`CloudServer::compact_index_live`]; errors inside the merge
    /// surface through the join handle.
    pub fn compact_index_background(
        self: &Arc<Self>,
    ) -> Result<Option<JoinHandle<Result<CompactionStats, CloudError>>>, CloudError> {
        let flushed = self.rsse_index.write().flush_updates()?;
        let job = match self.rsse_index.read().begin_live_compact()? {
            Some(job) => job,
            None => {
                if flushed {
                    self.note_index_rewrite();
                }
                return Ok(None);
            }
        };
        let server = Arc::clone(self);
        Ok(Some(std::thread::spawn(move || {
            let stats = job.run()?;
            server.note_index_rewrite();
            Ok(stats)
        })))
    }

    /// Shape of the generational store backing this server, if that is
    /// the backend in use.
    pub fn generation_stats(&self) -> Option<GenerationStats> {
        self.rsse_index.read().generation_stats()
    }

    /// After any durable index rewrite (segment compaction, generational
    /// flush + merge): flush the ranking cache and bump the filter epoch.
    /// Rewrites preserve every ranking and every label owner, but the
    /// conservative flush keeps the epoch story simple — a fill or a
    /// router decision racing the rewrite re-validates instead of
    /// straddling two file identities.
    fn note_index_rewrite(&self) {
        self.cache.write().invalidate_all();
        self.conjunctive_cache.write().invalidate_all();
        let mut filter = self.filter.write();
        filter.epoch += 1;
        self.filter_watch.store(filter.epoch, Ordering::Release);
    }

    /// Number of stored files.
    pub fn num_files(&self) -> usize {
        self.files.read().len()
    }

    /// Records a frame that failed to decode; counted with the rejected
    /// requests, since the server refused to handle it.
    pub fn note_bad_frame(&self) {
        self.counters.record(RequestKind::Rejected);
    }

    /// Records a contained serving panic (the client was answered with an
    /// `Internal` error frame).
    pub fn note_panic(&self) {
        self.counters.record(RequestKind::Panicked);
    }

    /// A copy of the aggregate serving counters, cache outcomes included.
    pub fn serving_report(&self) -> ServingReport {
        self.counters.report()
    }

    /// Point-in-time ranking-cache statistics (occupancy-level counters:
    /// evictions, invalidations, stale fills — hit/miss totals also appear
    /// in [`CloudServer::serving_report`]).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.read().stats()
    }

    /// Point-in-time conjunctive-cache statistics, the multi-keyword
    /// counterpart of [`CloudServer::cache_stats`].
    pub fn conjunctive_cache_stats(&self) -> CacheStats {
        self.conjunctive_cache.read().stats()
    }
}

/// An authorized data user.
#[derive(Debug)]
pub struct User {
    rsse: Rsse,
    basic: BasicScheme,
    files: FileCrypter,
}

impl User {
    /// Derives the user's keys from the distributed credential.
    pub fn new(master_seed: &[u8], params: RsseParams) -> Self {
        User {
            rsse: Rsse::new(master_seed, params),
            basic: BasicScheme::new(master_seed),
            files: FileCrypter::new(master_seed),
        }
    }

    /// Builds a search request for `keyword` under the chosen protocol.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (e.g. stop-word-only queries).
    pub fn search_request(
        &self,
        keyword: &str,
        top_k: Option<u32>,
        mode: SearchMode,
    ) -> Result<Message, CloudError> {
        let (label, key) = match mode {
            SearchMode::Rsse => {
                let t = self.rsse.trapdoor(keyword)?;
                (*t.label(), *t.list_key().as_bytes())
            }
            SearchMode::BasicFull | SearchMode::BasicEntries => {
                let t = self.basic.trapdoor(keyword)?;
                (*t.label(), *t.list_key().as_bytes())
            }
        };
        Ok(Message::SearchRequest {
            label,
            list_key: key,
            top_k,
            mode,
        })
    }

    /// Decrypts the files of an RSSE response (already ranked by the
    /// server).
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] on any other message type.
    pub fn read_rsse_response(&self, msg: Message) -> Result<Vec<Document>, CloudError> {
        let Message::RsseResponse { files, .. } = msg else {
            return Err(CloudError::UnexpectedMessage {
                expected: "RsseResponse",
            });
        };
        files
            .iter()
            .map(|f| self.files.decrypt(f).map_err(CloudError::from))
            .collect()
    }

    /// Ranks a basic-scheme response client-side (decrypting the scores
    /// with `z`) and returns `(ranked ids, decrypted files by id)`.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] on other message types.
    pub fn rank_basic_scores(&self, scores: &[(u64, Vec<u8>)]) -> Result<Vec<FileId>, CloudError> {
        use rsse_crypto::SemanticCipher;
        let cipher = SemanticCipher::new(self.basic.keys().score_key());
        let mut scored: Vec<(FileId, f64)> = scores
            .iter()
            .filter_map(|(id, ct)| {
                let plain = cipher.decrypt(ct).ok()?;
                let bytes: [u8; 8] = plain.try_into().ok()?;
                let s = f64::from_be_bytes(bytes);
                s.is_finite().then_some((FileId::new(*id), s))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(scored.into_iter().map(|(f, _)| f).collect())
    }

    /// Decrypts fetched files.
    ///
    /// # Errors
    ///
    /// Propagates decryption failures.
    pub fn decrypt_files(&self, files: &[EncryptedFile]) -> Result<Vec<Document>, CloudError> {
        files
            .iter()
            .map(|f| self.files.decrypt(f).map_err(CloudError::from))
            .collect()
    }

    /// Builds the scatter legs of a sharded ranked search: one
    /// [`Message::ShardQuery`] per shard, all carrying the same trapdoor,
    /// each addressed to its shard id.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (e.g. stop-word-only queries).
    pub fn shard_query(
        &self,
        keyword: &str,
        top_k: Option<u32>,
        num_shards: u32,
    ) -> Result<Vec<Message>, CloudError> {
        let t = self.rsse.trapdoor(keyword)?;
        Ok((0..num_shards)
            .map(|shard_id| Message::ShardQuery {
                label: *t.label(),
                list_key: *t.list_key().as_bytes(),
                top_k,
                shard_id,
            })
            .collect())
    }

    /// Builds one [`Message::BatchRequest`] carrying an RSSE search for
    /// every keyword, all sharing one channel round trip.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (e.g. stop-word-only queries).
    pub fn batch_search_request(
        &self,
        keywords: &[&str],
        top_k: Option<u32>,
    ) -> Result<Message, CloudError> {
        let queries = keywords
            .iter()
            .map(|kw| {
                let t = self.rsse.trapdoor(kw)?;
                Ok((*t.label(), *t.list_key().as_bytes(), top_k))
            })
            .collect::<Result<Vec<_>, CloudError>>()?;
        Ok(Message::BatchRequest {
            queries,
            shard_id: None,
        })
    }

    /// Builds the batched scatter legs of a sharded multi-keyword search:
    /// one [`Message::BatchRequest`] per shard, each carrying *all* the
    /// keywords' trapdoors and addressed to its shard id — `num_shards`
    /// round trips total instead of `keywords × num_shards`.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (e.g. stop-word-only queries).
    pub fn batch_shard_query(
        &self,
        keywords: &[&str],
        top_k: Option<u32>,
        num_shards: u32,
    ) -> Result<Vec<Message>, CloudError> {
        let queries = keywords
            .iter()
            .map(|kw| {
                let t = self.rsse.trapdoor(kw)?;
                Ok((*t.label(), *t.list_key().as_bytes(), top_k))
            })
            .collect::<Result<Vec<_>, CloudError>>()?;
        Ok((0..num_shards)
            .map(|shard_id| Message::BatchRequest {
                queries: queries.clone(),
                shard_id: Some(shard_id),
            })
            .collect())
    }

    /// Builds a conjunctive (multi-keyword) search request — the §VIII
    /// extension over the wire.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (all-stop-word queries).
    pub fn conjunctive_request(
        &self,
        query: &str,
        top_k: Option<u32>,
    ) -> Result<Message, CloudError> {
        let multi = self.rsse.multi_trapdoor(query)?;
        Ok(Message::ConjunctiveRequest {
            trapdoors: multi
                .parts()
                .iter()
                .map(|t| (*t.label(), *t.list_key().as_bytes()))
                .collect(),
            top_k,
        })
    }

    /// Builds the scatter legs of a sharded conjunctive search: one
    /// [`Message::ConjunctiveShardQuery`] per shard, all carrying the same
    /// trapdoor set, each addressed to its shard id. Files are partitioned
    /// across shards, so each shard intersects locally and the router
    /// merges by `score_sum`.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures (all-stop-word queries).
    pub fn conjunctive_shard_query(
        &self,
        query: &str,
        top_k: Option<u32>,
        num_shards: u32,
    ) -> Result<Vec<Message>, CloudError> {
        let multi = self.rsse.multi_trapdoor(query)?;
        let trapdoors: Vec<(Label, [u8; 32])> = multi
            .parts()
            .iter()
            .map(|t| (*t.label(), *t.list_key().as_bytes()))
            .collect();
        Ok((0..num_shards)
            .map(|shard_id| Message::ConjunctiveShardQuery {
                trapdoors: trapdoors.clone(),
                top_k,
                shard_id,
            })
            .collect())
    }
}

/// A complete wired deployment: owner, shared server, one authorized user,
/// with all traffic metered.
pub struct Deployment {
    server: Arc<CloudServer>,
    user: User,
    owner: DataOwner,
    /// Traffic of the Setup (outsourcing) phase.
    pub setup_traffic: TrafficReport,
}

impl core::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Deployment {{ files: {} }}", self.server.num_files())
    }
}

impl Deployment {
    /// Bootstraps the whole system over `docs`.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
    ) -> Result<Self, CloudError> {
        Self::bootstrap_with_cache(master_seed, params, docs, CloudServer::DEFAULT_CACHE_BUDGET)
    }

    /// [`Deployment::bootstrap`] with an explicit ranking-cache byte
    /// budget; `0` disables the cache (used by the coherence tests and the
    /// cache-off bench legs).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap_with_cache(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let mut channel = MeteredChannel::new();
        let outsource = owner.outsource(docs)?;
        // Encode/decode across the metered wire, exactly as deployed.
        let frame = outsource.encode();
        channel.send_up(frame.len());
        let server =
            CloudServer::from_outsource_with_cache(Message::decode(frame)?, cache_budget_bytes)?;
        let user = owner.authorize_user();
        Ok(Deployment {
            server: Arc::new(server),
            user,
            owner,
            setup_traffic: channel.report(),
        })
    }

    /// [`Deployment::bootstrap`] onto the on-disk segment backend: the
    /// built index is persisted to `segment_path` and served from disk
    /// (see [`CloudServer::from_outsource_segment`]).
    ///
    /// # Errors
    ///
    /// Propagates index-construction and segment I/O failures.
    pub fn bootstrap_segmented(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        segment_path: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let mut channel = MeteredChannel::new();
        let outsource = owner.outsource(docs)?;
        let frame = outsource.encode();
        channel.send_up(frame.len());
        let server = CloudServer::from_outsource_segment(
            Message::decode(frame)?,
            segment_path,
            cache_budget_bytes,
        )?;
        let user = owner.authorize_user();
        Ok(Deployment {
            server: Arc::new(server),
            user,
            owner,
            setup_traffic: channel.report(),
        })
    }

    /// Warm restart from a previously saved segment: derives the owner's
    /// and user's keys from the seed, re-encrypts the file collection
    /// (deterministic under the owner's key), and boots the server with
    /// [`CloudServer::from_segment`] — the encrypted index is **not**
    /// rebuilt; the first query is served straight off the segment file.
    /// `setup_traffic` is zero: nothing crossed the outsourcing wire.
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on malformed or unreadable segments.
    pub fn bootstrap_from_segment(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        segment_path: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let server =
            CloudServer::from_segment(segment_path, owner.encrypt_files(docs), cache_budget_bytes)?;
        let user = owner.authorize_user();
        Ok(Deployment {
            server: Arc::new(server),
            user,
            owner,
            setup_traffic: TrafficReport::default(),
        })
    }

    /// [`Deployment::bootstrap`] onto the generational store: the built
    /// index is persisted under `dir` (base generation + manifest) and
    /// served from disk, with updates flushing into L0 deltas and live
    /// compaction available (see
    /// [`CloudServer::from_outsource_generational`]).
    ///
    /// # Errors
    ///
    /// Propagates index-construction and store I/O failures.
    pub fn bootstrap_generational(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        dir: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let mut channel = MeteredChannel::new();
        let outsource = owner.outsource(docs)?;
        let frame = outsource.encode();
        channel.send_up(frame.len());
        let server = CloudServer::from_outsource_generational(
            Message::decode(frame)?,
            dir,
            cache_budget_bytes,
        )?;
        let user = owner.authorize_user();
        Ok(Deployment {
            server: Arc::new(server),
            user,
            owner,
            setup_traffic: channel.report(),
        })
    }

    /// Warm restart from a generational store directory — the
    /// generational counterpart of [`Deployment::bootstrap_from_segment`]:
    /// keys are re-derived from the seed, files re-encrypted, and the
    /// server boots straight off the manifest with no index rebuild.
    /// `setup_traffic` is zero: nothing crossed the outsourcing wire.
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on a malformed manifest or generation
    /// file.
    pub fn bootstrap_from_generations(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        dir: impl AsRef<std::path::Path>,
        cache_budget_bytes: usize,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let server =
            CloudServer::from_generation_dir(dir, owner.encrypt_files(docs), cache_budget_bytes)?;
        let user = owner.authorize_user();
        Ok(Deployment {
            server: Arc::new(server),
            user,
            owner,
            setup_traffic: TrafficReport::default(),
        })
    }

    /// Persists the server's current index to `path` as an `RSSEIDX2`
    /// segment (holding the index read lock for the write), so a later
    /// process can [`Deployment::bootstrap_from_segment`] without
    /// rebuilding. Pending segment-overlay entries are folded into the
    /// written file (`save` exports the merged view).
    ///
    /// # Errors
    ///
    /// [`CloudError::Persist`] on I/O failures.
    pub fn save_segment(&self, path: impl AsRef<std::path::Path>) -> Result<(), CloudError> {
        let file = std::fs::File::create(path.as_ref()).map_err(rsse_core::PersistError::from)?;
        self.server
            .rsse_index
            .read()
            .save(file)
            .map_err(rsse_core::PersistError::from)?;
        Ok(())
    }

    /// The authorized user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// The data owner.
    pub fn owner(&self) -> &DataOwner {
        &self.owner
    }

    /// Shared handle to the server, for multi-user experiments. All
    /// locking is interior to [`CloudServer`].
    pub fn server(&self) -> Arc<CloudServer> {
        Arc::clone(&self.server)
    }

    /// Puts this deployment's server behind a real loopback TCP listener
    /// (see [`crate::tcp::TcpServer`]): same shared [`CloudServer`], same
    /// frames, but reached over sockets by any number of pipelined
    /// connections instead of the in-process channel.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] binding the listener.
    pub fn serve_tcp(
        &self,
        options: crate::tcp::TcpServerOptions,
    ) -> std::io::Result<crate::tcp::TcpServer> {
        crate::tcp::TcpServer::spawn(self.server(), options)
    }

    /// One metered request/response round over the wire: encodes the
    /// request, serves it through the same fault-tolerant path the worker
    /// pool uses ([`crate::server_loop::serve_frame`]), and decodes the
    /// response frame. Every request is answered with *some* frame, so
    /// failures are priced like successes: an error frame's bytes land in
    /// [`TrafficReport::bytes_down`] and bump
    /// [`TrafficReport::error_frames`].
    ///
    /// # Errors
    ///
    /// [`CloudError::Server`] when the server answered with an error frame
    /// (carrying its wire [`crate::ErrorKind`] and detail), or a codec
    /// error if a frame cannot be decoded.
    pub fn round_trip(
        &self,
        channel: &mut MeteredChannel,
        request: Message,
    ) -> Result<Message, CloudError> {
        if let Message::BatchRequest { queries, .. } = &request {
            channel.note_batch(queries.len());
        }
        if matches!(&request, Message::ConjunctiveRequest { .. }) {
            channel.note_conjunctive();
        }
        let up = request.encode();
        channel.send_up(up.len());
        let down = crate::server_loop::serve_frame(&self.server, &up, None);
        let response = Message::decode(bytes::BytesMut::from(&down[..]))?;
        match response {
            Message::Error { kind, detail } => {
                channel.send_down_error(down.len());
                Err(CloudError::Server { kind, detail })
            }
            msg => {
                channel.send_down(down.len());
                Ok(msg)
            }
        }
    }

    /// Protocol 1 — RSSE one-round top-k retrieval.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    pub fn rsse_search(
        &self,
        keyword: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<Document>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self.user.search_request(keyword, top_k, SearchMode::Rsse)?;
        let response = self.round_trip(&mut channel, request)?;
        Ok((self.user.read_rsse_response(response)?, channel.report()))
    }

    /// Protocol 1, batched — several RSSE searches amortized over one
    /// round trip. Returns one ranked document list per keyword, in
    /// request order.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    pub fn rsse_search_batch(
        &self,
        keywords: &[&str],
        top_k: Option<u32>,
    ) -> Result<(Vec<Vec<Document>>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self.user.batch_search_request(keywords, top_k)?;
        let response = self.round_trip(&mut channel, request)?;
        let Message::BatchReply { results, .. } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "BatchReply",
            });
        };
        let docs = results
            .iter()
            .map(|(_, files)| self.user.decrypt_files(files))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((docs, channel.report()))
    }

    /// Extension — conjunctive multi-keyword ranked search (one round).
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    pub fn conjunctive_search(
        &self,
        query: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<Document>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self.user.conjunctive_request(query, top_k)?;
        let response = self.round_trip(&mut channel, request)?;
        let Message::ConjunctiveResponse { files, .. } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "ConjunctiveResponse",
            });
        };
        Ok((self.user.decrypt_files(&files)?, channel.report()))
    }

    /// Extension — conjunctive search returning the server's wire ranking
    /// `(file id, per-keyword mapped scores)` alongside the decrypted
    /// documents, for equivalence tests and client-side exact re-ranking.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    #[allow(clippy::type_complexity)] // (wire ranking, documents, traffic) triple
    pub fn conjunctive_search_ranked(
        &self,
        query: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<(u64, Vec<u64>)>, Vec<Document>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self.user.conjunctive_request(query, top_k)?;
        let response = self.round_trip(&mut channel, request)?;
        let Message::ConjunctiveResponse { ranking, files } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "ConjunctiveResponse",
            });
        };
        Ok((ranking, self.user.decrypt_files(&files)?, channel.report()))
    }

    /// Protocol 2 — basic scheme, naive: all matching files in one round,
    /// ranked client-side.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    pub fn basic_search_full(
        &self,
        keyword: &str,
    ) -> Result<(Vec<Document>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self
            .user
            .search_request(keyword, None, SearchMode::BasicFull)?;
        let response = self.round_trip(&mut channel, request)?;
        let Message::BasicFullResponse { scores, files } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "BasicFullResponse",
            });
        };
        let order = self.user.rank_basic_scores(&scores)?;
        let mut by_id: std::collections::HashMap<FileId, EncryptedFile> =
            files.into_iter().map(|f| (f.id(), f)).collect();
        let ranked_files: Vec<EncryptedFile> =
            order.iter().filter_map(|id| by_id.remove(id)).collect();
        Ok((self.user.decrypt_files(&ranked_files)?, channel.report()))
    }

    /// Protocol 3 — basic scheme, two-round top-k.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor/protocol failures.
    pub fn basic_search_top_k(
        &self,
        keyword: &str,
        k: usize,
    ) -> Result<(Vec<Document>, TrafficReport), CloudError> {
        let mut channel = MeteredChannel::new();
        let request = self
            .user
            .search_request(keyword, None, SearchMode::BasicEntries)?;
        let response = self.round_trip(&mut channel, request)?;
        let Message::BasicEntriesResponse { scores } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "BasicEntriesResponse",
            });
        };
        let mut order = self.user.rank_basic_scores(&scores)?;
        order.truncate(k);
        let fetch = Message::FetchFiles {
            ids: order.iter().map(|f| f.as_u64()).collect(),
        };
        let response = self.round_trip(&mut channel, fetch)?;
        let Message::FilesResponse { files } = response else {
            return Err(CloudError::UnexpectedMessage {
                expected: "FilesResponse",
            });
        };
        Ok((self.user.decrypt_files(&files)?, channel.report()))
    }
}
