//! The transport seam: one byte-level contract over two wires.
//!
//! [`Connection`] is the client's view of a pipelined request/reply
//! stream: `send` puts an encoded message on the wire under a fresh
//! per-connection sequence id, `recv_any` hands back the next reply that
//! completed — not necessarily the oldest, since a pool serves frames
//! concurrently. Two implementations exist:
//!
//! * [`ChannelTransport`] — the deterministic in-process harness: frames
//!   travel over the bounded crossbeam queue of a
//!   [`ServerClient`](crate::server_loop::ServerClient) pool, exactly as
//!   every pre-socket test drove it.
//! * [`crate::tcp::TcpTransport`] — real length-delimited frames over a
//!   loopback/remote TCP socket, served by the non-blocking event loop
//!   in `crate::tcp`.
//!
//! Both put the *same bytes* on their wire: message bodies come from the
//! one canonical [`Message::encode`](crate::codec::Message::encode), and
//! the envelope from the one [`frame_message`]. The equivalence suite
//! (`tests/transport_equivalence.rs`) replays a shared request log
//! through both and requires byte-identical reply frames, rankings, and
//! [`TrafficReport`]s.
//!
//! # Metering
//!
//! Every connection meters **framed** lengths — header plus body, each
//! frame exactly once, at this layer — into the transport's shared
//! [`FrameMeter`]. The simulated channel has no real header bytes and
//! TCP has no simulated ones, so counting anywhere else would make the
//! two reports drift; counting here makes them equal by construction.

use crate::codec::{Message, ERROR_FRAME_TAG, FRAME_HEADER_LEN};
use crate::error::CloudError;
use crate::network::TrafficReport;
use crate::server_loop::{PendingReply, ServerClient};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared framed-byte accounting for one transport: every connection
/// created by the transport feeds the same meter, and [`Self::report`]
/// folds the counters into the protocol-level [`TrafficReport`] shape.
#[derive(Debug, Default)]
pub struct FrameMeter {
    bytes_up: AtomicUsize,
    bytes_down: AtomicUsize,
    round_trips: AtomicU32,
    error_frames: AtomicU32,
}

impl FrameMeter {
    /// A fresh meter with every counter at zero.
    pub fn new() -> Self {
        FrameMeter::default()
    }

    /// One request frame with `body_len` body bytes went up.
    pub(crate) fn note_up(&self, body_len: usize) {
        self.bytes_up
            .fetch_add(FRAME_HEADER_LEN + body_len, Ordering::Relaxed);
    }

    /// One reply frame came down: its framed bytes, one round trip, and
    /// an error tick when the body is an `Error` frame.
    pub(crate) fn note_down(&self, body: &[u8]) {
        self.bytes_down
            .fetch_add(FRAME_HEADER_LEN + body.len(), Ordering::Relaxed);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        if body.first() == Some(&ERROR_FRAME_TAG) {
            self.error_frames.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The accumulated traffic as a [`TrafficReport`]. Only the fields a
    /// byte transport can observe are filled; the protocol-level counters
    /// (shard legs, batches, pruning) belong to the layers above.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            bytes_up: self.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.bytes_down.load(Ordering::Relaxed),
            round_trips: self.round_trips.load(Ordering::Relaxed),
            error_frames: self.error_frames.load(Ordering::Relaxed),
            ..TrafficReport::default()
        }
    }
}

/// One pipelined client connection: many requests may be in flight; each
/// reply carries the sequence id its request was sent under.
pub trait Connection: Send {
    /// Puts `request` on the wire and returns the sequence id its reply
    /// will carry. Does not wait for the reply — pipeline by sending
    /// again before receiving.
    ///
    /// # Errors
    ///
    /// [`CloudError::Transport`] when the connection or server is gone.
    /// Overload is *not* an error here: a shed request still gets its
    /// reply frame (the fast `Overloaded` error frame), delivered through
    /// [`Connection::recv_any`] like any other.
    fn send(&mut self, request: Message) -> Result<u64, CloudError>;

    /// Waits up to `timeout` for the next completed reply, in completion
    /// order, returning `(seq, reply body)`. Error frames are returned as
    /// bodies, not lifted into `Err` — the transport moves bytes; the
    /// caller interprets them.
    ///
    /// # Errors
    ///
    /// [`CloudError::Timeout`] when nothing completed in time,
    /// [`CloudError::Transport`] when the connection or server is gone.
    fn recv_any(&mut self, timeout: Duration) -> Result<(u64, Vec<u8>), CloudError>;
}

/// A factory of [`Connection`]s sharing one [`FrameMeter`].
pub trait Transport {
    /// Opens a new pipelined connection.
    ///
    /// # Errors
    ///
    /// [`CloudError::Transport`] when the server is unreachable.
    fn connect(&self) -> Result<Box<dyn Connection>, CloudError>;

    /// The framed traffic of every connection so far.
    fn traffic(&self) -> TrafficReport;
}

/// The in-process transport: connections multiplex onto a
/// [`ServerClient`] pool queue. Deterministic (no sockets, no kernel
/// buffers), which is exactly why it stays around as the test harness.
#[derive(Debug)]
pub struct ChannelTransport {
    client: ServerClient,
    meter: Arc<FrameMeter>,
}

impl ChannelTransport {
    /// Wraps a pool client endpoint.
    pub fn new(client: ServerClient) -> Self {
        ChannelTransport {
            client,
            meter: Arc::new(FrameMeter::new()),
        }
    }
}

impl Transport for ChannelTransport {
    fn connect(&self) -> Result<Box<dyn Connection>, CloudError> {
        Ok(Box::new(ChannelConnection {
            client: self.client.clone(),
            meter: Arc::clone(&self.meter),
            next_seq: 0,
            pending: VecDeque::new(),
        }))
    }

    fn traffic(&self) -> TrafficReport {
        self.meter.report()
    }
}

/// One channel-backed connection: in-flight requests are a FIFO of
/// [`PendingReply`]s. The vendored channel shim has no `select`, so
/// `recv_any` waits on the *oldest* pending reply; later completions are
/// still delivered in completion order relative to each other because a
/// completed reply returns instantly once it reaches the queue front.
struct ChannelConnection {
    client: ServerClient,
    meter: Arc<FrameMeter>,
    next_seq: u64,
    pending: VecDeque<(u64, PendingState)>,
}

/// A channel request is either waiting on its worker or already answered
/// locally (the admission-control shed happens at send time, but the
/// transport contract delivers the shed frame through `recv_any`).
enum PendingState {
    InFlight(PendingReply),
    Ready(Vec<u8>),
}

impl Connection for ChannelConnection {
    fn send(&mut self, request: Message) -> Result<u64, CloudError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.meter.note_up(request.wire_len());
        let state = match self.client.call_async(request) {
            Ok(reply) => PendingState::InFlight(reply),
            Err(CloudError::Server { kind, detail }) => {
                // The pool shed at admission: materialize the same frame
                // the TCP event loop writes for a full backlog, so both
                // transports deliver byte-identical overload replies.
                PendingState::Ready(Message::error(kind, detail).encode().to_vec())
            }
            Err(e) => return Err(e),
        };
        self.pending.push_back((seq, state));
        Ok(seq)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<(u64, Vec<u8>), CloudError> {
        let (seq, state) = self.pending.front().ok_or(CloudError::Transport {
            context: "recv_any with no request in flight",
        })?;
        let seq = *seq;
        let body = match state {
            PendingState::Ready(body) => body.clone(),
            // A timeout leaves the entry in place: the reply stays
            // collectable by the next call, exactly like unread socket
            // bytes on the TCP side.
            PendingState::InFlight(reply) => reply.wait_frame(Some(timeout))?,
        };
        self.pending.pop_front();
        self.meter.note_down(&body);
        Ok((seq, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{ErrorKind, SearchMode};
    use crate::entities::{CloudServer, DataOwner};
    use crate::server_loop::{PoolOptions, ServerHandle};
    use rsse_core::RsseParams;
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};

    fn spawn() -> (DataOwner, ServerHandle) {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(41));
        let owner = DataOwner::new(b"transport seed", RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let handle = ServerHandle::spawn_pool_with(server, PoolOptions::new(2, 32));
        (owner, handle)
    }

    #[test]
    fn pipelined_requests_complete_with_matching_seqs() {
        let (owner, handle) = spawn();
        let transport = ChannelTransport::new(handle.client());
        let mut conn = transport.connect().unwrap();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(3), SearchMode::Rsse)
            .unwrap();
        let mut sent = Vec::new();
        for _ in 0..8 {
            sent.push(conn.send(req.clone()).unwrap());
        }
        let mut got = Vec::new();
        for _ in 0..8 {
            let (seq, body) = conn.recv_any(Duration::from_secs(5)).unwrap();
            assert!(matches!(
                Message::decode(bytes::BytesMut::from(&body[..])).unwrap(),
                Message::RsseResponse { .. }
            ));
            got.push(seq);
        }
        got.sort_unstable();
        assert_eq!(got, sent);
        let traffic = transport.traffic();
        assert_eq!(traffic.round_trips, 8);
        assert_eq!(traffic.error_frames, 0);
        assert_eq!(
            traffic.bytes_up,
            8 * (FRAME_HEADER_LEN + req.wire_len()),
            "framed request bytes counted exactly once per frame"
        );
        handle.shutdown();
    }

    #[test]
    fn sheds_surface_as_overloaded_reply_frames_not_errors() {
        // A zero-worker-progress pool: one worker, tiny backlog, and a
        // burst bigger than both. The overflow requests must still each
        // get a reply — the fast Overloaded frame — through recv_any.
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(41));
        let owner = DataOwner::new(b"transport seed", RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let handle = ServerHandle::spawn_pool_with(
            server,
            PoolOptions::new(1, 1).with_io_delay(Duration::from_millis(20)),
        );
        let transport = ChannelTransport::new(handle.client());
        let mut conn = transport.connect().unwrap();
        let owner_user = owner.authorize_user();
        let req = owner_user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        for _ in 0..16 {
            conn.send(req.clone()).unwrap();
        }
        let mut sheds = 0;
        for _ in 0..16 {
            let (_, body) = conn.recv_any(Duration::from_secs(10)).unwrap();
            if let Message::Error { kind, .. } =
                Message::decode(bytes::BytesMut::from(&body[..])).unwrap()
            {
                assert_eq!(kind, ErrorKind::Overloaded);
                sheds += 1;
            }
        }
        assert!(sheds > 0, "burst must exceed the 1-slot backlog");
        assert_eq!(transport.traffic().error_frames, sheds);
        handle.shutdown();
    }
}
