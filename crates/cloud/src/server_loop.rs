//! A threaded request/response server loop over the wire codec.
//!
//! [`Deployment`](crate::entities::Deployment) calls the server in-process;
//! this module runs the [`CloudServer`] on its own thread behind crossbeam
//! channels, so many client threads can talk to it concurrently through
//! real encoded frames — the closest this simulation gets to a deployed
//! service, and the harness for the multi-user experiments.

use crate::codec::Message;
use crate::entities::CloudServer;
use crate::error::CloudError;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::thread::JoinHandle;

/// A request frame paired with the channel to answer on, or the shutdown
/// sentinel. Clients hold cloned senders, so the channel never disconnects
/// on its own — the sentinel is what actually stops the loop.
enum Envelope {
    Request {
        frame: Vec<u8>,
        reply: Sender<Result<Vec<u8>, String>>,
    },
    Shutdown,
}

/// Handle to a running server thread.
///
/// Dropping the handle shuts the server down ([`ServerHandle::shutdown`]
/// does so explicitly and joins the thread).
///
/// # Example
///
/// ```
/// use rsse_cloud::entities::{CloudServer, DataOwner};
/// use rsse_cloud::server_loop::ServerHandle;
/// use rsse_cloud::{Message, SearchMode};
/// use rsse_core::RsseParams;
/// use rsse_ir::{Document, FileId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let owner = DataOwner::new(b"seed", RsseParams::default());
/// let docs = vec![Document::new(FileId::new(1), "network notes")];
/// let server = CloudServer::from_outsource(owner.outsource(&docs)?)?;
/// let handle = ServerHandle::spawn(server, 8);
///
/// let client = handle.client();
/// let user = owner.authorize_user();
/// let request = user.search_request("network", Some(1), SearchMode::Rsse)?;
/// let response = client.call(request)?;
/// assert!(matches!(response, Message::RsseResponse { .. }));
///
/// handle.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerHandle {
    requests: Sender<Envelope>,
    thread: Option<JoinHandle<u64>>,
}

/// A cheap, cloneable client endpoint for one server.
#[derive(Debug, Clone)]
pub struct ServerClient {
    requests: Sender<Envelope>,
}

impl ServerHandle {
    /// Spawns the server thread with a bounded request queue of `backlog`.
    pub fn spawn(server: CloudServer, backlog: usize) -> Self {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = bounded(backlog.max(1));
        let thread = std::thread::spawn(move || {
            let mut served = 0u64;
            while let Ok(envelope) = rx.recv() {
                let (frame, reply) = match envelope {
                    Envelope::Request { frame, reply } => (frame, reply),
                    Envelope::Shutdown => break,
                };
                let outcome = Message::decode(BytesMut::from(&frame[..]))
                    .map_err(CloudError::from)
                    .and_then(|msg| server.handle(msg))
                    .map(|resp| resp.encode().to_vec())
                    .map_err(|e| e.to_string());
                served += 1;
                // A client that hung up is not the server's problem.
                let _ = reply.send(outcome);
            }
            served
        });
        ServerHandle {
            requests: tx,
            thread: Some(thread),
        }
    }

    /// Creates a client endpoint.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            requests: self.requests.clone(),
        }
    }

    /// Stops accepting requests and joins the server thread, returning the
    /// number of requests served. Requests still queued behind the
    /// shutdown sentinel are dropped (their clients see a transport error).
    pub fn shutdown(mut self) -> u64 {
        let _ = self.requests.send(Envelope::Shutdown);
        self.thread
            .take()
            .expect("thread present until shutdown")
            .join()
            .expect("server thread panicked")
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = self.requests.send(Envelope::Shutdown);
            let _ = thread.join();
        }
    }
}

impl ServerClient {
    /// Sends a request message and waits for the response.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] style failures are stringified by
    /// the server; transport loss (server shut down) maps to an
    /// `UnexpectedMessage` as well.
    pub fn call(&self, request: Message) -> Result<Message, CloudError> {
        let (reply_tx, reply_rx) = bounded(1);
        let envelope = Envelope::Request {
            frame: request.encode().to_vec(),
            reply: reply_tx,
        };
        self.requests
            .send(envelope)
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "running server",
            })?;
        let frame = reply_rx
            .recv()
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "server response",
            })?
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "successful response",
            })?;
        Message::decode(BytesMut::from(&frame[..])).map_err(CloudError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::SearchMode;
    use crate::entities::DataOwner;
    use rsse_core::RsseParams;
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};

    fn spawn_server() -> (DataOwner, ServerHandle, usize) {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(55));
        let owner = DataOwner::new(b"loop seed", RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let n = corpus.documents().len();
        (owner, ServerHandle::spawn(server, 16), n)
    }

    #[test]
    fn serves_one_request() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(3), SearchMode::Rsse)
            .unwrap();
        let resp = client.call(req).unwrap();
        let Message::RsseResponse { ranking, files } = resp else {
            panic!("wrong response type");
        };
        assert_eq!(ranking.len(), 3);
        assert_eq!(files.len(), 3);
        assert_eq!(handle.shutdown(), 1);
    }

    #[test]
    fn many_concurrent_clients() {
        let (owner, handle, _) = spawn_server();
        let reference: Vec<u64> = {
            let client = handle.client();
            let user = owner.authorize_user();
            let req = user
                .search_request("network", Some(5), SearchMode::Rsse)
                .unwrap();
            match client.call(req).unwrap() {
                Message::RsseResponse { ranking, .. } => {
                    ranking.into_iter().map(|(id, _)| id).collect()
                }
                _ => panic!("wrong response type"),
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = handle.client();
                let user = owner.authorize_user();
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let req = user
                            .search_request("network", Some(5), SearchMode::Rsse)
                            .unwrap();
                        let Message::RsseResponse { ranking, .. } = client.call(req).unwrap()
                        else {
                            panic!("wrong response type");
                        };
                        let ids: Vec<u64> = ranking.into_iter().map(|(id, _)| id).collect();
                        assert_eq!(&ids, reference);
                    }
                });
            }
        });
        assert_eq!(handle.shutdown(), 81);
    }

    #[test]
    fn malformed_frames_are_rejected_not_fatal() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        // A raw out-of-protocol message: server must answer with an error
        // and keep serving.
        let err = client.call(Message::FilesResponse { files: vec![] });
        assert!(err.is_err());
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(client.call(req).is_ok());
        handle.shutdown();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        handle.shutdown();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(client.call(req).is_err());
    }
}
