//! A threaded request/response server loop over the wire codec.
//!
//! [`Deployment`](crate::entities::Deployment) calls the server in-process;
//! this module runs the [`CloudServer`] behind crossbeam channels so many
//! client threads can talk to it concurrently through real encoded frames —
//! the closest this simulation gets to a deployed service, and the harness
//! for the multi-user and throughput experiments.
//!
//! [`ServerHandle::spawn_pool`] starts **N worker threads** pulling from one
//! shared bounded MPMC request channel. Every worker serves from the same
//! `Arc<CloudServer>`: the server's mutable state (score-dynamics appends,
//! file store, audit log) sits behind `parking_lot::RwLock`s, so concurrent
//! searches take read locks and never serialize against each other.
//! [`ServerHandle::spawn`] remains the single-worker special case.
//!
//! # Failure semantics
//!
//! Failure is part of the protocol, not a side channel:
//!
//! * every request is answered with an encoded frame — a response on
//!   success, a [`Message::Error`] frame (typed [`ErrorKind`] + detail) on
//!   failure — so error bytes are countable on the wire like any response;
//! * a panic inside the serving path is contained per request
//!   ([`std::panic::catch_unwind`]): the client gets an
//!   [`ErrorKind::Internal`] frame, the worker keeps serving, and the
//!   audit log counts the panic ([`ServingReport::panics`]);
//! * clients shed instead of blocking: [`ServerClient::call`] uses
//!   `try_send` against the bounded backlog and turns a full queue into a
//!   fast [`ErrorKind::Overloaded`] error frame
//!   ([`ServerClient::call_with_retry`] adds bounded backoff on top);
//! * deadlines bound every wait: [`ServerClient::call_with_deadline`] (or a
//!   pool-wide default via [`PoolOptions::with_deadline`]) returns
//!   [`CloudError::Timeout`] instead of hanging on a wedged worker.
//!
//! [`ServingReport::panics`]: crate::audit::ServingReport

use crate::codec::{ErrorKind, Message};
use crate::entities::CloudServer;
use crate::error::CloudError;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request frame paired with the channel to answer on, or the shutdown
/// sentinel. Clients hold cloned senders, so the channel never disconnects
/// on its own — the sentinels are what actually stop the workers (one
/// sentinel retires exactly one worker).
enum Envelope {
    Request {
        frame: Vec<u8>,
        reply: Sender<Vec<u8>>,
    },
    Shutdown,
}

/// A fault injected by [`PoolOptions::with_fault`], for proving the failure
/// semantics under test.
#[derive(Debug, Clone, Copy)]
pub enum Fault {
    /// Panic inside the serving path; the pool must contain it and answer
    /// with an [`ErrorKind::Internal`] frame.
    Panic(&'static str),
    /// Wedge the worker for the given duration (a stuck backend call);
    /// client deadlines must fire instead of hanging.
    Stall(Duration),
    /// Kill the worker thread outright — an *uncontained* death, for
    /// proving that shutdown and drop survive lost workers.
    KillWorker,
}

/// Fault-injection hook: inspects each decoded request and may return a
/// [`Fault`] to apply before it is served.
pub type FaultHook = Arc<dyn Fn(&Message) -> Option<Fault> + Send + Sync>;

/// Panic payload used by [`Fault::KillWorker`] so the containment layer can
/// tell an injected worker death apart from an ordinary serving panic.
struct WorkerDeath;

/// Tuning knobs for [`ServerHandle::spawn_pool_with`].
#[derive(Clone)]
pub struct PoolOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bound of the shared request queue (clamped to at least 1).
    pub backlog: usize,
    /// Optional per-request stall simulating backend I/O (e.g. fetching
    /// file blocks from object storage). The throughput harness uses this
    /// to model the I/O-bound regime, where a pool overlaps stalls that a
    /// single serial loop must eat back to back.
    pub io_delay: Option<Duration>,
    /// Default deadline applied by [`ServerClient::call`]; `None` waits
    /// indefinitely (callers can still set one per call with
    /// [`ServerClient::call_with_deadline`]).
    pub deadline: Option<Duration>,
    /// Fault-injection hook, run against each decoded request.
    pub fault: Option<FaultHook>,
}

impl core::fmt::Debug for PoolOptions {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PoolOptions")
            .field("workers", &self.workers)
            .field("backlog", &self.backlog)
            .field("io_delay", &self.io_delay)
            .field("deadline", &self.deadline)
            .field("fault", &self.fault.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl PoolOptions {
    /// `workers` threads over a `backlog`-bounded queue, no simulated I/O,
    /// no default deadline, no faults.
    pub fn new(workers: usize, backlog: usize) -> Self {
        PoolOptions {
            workers,
            backlog,
            io_delay: None,
            deadline: None,
            fault: None,
        }
    }

    /// Adds a simulated per-request I/O stall.
    #[must_use]
    pub fn with_io_delay(mut self, delay: Duration) -> Self {
        self.io_delay = Some(delay);
        self
    }

    /// Sets the default deadline for [`ServerClient::call`].
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Installs a fault-injection hook (see [`Fault`]).
    #[must_use]
    pub fn with_fault(
        mut self,
        hook: impl Fn(&Message) -> Option<Fault> + Send + Sync + 'static,
    ) -> Self {
        self.fault = Some(Arc::new(hook));
        self
    }
}

/// Detail string of the `Overloaded` frame a full backlog sheds with.
/// Shared by the in-process admission path ([`ServerClient`]) and the TCP
/// event loop (`crate::tcp`), so the shed frame is byte-identical no
/// matter which transport carried the request.
pub(crate) const OVERLOAD_DETAIL: &str = "request backlog is full";

/// Serves one encoded request frame to one encoded response frame — the
/// single serving path shared by the pool workers and the in-process
/// [`Deployment`](crate::entities::Deployment) rounds.
///
/// Never returns an out-of-band error: decode failures become
/// [`ErrorKind::BadFrame`] frames, handler failures map through
/// [`CloudError::wire_kind`], and a panic anywhere in the handler is caught
/// and answered with an [`ErrorKind::Internal`] frame (counted in
/// [`ServingReport::panics`](crate::audit::ServingReport::panics)).
///
/// # Panics
///
/// Re-raises only the [`Fault::KillWorker`] injection payload, which
/// simulates an uncontained worker death under test.
pub fn serve_frame(server: &CloudServer, frame: &[u8], fault: Option<&FaultHook>) -> Vec<u8> {
    let msg = match Message::decode(BytesMut::from(frame)) {
        Ok(msg) => msg,
        Err(e) => {
            server.note_bad_frame();
            return Message::error(ErrorKind::BadFrame, e.to_string())
                .encode()
                .to_vec();
        }
    };
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if let Some(hook) = fault {
            match hook(&msg) {
                Some(Fault::Panic(detail)) => panic!("injected fault: {detail}"),
                Some(Fault::Stall(wedge)) => std::thread::sleep(wedge),
                Some(Fault::KillWorker) => std::panic::panic_any(WorkerDeath),
                None => {}
            }
        }
        server.handle(msg)
    }));
    let response = match outcome {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => Message::error(e.wire_kind(), e.to_string()),
        Err(payload) if payload.is::<WorkerDeath>() => std::panic::resume_unwind(payload),
        Err(_) => {
            server.note_panic();
            Message::error(
                ErrorKind::Internal,
                "worker panicked while serving the request",
            )
        }
    };
    response.encode().to_vec()
}

/// Handle to a running server worker pool.
///
/// Dropping the handle shuts the pool down ([`ServerHandle::shutdown`]
/// does so explicitly, joins every worker, and returns the total number of
/// requests served).
///
/// # Example
///
/// ```
/// use rsse_cloud::entities::{CloudServer, DataOwner};
/// use rsse_cloud::server_loop::ServerHandle;
/// use rsse_cloud::{Message, SearchMode};
/// use rsse_core::RsseParams;
/// use rsse_ir::{Document, FileId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let owner = DataOwner::new(b"seed", RsseParams::default());
/// let docs = vec![Document::new(FileId::new(1), "network notes")];
/// let server = CloudServer::from_outsource(owner.outsource(&docs)?)?;
/// let handle = ServerHandle::spawn_pool(server, 4, 8);
///
/// let client = handle.client();
/// let user = owner.authorize_user();
/// let request = user.search_request("network", Some(1), SearchMode::Rsse)?;
/// let response = client.call(request)?;
/// assert!(matches!(response, Message::RsseResponse { .. }));
///
/// handle.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerHandle {
    /// `Some` until `Drop` takes it to release the pool's own sender.
    requests: Option<Sender<Envelope>>,
    workers: Vec<JoinHandle<u64>>,
    server: Arc<CloudServer>,
    deadline: Option<Duration>,
}

/// A cheap, cloneable client endpoint for one server pool.
#[derive(Debug, Clone)]
pub struct ServerClient {
    requests: Sender<Envelope>,
    deadline: Option<Duration>,
}

fn worker_loop(
    rx: Receiver<Envelope>,
    server: Arc<CloudServer>,
    io_delay: Option<Duration>,
    fault: Option<FaultHook>,
) -> u64 {
    let mut served = 0u64;
    while let Ok(envelope) = rx.recv() {
        let (frame, reply) = match envelope {
            Envelope::Request { frame, reply } => (frame, reply),
            Envelope::Shutdown => break,
        };
        if let Some(delay) = io_delay {
            std::thread::sleep(delay);
        }
        let response = serve_frame(&server, &frame, fault.as_ref());
        served += 1;
        // A client that hung up (or timed out) is not the server's problem.
        let _ = reply.send(response);
    }
    served
}

impl ServerHandle {
    /// Spawns a single-worker server — [`ServerHandle::spawn_pool`] with
    /// one thread, kept for API compatibility with the pre-pool loop.
    pub fn spawn(server: CloudServer, backlog: usize) -> Self {
        Self::spawn_pool(server, 1, backlog)
    }

    /// Spawns `workers` server threads sharing one bounded request queue
    /// of `backlog` envelopes.
    pub fn spawn_pool(server: CloudServer, workers: usize, backlog: usize) -> Self {
        Self::spawn_pool_with(server, PoolOptions::new(workers, backlog))
    }

    /// Spawns a pool with full [`PoolOptions`] control.
    pub fn spawn_pool_with(server: CloudServer, options: PoolOptions) -> Self {
        Self::spawn_pool_shared(Arc::new(server), options)
    }

    /// Spawns a pool over an *already shared* server. Several pools over
    /// the same `Arc<CloudServer>` act as replicas of one shard: they serve
    /// from the same index, ranking cache and label filter, but each has
    /// its own request queue and worker threads — so a router can spread
    /// read legs across them.
    pub fn spawn_pool_shared(server: Arc<CloudServer>, options: PoolOptions) -> Self {
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = bounded(options.backlog.max(1));
        let workers = (0..options.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let server = Arc::clone(&server);
                let io_delay = options.io_delay;
                let fault = options.fault.clone();
                std::thread::spawn(move || worker_loop(rx, server, io_delay, fault))
            })
            .collect();
        ServerHandle {
            requests: Some(tx),
            workers,
            server,
            deadline: options.deadline,
        }
    }

    fn sender(&self) -> &Sender<Envelope> {
        self.requests
            .as_ref()
            .expect("sender live until Drop takes it")
    }

    /// Creates a client endpoint (inheriting the pool's default deadline).
    pub fn client(&self) -> ServerClient {
        ServerClient {
            requests: self.sender().clone(),
            deadline: self.deadline,
        }
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared server, e.g. to inspect the audit log or push updates
    /// out of band while the pool is serving.
    pub fn server(&self) -> Arc<CloudServer> {
        Arc::clone(&self.server)
    }

    /// Stops accepting requests and joins every worker, returning the
    /// total number of requests served across the pool. One shutdown
    /// sentinel is sent per worker; requests already queued may still be
    /// served by workers that have not yet seen a sentinel, while anything
    /// left after the last worker retires is dropped (its client sees a
    /// transport error).
    ///
    /// A worker that died of an uncontained panic contributes `served = 0`
    /// (its count is lost with the thread); the remaining workers' counts
    /// are still summed and returned, and the loss is reported to stderr —
    /// one dead worker no longer poisons the caller.
    pub fn shutdown(mut self) -> u64 {
        let tx = self.requests.take().expect("sender live until shutdown");
        for _ in 0..self.workers.len() {
            // Errors only when every worker is already dead (no receivers).
            let _ = tx.send(Envelope::Shutdown);
        }
        drop(tx);
        self.workers
            .drain(..)
            .map(|t| {
                t.join().unwrap_or_else(|_| {
                    eprintln!("server worker panicked; its served count is lost");
                    0
                })
            })
            .sum()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let Some(tx) = self.requests.take() else {
            // `shutdown` already ran and joined everything.
            return;
        };
        // Best-effort sentinels: never block on a full backlog (the
        // workers may all be dead or wedged). A brief bounded retry covers
        // the common case of a momentarily full queue draining normally.
        'sentinels: for _ in 0..self.workers.len() {
            for attempt in 0..50 {
                match tx.try_send(Envelope::Shutdown) {
                    Ok(()) => continue 'sentinels,
                    Err(TrySendError::Disconnected(_)) => break 'sentinels,
                    Err(TrySendError::Full(_)) if attempt < 49 => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(TrySendError::Full(_)) => break 'sentinels,
                }
            }
        }
        // Detach rather than join: a sentinel-less worker exits only once
        // the last *client* sender drops, which may be after this handle
        // is gone — joining here could deadlock a drop against a wedged
        // pool, and drop must always return. (`shutdown` is the joining,
        // count-returning path.)
        drop(tx);
        self.workers.clear();
    }
}

impl ServerClient {
    /// Sends a request message and waits for the response, applying the
    /// pool's default deadline (if one was configured).
    ///
    /// # Errors
    ///
    /// * [`CloudError::Server`] when the server answers with an error
    ///   frame — including [`ErrorKind::Overloaded`] when the bounded
    ///   backlog is full (the call sheds instead of blocking);
    /// * [`CloudError::Timeout`] when the default deadline expires;
    /// * [`CloudError::Transport`] when the pool is shut down or the
    ///   serving worker died before replying.
    pub fn call(&self, request: Message) -> Result<Message, CloudError> {
        self.call_inner(request.encode().to_vec(), self.deadline)
    }

    /// [`ServerClient::call`] with an explicit per-call deadline: returns
    /// [`CloudError::Timeout`] if no reply arrives within `deadline`, so a
    /// wedged worker can never hang the client forever.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::call`], with `deadline` in place of the default.
    pub fn call_with_deadline(
        &self,
        request: Message,
        deadline: Duration,
    ) -> Result<Message, CloudError> {
        self.call_inner(request.encode().to_vec(), Some(deadline))
    }

    /// [`ServerClient::call`] with a bounded retry-with-backoff loop
    /// around overload shedding: on [`ErrorKind::Overloaded`] the call is
    /// retried up to `attempts` times total, sleeping `backoff` (doubled
    /// each retry) between attempts. Any other outcome — success or
    /// failure — returns immediately.
    ///
    /// # Errors
    ///
    /// The final [`ErrorKind::Overloaded`] error if every attempt shed, or
    /// the first non-overload error.
    pub fn call_with_retry(
        &self,
        request: Message,
        attempts: u32,
        backoff: Duration,
    ) -> Result<Message, CloudError> {
        let frame = request.encode().to_vec();
        let attempts = attempts.max(1);
        let mut wait = backoff;
        let mut outcome = self.call_inner(frame.clone(), self.deadline);
        for _ in 1..attempts {
            match outcome {
                Err(CloudError::Server {
                    kind: ErrorKind::Overloaded,
                    ..
                }) => {
                    std::thread::sleep(wait);
                    wait = wait.saturating_mul(2);
                    outcome = self.call_inner(frame.clone(), self.deadline);
                }
                other => return other,
            }
        }
        outcome
    }

    /// Queues a request without waiting for its reply, returning a
    /// [`PendingReply`] to collect later. This is the scatter half of a
    /// scatter-gather query: a coordinator puts one leg on every shard's
    /// queue before blocking on any of them, so N shards serve in parallel
    /// without the coordinator spawning N threads.
    ///
    /// The admission decision happens *now*: a full backlog sheds with an
    /// [`ErrorKind::Overloaded`] error and a dead pool fails with
    /// [`CloudError::Transport`], exactly as [`ServerClient::call`] would.
    ///
    /// # Errors
    ///
    /// [`CloudError::Server`] (Overloaded) when the backlog sheds the
    /// request, [`CloudError::Transport`] when the pool is shut down.
    pub fn call_async(&self, request: Message) -> Result<PendingReply, CloudError> {
        self.send_frame(request.encode().to_vec())
    }

    fn send_frame(&self, frame: Vec<u8>) -> Result<PendingReply, CloudError> {
        let (reply_tx, reply_rx) = bounded(1);
        let envelope = Envelope::Request {
            frame,
            reply: reply_tx,
        };
        match self.requests.try_send(envelope) {
            Ok(()) => Ok(PendingReply { reply_rx }),
            Err(TrySendError::Full(_)) => {
                // Shed: the bounded backlog is the server's admission
                // control, so a full queue answers like the front door
                // would — with a decodable Overloaded frame, not a block.
                let shed = Message::error(ErrorKind::Overloaded, OVERLOAD_DETAIL).encode();
                let Message::Error { kind, detail } = Message::decode(shed)? else {
                    unreachable!("an encoded error frame decodes to an error frame");
                };
                Err(CloudError::Server { kind, detail })
            }
            Err(TrySendError::Disconnected(_)) => Err(CloudError::Transport {
                context: "server pool is shut down",
            }),
        }
    }

    fn call_inner(
        &self,
        frame: Vec<u8>,
        deadline: Option<Duration>,
    ) -> Result<Message, CloudError> {
        self.send_frame(frame)?.wait(deadline)
    }

    /// Sends a [`Message::BatchRequest`] and unwraps the matching
    /// [`Message::BatchReply`], returning one [`crate::BatchResult`] per
    /// query in request order. One queue slot, one envelope, one reply
    /// rendezvous for the whole batch — the per-request wire overhead that
    /// dominates small-query workloads is paid once.
    ///
    /// # Errors
    ///
    /// As [`ServerClient::call`], plus
    /// [`CloudError::UnexpectedMessage`] if the server answers a batch
    /// with anything other than a `BatchReply`.
    pub fn call_batch(&self, request: Message) -> Result<Vec<crate::BatchResult>, CloudError> {
        match self.call(request)? {
            Message::BatchReply { results, .. } => Ok(results),
            _ => Err(CloudError::UnexpectedMessage {
                expected: "BatchReply",
            }),
        }
    }
}

/// An in-flight request issued by [`ServerClient::call_async`]: the
/// request is already on the server's queue; the reply is collected with
/// [`PendingReply::wait`].
#[derive(Debug)]
pub struct PendingReply {
    reply_rx: Receiver<Vec<u8>>,
}

impl PendingReply {
    /// Waits for the reply, up to `deadline` when one is given (`None`
    /// waits indefinitely).
    ///
    /// # Errors
    ///
    /// * [`CloudError::Server`] when the reply is an error frame;
    /// * [`CloudError::Timeout`] when `deadline` expires first;
    /// * [`CloudError::Transport`] when the serving worker died before
    ///   replying;
    /// * a codec error when the reply frame does not decode.
    pub fn wait(self, deadline: Option<Duration>) -> Result<Message, CloudError> {
        let frame = self.wait_frame(deadline)?;
        match Message::decode(BytesMut::from(&frame[..]))? {
            Message::Error { kind, detail } => Err(CloudError::Server { kind, detail }),
            msg => Ok(msg),
        }
    }

    /// Waits for the raw reply frame without decoding it — the byte-level
    /// hook the transport layer uses, so error frames stay comparable
    /// bytes instead of being lifted into [`CloudError`] on the way out.
    ///
    /// # Errors
    ///
    /// [`CloudError::Timeout`] when `deadline` expires first, or
    /// [`CloudError::Transport`] when the serving worker died before
    /// replying. A timeout consumes nothing: the reply can still be
    /// collected by a later call once the worker answers.
    pub fn wait_frame(&self, deadline: Option<Duration>) -> Result<Vec<u8>, CloudError> {
        match deadline {
            Some(limit) => self.reply_rx.recv_timeout(limit).map_err(|e| match e {
                RecvTimeoutError::Timeout => CloudError::Timeout { after: limit },
                RecvTimeoutError::Disconnected => CloudError::Transport {
                    context: "worker died before replying",
                },
            }),
            None => self.reply_rx.recv().map_err(|_| CloudError::Transport {
                context: "worker died before replying",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::SearchMode;
    use crate::entities::DataOwner;
    use crate::files::FileCrypter;
    use rsse_core::{Rsse, RsseParams};
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
    use rsse_ir::{Document, FileId, InvertedIndex};

    fn spawn_server() -> (DataOwner, ServerHandle, usize) {
        spawn_with_workers(1)
    }

    fn spawn_with_workers(workers: usize) -> (DataOwner, ServerHandle, usize) {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(55));
        let owner = DataOwner::new(b"loop seed", RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let n = corpus.documents().len();
        (owner, ServerHandle::spawn_pool(server, workers, 16), n)
    }

    #[test]
    fn serves_one_request() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(3), SearchMode::Rsse)
            .unwrap();
        let resp = client.call(req).unwrap();
        let Message::RsseResponse { ranking, files } = resp else {
            panic!("wrong response type");
        };
        assert_eq!(ranking.len(), 3);
        assert_eq!(files.len(), 3);
        assert_eq!(handle.shutdown(), 1);
    }

    #[test]
    fn batched_call_matches_individual_calls() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        let user = owner.authorize_user();
        let keywords = ["network", "data", "network"];

        // Reference: one round trip per keyword.
        let singles: Vec<(Vec<(u64, u64)>, usize)> = keywords
            .iter()
            .map(|kw| {
                let req = user.search_request(kw, Some(4), SearchMode::Rsse).unwrap();
                match client.call(req).unwrap() {
                    Message::RsseResponse { ranking, files } => (ranking, files.len()),
                    _ => panic!("wrong response type"),
                }
            })
            .collect();

        // Batched: all keywords in one frame.
        let batch = user.batch_search_request(&keywords, Some(4)).unwrap();
        let results = client.call_batch(batch).unwrap();
        assert_eq!(results.len(), keywords.len());
        for ((ranking, files), (want_ranking, want_files)) in results.iter().zip(&singles) {
            assert_eq!(ranking, want_ranking, "batched ranking must be identical");
            assert_eq!(files.len(), *want_files);
        }

        let report = handle.server().serving_report();
        assert_eq!(report.batches, 1);
        assert_eq!(report.searches, 3);
        handle.shutdown();
    }

    #[test]
    fn call_batch_rejects_non_batch_reply() {
        let (_, handle, _) = spawn_server();
        let client = handle.client();
        // A FetchFiles request is valid, but its reply is not a BatchReply.
        let err = client.call_batch(Message::FetchFiles { ids: vec![] });
        assert!(matches!(
            err,
            Err(CloudError::UnexpectedMessage { .. }) | Err(CloudError::Server { .. })
        ));
        handle.shutdown();
    }

    #[test]
    fn many_concurrent_clients() {
        let (owner, handle, _) = spawn_server();
        let reference: Vec<u64> = {
            let client = handle.client();
            let user = owner.authorize_user();
            let req = user
                .search_request("network", Some(5), SearchMode::Rsse)
                .unwrap();
            match client.call(req).unwrap() {
                Message::RsseResponse { ranking, .. } => {
                    ranking.into_iter().map(|(id, _)| id).collect()
                }
                _ => panic!("wrong response type"),
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = handle.client();
                let user = owner.authorize_user();
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let req = user
                            .search_request("network", Some(5), SearchMode::Rsse)
                            .unwrap();
                        let Message::RsseResponse { ranking, .. } = client.call(req).unwrap()
                        else {
                            panic!("wrong response type");
                        };
                        let ids: Vec<u64> = ranking.into_iter().map(|(id, _)| id).collect();
                        assert_eq!(&ids, reference);
                    }
                });
            }
        });
        assert_eq!(handle.shutdown(), 81);
    }

    #[test]
    fn pool_of_four_serves_and_counts_across_workers() {
        let (owner, handle, _) = spawn_with_workers(4);
        assert_eq!(handle.num_workers(), 4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = handle.client();
                let user = owner.authorize_user();
                scope.spawn(move || {
                    for _ in 0..10 {
                        let req = user
                            .search_request("network", Some(5), SearchMode::Rsse)
                            .unwrap();
                        assert!(matches!(
                            client.call(req).unwrap(),
                            Message::RsseResponse { .. }
                        ));
                    }
                });
            }
        });
        // Every reply was received before shutdown, so the per-worker
        // served counts must sum to exactly the number of calls.
        assert_eq!(handle.shutdown(), 80);
    }

    #[test]
    fn update_over_the_wire_is_visible_to_searches() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(56));
        let seed: &[u8] = b"wire update seed";
        let owner = DataOwner::new(seed, RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let handle = ServerHandle::spawn_pool(server, 2, 8);
        let client = handle.client();
        let user = owner.authorize_user();

        let scheme = Rsse::new(seed, RsseParams::default());
        let plain_index = InvertedIndex::build(corpus.documents());
        let updater = scheme.updater_for(&plain_index).unwrap();
        let new_doc = Document::new(FileId::new(4242), "network wire update");
        let update = updater.add_document(&new_doc).unwrap();
        let crypter = FileCrypter::new(seed);
        let ack = client
            .call(Message::Update {
                rsse_lists: update.into_parts(),
                files: vec![crypter.encrypt(&new_doc)],
            })
            .unwrap();
        let Message::UpdateAck { files_added, .. } = ack else {
            panic!("wrong response type");
        };
        assert_eq!(files_added, 1);

        let req = user
            .search_request("network", None, SearchMode::Rsse)
            .unwrap();
        let Message::RsseResponse { ranking, .. } = client.call(req).unwrap() else {
            panic!("wrong response type");
        };
        assert!(ranking.iter().any(|(id, _)| *id == 4242));
        let report = handle.server().serving_report();
        assert_eq!(report.updates, 1);
        assert_eq!(report.searches, 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_frames_are_rejected_not_fatal() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        // A raw out-of-protocol message: server must answer with a typed
        // error frame and keep serving.
        let err = client
            .call(Message::FilesResponse { files: vec![] })
            .unwrap_err();
        let CloudError::Server { kind, detail } = err else {
            panic!("expected a decoded error frame, got {err:?}");
        };
        assert_eq!(kind, ErrorKind::Rejected);
        assert!(
            detail.contains("expected"),
            "detail survives the wire: {detail}"
        );
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(client.call(req).is_ok());
        assert_eq!(handle.server().serving_report().rejected, 1);
        handle.shutdown();
    }

    #[test]
    fn undecodable_frames_come_back_as_bad_frame_errors() {
        let (_, handle, _) = spawn_server();
        let server = handle.server();
        let reply = serve_frame(&server, &[0xff, 0x00, 0x01], None);
        let Message::Error { kind, .. } = Message::decode(BytesMut::from(&reply[..])).unwrap()
        else {
            panic!("expected an error frame");
        };
        assert_eq!(kind, ErrorKind::BadFrame);
        assert_eq!(server.serving_report().rejected, 1);
        handle.shutdown();
    }

    #[test]
    fn async_calls_scatter_before_any_wait() {
        let (owner, handle, _) = spawn_with_workers(2);
        let client = handle.client();
        let user = owner.authorize_user();
        // Queue both legs before blocking on either — the scatter pattern.
        let legs: Vec<PendingReply> = (0..2)
            .map(|_| {
                let req = user
                    .search_request("network", Some(2), SearchMode::Rsse)
                    .unwrap();
                client.call_async(req).unwrap()
            })
            .collect();
        for leg in legs {
            assert!(matches!(
                leg.wait(Some(Duration::from_secs(5))).unwrap(),
                Message::RsseResponse { .. }
            ));
        }
        assert_eq!(handle.shutdown(), 2);
    }

    #[test]
    fn async_call_sheds_and_fails_like_the_blocking_path() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        handle.shutdown();
        // The admission decision happens at call_async time.
        assert!(matches!(
            client.call_async(req),
            Err(CloudError::Transport { .. })
        ));
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        handle.shutdown();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(matches!(
            client.call(req),
            Err(CloudError::Transport { .. })
        ));
    }
}
