//! A threaded request/response server loop over the wire codec.
//!
//! [`Deployment`](crate::entities::Deployment) calls the server in-process;
//! this module runs the [`CloudServer`] behind crossbeam channels so many
//! client threads can talk to it concurrently through real encoded frames —
//! the closest this simulation gets to a deployed service, and the harness
//! for the multi-user and throughput experiments.
//!
//! [`ServerHandle::spawn_pool`] starts **N worker threads** pulling from one
//! shared bounded MPMC request channel. Every worker serves from the same
//! `Arc<CloudServer>`: the server's mutable state (score-dynamics appends,
//! file store, audit log) sits behind `parking_lot::RwLock`s, so concurrent
//! searches take read locks and never serialize against each other.
//! [`ServerHandle::spawn`] remains the single-worker special case.

use crate::codec::Message;
use crate::entities::CloudServer;
use crate::error::CloudError;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A request frame paired with the channel to answer on, or the shutdown
/// sentinel. Clients hold cloned senders, so the channel never disconnects
/// on its own — the sentinels are what actually stop the workers (one
/// sentinel retires exactly one worker).
enum Envelope {
    Request {
        frame: Vec<u8>,
        reply: Sender<Result<Vec<u8>, String>>,
    },
    Shutdown,
}

/// Tuning knobs for [`ServerHandle::spawn_pool_with`].
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Bound of the shared request queue (clamped to at least 1).
    pub backlog: usize,
    /// Optional per-request stall simulating backend I/O (e.g. fetching
    /// file blocks from object storage). The throughput harness uses this
    /// to model the I/O-bound regime, where a pool overlaps stalls that a
    /// single serial loop must eat back to back.
    pub io_delay: Option<Duration>,
}

impl PoolOptions {
    /// `workers` threads over a `backlog`-bounded queue, no simulated I/O.
    pub fn new(workers: usize, backlog: usize) -> Self {
        PoolOptions {
            workers,
            backlog,
            io_delay: None,
        }
    }

    /// Adds a simulated per-request I/O stall.
    #[must_use]
    pub fn with_io_delay(mut self, delay: Duration) -> Self {
        self.io_delay = Some(delay);
        self
    }
}

/// Handle to a running server worker pool.
///
/// Dropping the handle shuts the pool down ([`ServerHandle::shutdown`]
/// does so explicitly, joins every worker, and returns the total number of
/// requests served).
///
/// # Example
///
/// ```
/// use rsse_cloud::entities::{CloudServer, DataOwner};
/// use rsse_cloud::server_loop::ServerHandle;
/// use rsse_cloud::{Message, SearchMode};
/// use rsse_core::RsseParams;
/// use rsse_ir::{Document, FileId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let owner = DataOwner::new(b"seed", RsseParams::default());
/// let docs = vec![Document::new(FileId::new(1), "network notes")];
/// let server = CloudServer::from_outsource(owner.outsource(&docs)?)?;
/// let handle = ServerHandle::spawn_pool(server, 4, 8);
///
/// let client = handle.client();
/// let user = owner.authorize_user();
/// let request = user.search_request("network", Some(1), SearchMode::Rsse)?;
/// let response = client.call(request)?;
/// assert!(matches!(response, Message::RsseResponse { .. }));
///
/// handle.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServerHandle {
    requests: Sender<Envelope>,
    workers: Vec<JoinHandle<u64>>,
    server: Arc<CloudServer>,
}

/// A cheap, cloneable client endpoint for one server pool.
#[derive(Debug, Clone)]
pub struct ServerClient {
    requests: Sender<Envelope>,
}

fn worker_loop(
    rx: Receiver<Envelope>,
    server: Arc<CloudServer>,
    io_delay: Option<Duration>,
) -> u64 {
    let mut served = 0u64;
    while let Ok(envelope) = rx.recv() {
        let (frame, reply) = match envelope {
            Envelope::Request { frame, reply } => (frame, reply),
            Envelope::Shutdown => break,
        };
        if let Some(delay) = io_delay {
            std::thread::sleep(delay);
        }
        let outcome = Message::decode(BytesMut::from(&frame[..]))
            .map_err(CloudError::from)
            .and_then(|msg| server.handle(msg))
            .map(|resp| resp.encode().to_vec())
            .map_err(|e| e.to_string());
        served += 1;
        // A client that hung up is not the server's problem.
        let _ = reply.send(outcome);
    }
    served
}

impl ServerHandle {
    /// Spawns a single-worker server — [`ServerHandle::spawn_pool`] with
    /// one thread, kept for API compatibility with the pre-pool loop.
    pub fn spawn(server: CloudServer, backlog: usize) -> Self {
        Self::spawn_pool(server, 1, backlog)
    }

    /// Spawns `workers` server threads sharing one bounded request queue
    /// of `backlog` envelopes.
    pub fn spawn_pool(server: CloudServer, workers: usize, backlog: usize) -> Self {
        Self::spawn_pool_with(server, PoolOptions::new(workers, backlog))
    }

    /// Spawns a pool with full [`PoolOptions`] control.
    pub fn spawn_pool_with(server: CloudServer, options: PoolOptions) -> Self {
        let server = Arc::new(server);
        let (tx, rx): (Sender<Envelope>, Receiver<Envelope>) = bounded(options.backlog.max(1));
        let workers = (0..options.workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let server = Arc::clone(&server);
                let io_delay = options.io_delay;
                std::thread::spawn(move || worker_loop(rx, server, io_delay))
            })
            .collect();
        ServerHandle {
            requests: tx,
            workers,
            server,
        }
    }

    /// Creates a client endpoint.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            requests: self.requests.clone(),
        }
    }

    /// Number of worker threads in the pool.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared server, e.g. to inspect the audit log or push updates
    /// out of band while the pool is serving.
    pub fn server(&self) -> Arc<CloudServer> {
        Arc::clone(&self.server)
    }

    /// Stops accepting requests and joins every worker, returning the
    /// total number of requests served across the pool. One shutdown
    /// sentinel is sent per worker; requests already queued may still be
    /// served by workers that have not yet seen a sentinel, while anything
    /// left after the last worker retires is dropped (its client sees a
    /// transport error).
    pub fn shutdown(mut self) -> u64 {
        for _ in 0..self.workers.len() {
            let _ = self.requests.send(Envelope::Shutdown);
        }
        self.workers
            .drain(..)
            .map(|t| t.join().expect("server worker panicked"))
            .sum()
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        for _ in 0..self.workers.len() {
            let _ = self.requests.send(Envelope::Shutdown);
        }
        for thread in self.workers.drain(..) {
            let _ = thread.join();
        }
    }
}

impl ServerClient {
    /// Sends a request message and waits for the response.
    ///
    /// # Errors
    ///
    /// [`CloudError::UnexpectedMessage`] style failures are stringified by
    /// the server; transport loss (server shut down) maps to an
    /// `UnexpectedMessage` as well.
    pub fn call(&self, request: Message) -> Result<Message, CloudError> {
        let (reply_tx, reply_rx) = bounded(1);
        let envelope = Envelope::Request {
            frame: request.encode().to_vec(),
            reply: reply_tx,
        };
        self.requests
            .send(envelope)
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "running server",
            })?;
        let frame = reply_rx
            .recv()
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "server response",
            })?
            .map_err(|_| CloudError::UnexpectedMessage {
                expected: "successful response",
            })?;
        Message::decode(BytesMut::from(&frame[..])).map_err(CloudError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::SearchMode;
    use crate::entities::DataOwner;
    use crate::files::FileCrypter;
    use rsse_core::{Rsse, RsseParams};
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
    use rsse_ir::{Document, FileId, InvertedIndex};

    fn spawn_server() -> (DataOwner, ServerHandle, usize) {
        spawn_with_workers(1)
    }

    fn spawn_with_workers(workers: usize) -> (DataOwner, ServerHandle, usize) {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(55));
        let owner = DataOwner::new(b"loop seed", RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let n = corpus.documents().len();
        (owner, ServerHandle::spawn_pool(server, workers, 16), n)
    }

    #[test]
    fn serves_one_request() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(3), SearchMode::Rsse)
            .unwrap();
        let resp = client.call(req).unwrap();
        let Message::RsseResponse { ranking, files } = resp else {
            panic!("wrong response type");
        };
        assert_eq!(ranking.len(), 3);
        assert_eq!(files.len(), 3);
        assert_eq!(handle.shutdown(), 1);
    }

    #[test]
    fn many_concurrent_clients() {
        let (owner, handle, _) = spawn_server();
        let reference: Vec<u64> = {
            let client = handle.client();
            let user = owner.authorize_user();
            let req = user
                .search_request("network", Some(5), SearchMode::Rsse)
                .unwrap();
            match client.call(req).unwrap() {
                Message::RsseResponse { ranking, .. } => {
                    ranking.into_iter().map(|(id, _)| id).collect()
                }
                _ => panic!("wrong response type"),
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = handle.client();
                let user = owner.authorize_user();
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let req = user
                            .search_request("network", Some(5), SearchMode::Rsse)
                            .unwrap();
                        let Message::RsseResponse { ranking, .. } = client.call(req).unwrap()
                        else {
                            panic!("wrong response type");
                        };
                        let ids: Vec<u64> = ranking.into_iter().map(|(id, _)| id).collect();
                        assert_eq!(&ids, reference);
                    }
                });
            }
        });
        assert_eq!(handle.shutdown(), 81);
    }

    #[test]
    fn pool_of_four_serves_and_counts_across_workers() {
        let (owner, handle, _) = spawn_with_workers(4);
        assert_eq!(handle.num_workers(), 4);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let client = handle.client();
                let user = owner.authorize_user();
                scope.spawn(move || {
                    for _ in 0..10 {
                        let req = user
                            .search_request("network", Some(5), SearchMode::Rsse)
                            .unwrap();
                        assert!(matches!(
                            client.call(req).unwrap(),
                            Message::RsseResponse { .. }
                        ));
                    }
                });
            }
        });
        // Every reply was received before shutdown, so the per-worker
        // served counts must sum to exactly the number of calls.
        assert_eq!(handle.shutdown(), 80);
    }

    #[test]
    fn update_over_the_wire_is_visible_to_searches() {
        let corpus = SyntheticCorpus::generate(&CorpusParams::small(56));
        let seed: &[u8] = b"wire update seed";
        let owner = DataOwner::new(seed, RsseParams::default());
        let server =
            CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap();
        let handle = ServerHandle::spawn_pool(server, 2, 8);
        let client = handle.client();
        let user = owner.authorize_user();

        let scheme = Rsse::new(seed, RsseParams::default());
        let plain_index = InvertedIndex::build(corpus.documents());
        let updater = scheme.updater_for(&plain_index).unwrap();
        let new_doc = Document::new(FileId::new(4242), "network wire update");
        let update = updater.add_document(&new_doc).unwrap();
        let crypter = FileCrypter::new(seed);
        let ack = client
            .call(Message::Update {
                rsse_lists: update.into_parts(),
                files: vec![crypter.encrypt(&new_doc)],
            })
            .unwrap();
        let Message::UpdateAck { files_added, .. } = ack else {
            panic!("wrong response type");
        };
        assert_eq!(files_added, 1);

        let req = user
            .search_request("network", None, SearchMode::Rsse)
            .unwrap();
        let Message::RsseResponse { ranking, .. } = client.call(req).unwrap() else {
            panic!("wrong response type");
        };
        assert!(ranking.iter().any(|(id, _)| *id == 4242));
        let report = handle.server().serving_report();
        assert_eq!(report.updates, 1);
        assert_eq!(report.searches, 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_frames_are_rejected_not_fatal() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        // A raw out-of-protocol message: server must answer with an error
        // and keep serving.
        let err = client.call(Message::FilesResponse { files: vec![] });
        assert!(err.is_err());
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(client.call(req).is_ok());
        assert_eq!(handle.server().serving_report().rejected, 1);
        handle.shutdown();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (owner, handle, _) = spawn_server();
        let client = handle.client();
        handle.shutdown();
        let user = owner.authorize_user();
        let req = user
            .search_request("network", Some(1), SearchMode::Rsse)
            .unwrap();
        assert!(client.call(req).is_err());
    }
}
