//! The simulated network: latency/bandwidth cost model and traffic
//! accounting.
//!
//! The paper's efficiency argument is about *protocol shape*: one round
//! with top-k-sized responses (RSSE) versus one round with everything
//! (basic, naive) versus two rounds (basic, top-k). This module prices each
//! message so the trade-off becomes a number.

use std::time::Duration;

/// Link parameters of the simulated owner/user ↔ cloud connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkParams {
    /// One-way propagation latency.
    pub one_way_latency: Duration,
    /// Link throughput in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkParams {
    /// A WAN-ish default: 40 ms one-way, 100 Mbit/s.
    pub fn wan() -> Self {
        NetworkParams {
            one_way_latency: Duration::from_millis(40),
            bandwidth_bytes_per_sec: 12.5e6,
        }
    }

    /// A LAN-ish profile: 0.5 ms one-way, 1 Gbit/s.
    pub fn lan() -> Self {
        NetworkParams {
            one_way_latency: Duration::from_micros(500),
            bandwidth_bytes_per_sec: 125e6,
        }
    }

    /// Transfer time of `bytes` over this link (latency excluded).
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

impl Default for NetworkParams {
    fn default() -> Self {
        Self::wan()
    }
}

/// Accumulated traffic of one protocol run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Bytes sent client → server.
    pub bytes_up: usize,
    /// Bytes sent server → client.
    pub bytes_down: usize,
    /// Number of round trips (request/response pairs).
    pub round_trips: u32,
    /// How many of the downstream frames were protocol `Error` frames.
    /// Their bytes count in `bytes_down` like any other response — failure
    /// is part of the paper's byte-on-the-wire accounting, not a side
    /// channel.
    pub error_frames: u32,
    /// How many of the round trips were scatter legs to index shards. A
    /// single-server run reports 0; a sharded query reports one leg per
    /// shard it addressed (failed legs included — their error bytes are on
    /// the wire either way).
    pub shard_legs: u32,
    /// How many individual queries travelled inside `BatchRequest` frames.
    /// A run of only single-query frames reports 0; a batch of `n` searches
    /// adds `n` here while costing just one round trip — the ratio is the
    /// protocol's amortization factor.
    pub batched_queries: u32,
    /// Scatter legs the router *skipped* because the shard's label filter
    /// proved it holds no postings for the query label. Pruned legs cost
    /// zero bytes and zero round trips; this counter is the only place the
    /// saved fan-out shows up, so it is never folded into `shard_legs`
    /// (which counts only legs actually sent).
    pub pruned_legs: u32,
    /// `FilterRequest`/`FilterReply` round trips spent refreshing shard
    /// label filters after an epoch bump. Their bytes and round trips are
    /// metered like any other frame; the count makes the refresh traffic
    /// attributable.
    pub filter_fetches: u32,
    /// Conjunctive (multi-keyword) queries issued by this run — one tick
    /// per query regardless of how many shards it scattered to.
    pub conjunctive_queries: u32,
    /// Scatter legs carrying `ConjunctiveShardQuery` frames. Counted here
    /// and *not* in `shard_legs`, so single-keyword and conjunctive
    /// fan-out stay separately attributable; the bench's `served == legs`
    /// accounting sums whichever kinds a workload sends.
    pub conjunctive_legs: u32,
}

impl TrafficReport {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.bytes_up + self.bytes_down
    }

    /// Folds another report into this one — how a scatter-gather
    /// coordinator aggregates its per-shard leg reports into the query's
    /// total traffic.
    pub fn absorb(&mut self, other: &TrafficReport) {
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.round_trips += other.round_trips;
        self.error_frames += other.error_frames;
        self.shard_legs += other.shard_legs;
        self.batched_queries += other.batched_queries;
        self.pruned_legs += other.pruned_legs;
        self.filter_fetches += other.filter_fetches;
        self.conjunctive_queries += other.conjunctive_queries;
        self.conjunctive_legs += other.conjunctive_legs;
    }

    /// The traffic of one scatter leg: a query frame up to a shard and one
    /// reply frame (success or error) back down.
    pub fn shard_leg(bytes_up: usize, bytes_down: usize, is_error: bool) -> TrafficReport {
        TrafficReport {
            bytes_up,
            bytes_down,
            round_trips: 1,
            error_frames: u32::from(is_error),
            shard_legs: 1,
            ..TrafficReport::default()
        }
    }

    /// The traffic of one filter refresh: a `FilterRequest` up and the
    /// `FilterReply` back down. One round trip, no scatter leg.
    pub fn filter_fetch(bytes_up: usize, bytes_down: usize) -> TrafficReport {
        TrafficReport {
            bytes_up,
            bytes_down,
            round_trips: 1,
            filter_fetches: 1,
            ..TrafficReport::default()
        }
    }

    /// The non-traffic of one pruned scatter leg: zero bytes, zero round
    /// trips, one `pruned_legs` tick.
    pub fn pruned_leg() -> TrafficReport {
        TrafficReport {
            pruned_legs: 1,
            ..TrafficReport::default()
        }
    }

    /// The traffic of one conjunctive scatter leg: a
    /// `ConjunctiveShardQuery` up and one reply frame (success or error)
    /// back down.
    pub fn conjunctive_leg(bytes_up: usize, bytes_down: usize, is_error: bool) -> TrafficReport {
        TrafficReport {
            bytes_up,
            bytes_down,
            round_trips: 1,
            error_frames: u32::from(is_error),
            conjunctive_legs: 1,
            ..TrafficReport::default()
        }
    }

    /// Simulated wall-clock completion time over `net`: per round trip two
    /// propagation delays, plus serialization time of every byte.
    pub fn simulated_time(&self, net: &NetworkParams) -> Duration {
        let propagation = net.one_way_latency * (2 * self.round_trips);
        propagation + net.transfer_time(self.total_bytes())
    }
}

/// A metered channel that tallies every frame.
#[derive(Debug, Clone, Default)]
pub struct MeteredChannel {
    report: TrafficReport,
}

impl MeteredChannel {
    /// Creates a channel with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a client → server frame.
    pub fn send_up(&mut self, bytes: usize) {
        self.report.bytes_up += bytes;
    }

    /// Records a server → client frame and closes one round trip.
    pub fn send_down(&mut self, bytes: usize) {
        self.report.bytes_down += bytes;
        self.report.round_trips += 1;
    }

    /// Records a server → client `Error` frame: same byte and round-trip
    /// accounting as [`MeteredChannel::send_down`], plus the error tally.
    pub fn send_down_error(&mut self, bytes: usize) {
        self.send_down(bytes);
        self.report.error_frames += 1;
    }

    /// Records that the next upstream frame batches `queries` searches.
    pub fn note_batch(&mut self, queries: usize) {
        self.report.batched_queries += queries as u32;
    }

    /// Records that the next upstream frame is a conjunctive query.
    pub fn note_conjunctive(&mut self) {
        self.report.conjunctive_queries += 1;
    }

    /// The accumulated report.
    pub fn report(&self) -> TrafficReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let net = NetworkParams::lan();
        let t1 = net.transfer_time(1_000_000);
        let t2 = net.transfer_time(2_000_000);
        assert!((t2.as_secs_f64() - 2.0 * t1.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn round_trips_dominate_small_messages_on_wan() {
        let net = NetworkParams::wan();
        let one_round = TrafficReport {
            bytes_up: 100,
            bytes_down: 100,
            round_trips: 1,
            ..TrafficReport::default()
        };
        let two_rounds = TrafficReport {
            bytes_up: 100,
            bytes_down: 100,
            round_trips: 2,
            ..TrafficReport::default()
        };
        let d1 = one_round.simulated_time(&net);
        let d2 = two_rounds.simulated_time(&net);
        assert!(d2 > d1);
        assert!((d2 - d1).as_millis() >= 79, "extra RTT ≈ 80 ms");
    }

    #[test]
    fn bandwidth_dominates_bulk_transfers() {
        let net = NetworkParams::wan();
        let bulky = TrafficReport {
            bytes_up: 200,
            bytes_down: 100_000_000, // ~8 s at 100 Mbit/s
            round_trips: 1,
            ..TrafficReport::default()
        };
        assert!(bulky.simulated_time(&net) > Duration::from_secs(7));
    }

    #[test]
    fn metered_channel_accumulates() {
        let mut ch = MeteredChannel::new();
        ch.send_up(10);
        ch.send_down(20);
        ch.send_up(5);
        ch.send_down_error(5);
        let r = ch.report();
        assert_eq!(r.bytes_up, 15);
        assert_eq!(r.bytes_down, 25);
        assert_eq!(r.round_trips, 2);
        assert_eq!(r.error_frames, 1);
        assert_eq!(r.total_bytes(), 40);
        assert_eq!(r.shard_legs, 0, "a plain channel run has no shard legs");
        assert_eq!(r.batched_queries, 0, "no batch frames were sent");
        assert_eq!(r.conjunctive_queries, 0, "no conjunctive frames were sent");
        assert_eq!(r.conjunctive_legs, 0);
    }

    #[test]
    fn conjunctive_traffic_is_tallied_and_absorbed() {
        let mut ch = MeteredChannel::new();
        ch.note_conjunctive();
        ch.send_up(120);
        ch.send_down(800);
        let query = ch.report();
        assert_eq!(query.conjunctive_queries, 1);
        assert_eq!(query.conjunctive_legs, 0, "a single-node query has no legs");

        let leg = TrafficReport::conjunctive_leg(120, 300, false);
        assert_eq!(leg.round_trips, 1);
        assert_eq!(leg.conjunctive_legs, 1);
        assert_eq!(leg.shard_legs, 0, "conjunctive legs are tallied apart");
        let dead = TrafficReport::conjunctive_leg(120, 35, true);
        assert_eq!(dead.error_frames, 1, "a dead leg's error frame is metered");

        let mut total = TrafficReport::default();
        total.absorb(&query);
        total.absorb(&leg);
        total.absorb(&dead);
        assert_eq!(total.conjunctive_queries, 1);
        assert_eq!(total.conjunctive_legs, 2);
        assert_eq!(total.round_trips, 3);
        assert_eq!(total.bytes_up, 360);
        assert_eq!(total.bytes_down, 1135);
    }

    #[test]
    fn batched_queries_are_tallied_and_absorbed() {
        let mut ch = MeteredChannel::new();
        ch.note_batch(16);
        ch.send_up(900);
        ch.send_down(4000);
        let leg = ch.report();
        assert_eq!(leg.batched_queries, 16);
        assert_eq!(leg.round_trips, 1, "16 queries in one round trip");
        let mut total = TrafficReport::default();
        total.absorb(&leg);
        total.absorb(&leg);
        assert_eq!(total.batched_queries, 32);
    }

    #[test]
    fn absorb_aggregates_scatter_legs() {
        let mut total = TrafficReport::default();
        total.absorb(&TrafficReport::shard_leg(60, 200, false));
        total.absorb(&TrafficReport::shard_leg(60, 35, true));
        assert_eq!(total.bytes_up, 120);
        assert_eq!(total.bytes_down, 235);
        assert_eq!(total.round_trips, 2);
        assert_eq!(total.shard_legs, 2);
        assert_eq!(total.error_frames, 1, "a dead leg's error frame is metered");
    }

    #[test]
    fn pruned_legs_and_filter_fetches_are_metered_and_absorbed() {
        let pruned = TrafficReport::pruned_leg();
        assert_eq!(pruned.total_bytes(), 0, "a pruned leg costs no bytes");
        assert_eq!(pruned.round_trips, 0, "a pruned leg costs no round trip");
        assert_eq!(pruned.shard_legs, 0, "only sent legs count as shard legs");
        assert_eq!(pruned.pruned_legs, 1);

        let fetch = TrafficReport::filter_fetch(13, 100);
        assert_eq!(fetch.round_trips, 1);
        assert_eq!(fetch.filter_fetches, 1);
        assert_eq!(fetch.shard_legs, 0, "a filter refresh is not a query leg");

        let mut total = TrafficReport::default();
        total.absorb(&pruned);
        total.absorb(&fetch);
        total.absorb(&TrafficReport::shard_leg(60, 200, false));
        assert_eq!(total.pruned_legs, 1);
        assert_eq!(total.filter_fetches, 1);
        assert_eq!(total.shard_legs, 1);
        assert_eq!(total.round_trips, 2);
        assert_eq!(total.bytes_up, 73);
        assert_eq!(total.bytes_down, 300);
    }
}
