//! Epoch-guarded result caching: the server-side **hot-keyword ranking
//! cache** and the generic machinery behind the router-level merged-result
//! cache.
//!
//! The server's headline cost is ranking: `RsseIndex::search` AES-unwraps
//! the *entire* posting list behind a trapdoor's label on every request,
//! even when millions of users hammer the same popular keyword. But the
//! ranked result of a trapdoor is exactly the access pattern the scheme
//! already reveals to the server (Curtmola et al.'s SSE formalization
//! treats the (trapdoor, result) pair as legitimate leakage), so caching
//! it server-side leaks nothing new — see DESIGN.md §6.3.
//!
//! [`RankingCache`] maps a posting-list [`Label`] to the **full** ranked
//! `(FileId, encrypted_score)` vector produced by the first search of that
//! trapdoor. Any later `top_k` is then a prefix copy of the cached vector
//! ([`rsse_core::ranked_prefix`]) — zero per-entry cryptographic work.
//! Entries are LRU-evicted under a byte budget and invalidated when score
//! dynamics touch their label.
//!
//! The same discipline holds one level up: the shard router caches whole
//! *merged* scatter results keyed by `(label, top_k)` so a hot keyword
//! costs zero legs (DESIGN.md §6.5). Both caches are instances of
//! [`EpochCache`], generic over key and value; the value's budget charge
//! comes from its [`CacheWeight`] impl.
//!
//! # Stale-fill protection
//!
//! The expensive miss path (decrypt + sort the whole posting list, or a
//! full scatter-gather) must not run under the cache lock, which opens a
//! race: an update could invalidate a key *while* a miss is computing that
//! key's soon-to-be-stale value. The cache therefore carries a global
//! **epoch** counter, bumped by every invalidation. A filler snapshots the
//! epoch *before* reading the index and hands it back to
//! [`EpochCache::insert_if_current`], which rejects the fill if any
//! invalidation happened in between. Updates bump the epoch *after* the
//! index write completes, so a fill that passes the epoch check is
//! guaranteed to have read post-update (or untouched) state.
//!
//! # Lock split for contended readers
//!
//! [`EpochCache::get`] takes `&self`: the LRU clock and the hit/miss
//! counters are atomics, so concurrent readers can share the cache behind
//! an `RwLock` read guard and hit in parallel. Only fills, invalidations,
//! and eviction take `&mut self` (the write guard). This is what lets
//! `CloudServer` serve cache hits without serializing its worker pool.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rsse_core::{Label, RankedResult};

/// Point-in-time snapshot of a cache's effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served straight off a cached value.
    pub hits: u64,
    /// Lookups that had to compute from scratch.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Entries dropped because an update touched their key.
    pub invalidations: u64,
    /// Fills rejected because an invalidation raced the compute pass.
    pub stale_fills: u64,
}

/// Budget charge of a cached value: the approximate heap bytes it owns
/// (the fixed per-entry bookkeeping is added by the cache itself).
pub trait CacheWeight {
    /// Owned heap bytes of this value.
    fn weight_bytes(&self) -> usize;
}

impl CacheWeight for Vec<RankedResult> {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of_val(self.as_slice())
    }
}

impl CacheWeight for Vec<rsse_core::ConjunctiveResult> {
    fn weight_bytes(&self) -> usize {
        // Each result owns its per-keyword mapped-scores vector.
        std::mem::size_of_val(self.as_slice())
            + self
                .iter()
                .map(|r| std::mem::size_of_val(r.mapped_scores.as_slice()))
                .sum::<usize>()
    }
}

#[derive(Debug)]
struct CacheEntry<V> {
    value: Arc<V>,
    bytes: usize,
    /// LRU stamp, atomic so shared-lock readers can refresh it.
    last_used: AtomicU64,
}

/// Byte-budgeted LRU cache of computed values with epoch-guarded fills.
///
/// A budget of `0` disables the cache entirely: [`EpochCache::get`] always
/// misses (without counting a miss) and fills are discarded.
#[derive(Debug)]
pub struct EpochCache<K, V> {
    entries: HashMap<K, CacheEntry<V>>,
    budget_bytes: usize,
    used_bytes: usize,
    /// Monotonic access clock driving LRU eviction.
    tick: AtomicU64,
    /// Bumped by every invalidation; guards against stale fills.
    epoch: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: u64,
    invalidations: u64,
    stale_fills: u64,
}

/// The server-side hot-keyword cache: full rankings keyed by label.
pub type RankingCache = EpochCache<Label, Vec<RankedResult>>;

/// The server-side conjunctive-result cache: full intersected rankings
/// keyed by the **sorted** label set (plus nothing else — any `top_k` is a
/// prefix of the full ranking, and the sorted key makes every keyword
/// ordering of the same query share one entry). Values hold mapped scores
/// in canonical (label-sorted) part order; the serving path permutes them
/// back to the query's order (see `rsse_core::canonical_label_order`).
pub type ConjunctiveCache = EpochCache<Vec<Label>, Vec<rsse_core::ConjunctiveResult>>;

/// Approximate budget charge of one cached entry.
fn entry_bytes<K, V: CacheWeight>(value: &V) -> usize {
    std::mem::size_of::<Arc<V>>()
        + std::mem::size_of::<K>()
        + std::mem::size_of::<CacheEntry<V>>()
        + value.weight_bytes()
}

impl<K: Eq + Hash + Clone, V: CacheWeight> EpochCache<K, V> {
    /// Creates a cache holding at most `budget_bytes` of entries.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes,
            used_bytes: 0,
            tick: AtomicU64::new(0),
            epoch: 0,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: 0,
            invalidations: 0,
            stale_fills: 0,
        }
    }

    /// Whether the cache can ever hold an entry.
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// The current invalidation epoch. Snapshot this *before* computing a
    /// missed value and pass it to [`Self::insert_if_current`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up the value cached for `key`, refreshing its LRU position.
    /// Counts a hit or a miss; a disabled cache counts neither.
    ///
    /// Takes `&self`: the access clock and the counters are atomic, so any
    /// number of readers holding a shared lock can hit concurrently.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        if !self.is_enabled() {
            return None;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        match self.entries.get(key) {
            Some(entry) => {
                entry.last_used.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fills `key` with a value computed while the cache was at
    /// `fill_epoch`. Rejected (and counted as a stale fill) if any
    /// invalidation has happened since the snapshot; oversized values that
    /// could never fit the budget are silently skipped.
    pub fn insert_if_current(&mut self, key: K, value: Arc<V>, fill_epoch: u64) {
        if !self.is_enabled() {
            return;
        }
        if fill_epoch != self.epoch {
            self.stale_fills += 1;
            return;
        }
        let bytes = entry_bytes::<K, V>(&value);
        if bytes > self.budget_bytes {
            return;
        }
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(old) = self.entries.remove(&key) {
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.budget_bytes {
            self.evict_lru();
        }
        self.used_bytes += bytes;
        self.entries.insert(
            key,
            CacheEntry {
                value,
                bytes,
                last_used: AtomicU64::new(tick),
            },
        );
    }

    /// Drops the cached value for `key` (if any) and bumps the epoch so
    /// in-flight fills for *any* key are rejected. Call *after* the
    /// underlying mutation is visible.
    pub fn invalidate(&mut self, key: &K) {
        self.epoch += 1;
        if let Some(entry) = self.entries.remove(key) {
            self.used_bytes -= entry.bytes;
            self.invalidations += 1;
        }
    }

    /// Drops everything and bumps the epoch.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.invalidations += self.entries.len() as u64;
        self.used_bytes = 0;
        self.entries.clear();
    }

    /// Number of cached keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Effectiveness counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions,
            invalidations: self.invalidations,
            stale_fills: self.stale_fills,
        }
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.last_used.load(Ordering::Relaxed))
            .map(|(key, _)| key.clone());
        let Some(key) = victim else {
            debug_assert!(false, "evict_lru called on an empty cache");
            self.used_bytes = 0;
            return;
        };
        let entry = self.entries.remove(&key).expect("victim exists");
        self.used_bytes -= entry.bytes;
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_ir::FileId;

    fn label(tag: u8) -> Label {
        [tag; 20]
    }

    fn ranking(len: usize) -> Arc<Vec<RankedResult>> {
        Arc::new(
            (0..len)
                .map(|i| RankedResult {
                    file: FileId::new(i as u64),
                    encrypted_score: (len - i) as u64,
                })
                .collect(),
        )
    }

    fn ranking_bytes(ranking: &Arc<Vec<RankedResult>>) -> usize {
        entry_bytes::<Label, Vec<RankedResult>>(ranking)
    }

    fn big_budget() -> usize {
        1 << 20
    }

    #[test]
    fn hit_after_fill_returns_same_ranking() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        assert!(cache.get(&label(1)).is_none());
        let r = ranking(10);
        cache.insert_if_current(label(1), Arc::clone(&r), epoch);
        let hit = cache.get(&label(1)).expect("filled entry should hit");
        assert_eq!(*hit, *r);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn zero_budget_disables_everything() {
        let mut cache = RankingCache::new(0);
        assert!(!cache.is_enabled());
        let epoch = cache.epoch();
        assert!(cache.get(&label(1)).is_none());
        cache.insert_if_current(label(1), ranking(4), epoch);
        assert!(cache.get(&label(1)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn invalidate_drops_entry_and_rejects_inflight_fill() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);

        // A miss for label 2 snapshots the epoch, then an update lands.
        let fill_epoch = cache.epoch();
        cache.invalidate(&label(1));
        cache.insert_if_current(label(2), ranking(4), fill_epoch);

        assert!(cache.get(&label(1)).is_none(), "invalidated entry dropped");
        assert!(cache.get(&label(2)).is_none(), "stale fill rejected");
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.stale_fills, 1);
    }

    #[test]
    fn refill_after_invalidation_works() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);
        cache.invalidate(&label(1));
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(6), epoch);
        let hit = cache.get(&label(1)).expect("refill should stick");
        assert_eq!(hit.len(), 6);
    }

    #[test]
    fn lru_evicts_least_recently_used_under_budget() {
        // Budget fits exactly two 8-entry rankings, not three.
        let per_entry = ranking_bytes(&ranking(8));
        let mut cache = RankingCache::new(per_entry * 2);
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(8), epoch);
        cache.insert_if_current(label(2), ranking(8), epoch);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&label(1)).is_some());
        cache.insert_if_current(label(3), ranking(8), epoch);

        assert!(cache.get(&label(1)).is_some(), "recently used survives");
        assert!(cache.get(&label(2)).is_none(), "LRU victim evicted");
        assert!(cache.get(&label(3)).is_some(), "new entry resident");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_ranking_is_skipped_not_inserted() {
        let per_entry = ranking_bytes(&ranking(8));
        let mut cache = RankingCache::new(per_entry);
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(1000), epoch);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn replacing_an_entry_recharges_bytes() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(100), epoch);
        let big = cache.used_bytes();
        cache.insert_if_current(label(1), ranking(10), epoch);
        assert!(cache.used_bytes() < big, "smaller refill shrinks usage");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_all_clears_and_bumps_epoch() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);
        cache.insert_if_current(label(2), ranking(4), epoch);
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.stats().invalidations, 2);
        cache.insert_if_current(label(3), ranking(4), epoch);
        assert!(cache.is_empty(), "pre-clear epoch fill rejected");
    }

    #[test]
    fn compound_keys_are_cached_independently() {
        // The router's merged cache keys by (label, top_k): different
        // truncations of the same label are distinct entries.
        let mut cache: EpochCache<(Label, Option<usize>), Vec<RankedResult>> =
            EpochCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current((label(1), Some(5)), ranking(5), epoch);
        cache.insert_if_current((label(1), None), ranking(50), epoch);
        assert_eq!(cache.get(&(label(1), Some(5))).unwrap().len(), 5);
        assert_eq!(cache.get(&(label(1), None)).unwrap().len(), 50);
        assert!(cache.get(&(label(1), Some(9))).is_none());
        cache.invalidate(&(label(1), Some(5)));
        assert!(cache.get(&(label(1), Some(5))).is_none());
    }

    #[test]
    fn contended_readers_hit_in_parallel_through_a_shared_lock() {
        // The satellite guarantee behind the `Mutex` → `RwLock` switch in
        // `CloudServer`: `get` takes `&self`, so a read guard is enough to
        // hit, and the atomic counters stay exact under contention.
        let cache = {
            let mut cache = RankingCache::new(big_budget());
            let epoch = cache.epoch();
            cache.insert_if_current(label(1), ranking(16), epoch);
            cache.insert_if_current(label(2), ranking(16), epoch);
            parking_lot::RwLock::new(cache)
        };
        let cache = Arc::new(cache);
        const THREADS: u64 = 8;
        const READS: u64 = 1000;
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..READS {
                        let key = label(1 + ((t + i) % 2) as u8);
                        // All readers share the lock concurrently; every
                        // lookup must hit the prefilled entries.
                        let hit = cache.read().get(&key);
                        assert!(hit.is_some(), "prefilled entry must hit");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let stats = cache.read().stats();
        assert_eq!(stats.hits, THREADS * READS, "no hit lost under contention");
        assert_eq!(stats.misses, 0);
    }
}
