//! Server-side **hot-keyword ranking cache**.
//!
//! The server's headline cost is ranking: `RsseIndex::search` AES-unwraps
//! the *entire* posting list behind a trapdoor's label on every request,
//! even when millions of users hammer the same popular keyword. But the
//! ranked result of a trapdoor is exactly the access pattern the scheme
//! already reveals to the server (Curtmola et al.'s SSE formalization
//! treats the (trapdoor, result) pair as legitimate leakage), so caching
//! it server-side leaks nothing new — see DESIGN.md §6.3.
//!
//! [`RankingCache`] maps a posting-list [`Label`] to the **full** ranked
//! `(FileId, encrypted_score)` vector produced by the first search of that
//! trapdoor. Any later `top_k` is then a prefix copy of the cached vector
//! ([`rsse_core::ranked_prefix`]) — zero per-entry cryptographic work.
//! Entries are LRU-evicted under a byte budget and invalidated when score
//! dynamics touch their label.
//!
//! # Stale-fill protection
//!
//! The expensive miss path (decrypt + sort the whole posting list) must not
//! run under the cache lock, which opens a race: an update could invalidate
//! a label *while* a miss is computing that label's soon-to-be-stale
//! ranking. The cache therefore carries a global **epoch** counter, bumped
//! by every invalidation. A filler snapshots the epoch *before* reading the
//! index and hands it back to [`RankingCache::insert_if_current`], which
//! rejects the fill if any invalidation happened in between. Updates bump
//! the epoch *after* the index write completes, so a fill that passes the
//! epoch check is guaranteed to have read post-update (or untouched) state.

use std::collections::HashMap;
use std::sync::Arc;

use rsse_core::{Label, RankedResult};

/// Point-in-time snapshot of the cache's effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Searches served straight off a cached ranking.
    pub hits: u64,
    /// Searches that had to rank from the index.
    pub misses: u64,
    /// Entries dropped to stay under the byte budget.
    pub evictions: u64,
    /// Entries dropped because score dynamics touched their label.
    pub invalidations: u64,
    /// Fills rejected because an invalidation raced the ranking pass.
    pub stale_fills: u64,
}

#[derive(Debug)]
struct CacheEntry {
    ranking: Arc<Vec<RankedResult>>,
    bytes: usize,
    last_used: u64,
}

/// Byte-budgeted LRU cache of fully ranked posting lists, keyed by label.
///
/// A budget of `0` disables the cache entirely: [`RankingCache::get`]
/// always misses (without counting a miss) and fills are discarded, so the
/// serving path degenerates to the direct top-k heap search.
#[derive(Debug)]
pub struct RankingCache {
    entries: HashMap<Label, CacheEntry>,
    budget_bytes: usize,
    used_bytes: usize,
    /// Monotonic access clock driving LRU eviction.
    tick: u64,
    /// Bumped by every invalidation; guards against stale fills.
    epoch: u64,
    stats: CacheStats,
}

/// Approximate heap footprint of one cached ranking.
fn ranking_bytes(ranking: &[RankedResult]) -> usize {
    std::mem::size_of::<Arc<Vec<RankedResult>>>()
        + std::mem::size_of::<Label>()
        + std::mem::size_of::<CacheEntry>()
        + std::mem::size_of_val(ranking)
}

impl RankingCache {
    /// Creates a cache holding at most `budget_bytes` of ranked entries.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            entries: HashMap::new(),
            budget_bytes,
            used_bytes: 0,
            tick: 0,
            epoch: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache can ever hold an entry.
    pub fn is_enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// The current invalidation epoch. Snapshot this *before* reading the
    /// index on a miss and pass it to [`Self::insert_if_current`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Looks up the full ranking cached for `label`, refreshing its LRU
    /// position. Counts a hit or a miss; a disabled cache counts neither.
    pub fn get(&mut self, label: &Label) -> Option<Arc<Vec<RankedResult>>> {
        if !self.is_enabled() {
            return None;
        }
        self.tick += 1;
        match self.entries.get_mut(label) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(Arc::clone(&entry.ranking))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Fills `label` with a ranking computed while the cache was at
    /// `fill_epoch`. Rejected (and counted as a stale fill) if any
    /// invalidation has happened since the snapshot; oversized rankings
    /// that could never fit the budget are silently skipped.
    pub fn insert_if_current(
        &mut self,
        label: Label,
        ranking: Arc<Vec<RankedResult>>,
        fill_epoch: u64,
    ) {
        if !self.is_enabled() {
            return;
        }
        if fill_epoch != self.epoch {
            self.stats.stale_fills += 1;
            return;
        }
        let bytes = ranking_bytes(&ranking);
        if bytes > self.budget_bytes {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.entries.remove(&label) {
            self.used_bytes -= old.bytes;
        }
        while self.used_bytes + bytes > self.budget_bytes {
            self.evict_lru();
        }
        self.used_bytes += bytes;
        self.entries.insert(
            label,
            CacheEntry {
                ranking,
                bytes,
                last_used: self.tick,
            },
        );
    }

    /// Drops the cached ranking for `label` (if any) and bumps the epoch so
    /// in-flight fills for *any* label are rejected. Call *after* the index
    /// mutation is visible.
    pub fn invalidate(&mut self, label: &Label) {
        self.epoch += 1;
        if let Some(entry) = self.entries.remove(label) {
            self.used_bytes -= entry.bytes;
            self.stats.invalidations += 1;
        }
    }

    /// Drops everything and bumps the epoch.
    pub fn invalidate_all(&mut self) {
        self.epoch += 1;
        self.stats.invalidations += self.entries.len() as u64;
        self.used_bytes = 0;
        self.entries.clear();
    }

    /// Number of cached labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Effectiveness counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn evict_lru(&mut self) {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(_, entry)| entry.last_used)
            .map(|(label, _)| *label);
        let Some(label) = victim else {
            debug_assert!(false, "evict_lru called on an empty cache");
            self.used_bytes = 0;
            return;
        };
        let entry = self.entries.remove(&label).expect("victim exists");
        self.used_bytes -= entry.bytes;
        self.stats.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_ir::FileId;

    fn label(tag: u8) -> Label {
        [tag; 20]
    }

    fn ranking(len: usize) -> Arc<Vec<RankedResult>> {
        Arc::new(
            (0..len)
                .map(|i| RankedResult {
                    file: FileId::new(i as u64),
                    encrypted_score: (len - i) as u64,
                })
                .collect(),
        )
    }

    fn big_budget() -> usize {
        1 << 20
    }

    #[test]
    fn hit_after_fill_returns_same_ranking() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        assert!(cache.get(&label(1)).is_none());
        let r = ranking(10);
        cache.insert_if_current(label(1), Arc::clone(&r), epoch);
        let hit = cache.get(&label(1)).expect("filled entry should hit");
        assert_eq!(*hit, *r);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn zero_budget_disables_everything() {
        let mut cache = RankingCache::new(0);
        assert!(!cache.is_enabled());
        let epoch = cache.epoch();
        assert!(cache.get(&label(1)).is_none());
        cache.insert_if_current(label(1), ranking(4), epoch);
        assert!(cache.get(&label(1)).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn invalidate_drops_entry_and_rejects_inflight_fill() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);

        // A miss for label 2 snapshots the epoch, then an update lands.
        let fill_epoch = cache.epoch();
        cache.invalidate(&label(1));
        cache.insert_if_current(label(2), ranking(4), fill_epoch);

        assert!(cache.get(&label(1)).is_none(), "invalidated entry dropped");
        assert!(cache.get(&label(2)).is_none(), "stale fill rejected");
        let stats = cache.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.stale_fills, 1);
    }

    #[test]
    fn refill_after_invalidation_works() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);
        cache.invalidate(&label(1));
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(6), epoch);
        let hit = cache.get(&label(1)).expect("refill should stick");
        assert_eq!(hit.len(), 6);
    }

    #[test]
    fn lru_evicts_least_recently_used_under_budget() {
        // Budget fits exactly two 8-entry rankings, not three.
        let per_entry = ranking_bytes(&ranking(8));
        let mut cache = RankingCache::new(per_entry * 2);
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(8), epoch);
        cache.insert_if_current(label(2), ranking(8), epoch);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&label(1)).is_some());
        cache.insert_if_current(label(3), ranking(8), epoch);

        assert!(cache.get(&label(1)).is_some(), "recently used survives");
        assert!(cache.get(&label(2)).is_none(), "LRU victim evicted");
        assert!(cache.get(&label(3)).is_some(), "new entry resident");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.budget_bytes());
    }

    #[test]
    fn oversized_ranking_is_skipped_not_inserted() {
        let per_entry = ranking_bytes(&ranking(8));
        let mut cache = RankingCache::new(per_entry);
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(1000), epoch);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn replacing_an_entry_recharges_bytes() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(100), epoch);
        let big = cache.used_bytes();
        cache.insert_if_current(label(1), ranking(10), epoch);
        assert!(cache.used_bytes() < big, "smaller refill shrinks usage");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_all_clears_and_bumps_epoch() {
        let mut cache = RankingCache::new(big_budget());
        let epoch = cache.epoch();
        cache.insert_if_current(label(1), ranking(4), epoch);
        cache.insert_if_current(label(2), ranking(4), epoch);
        cache.invalidate_all();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
        assert_eq!(cache.stats().invalidations, 2);
        cache.insert_if_current(label(3), ranking(4), epoch);
        assert!(cache.is_empty(), "pre-clear epoch fill rejected");
    }
}
