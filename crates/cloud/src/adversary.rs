//! The honest-but-curious server as an adversary: statistical
//! reverse-engineering of keywords from encrypted score distributions.
//!
//! The paper's §IV-A threat: "with certain background information on the
//! file collection, the adversary may reverse-engineer the keyword
//! 'network' directly from the encrypted score distribution". This module
//! implements that attack so the defence (one-to-many OPM) can be measured:
//!
//! * [`duplicate_signature`] — deterministic OPSE preserves score
//!   multiplicities exactly; the sorted multiplicity vector is a robust
//!   keyword fingerprint.
//! * [`FrequencyAttack`] — matches an observed value multiset against
//!   candidate keywords' known plaintext level multisets by signature
//!   distance.
//! * [`shape_distance`] — histogram-shape comparison over the normalized
//!   value range (the Fig. 4 vs Fig. 6 experiment).

use rsse_analysis::{total_variation, Histogram};

/// The sorted-descending multiplicity vector of a value multiset — e.g.
/// `[5, 2, 1]` for a set with one value repeated 5×, one 2×, one unique.
///
/// # Example
///
/// ```
/// use rsse_cloud::adversary::duplicate_signature;
/// assert_eq!(duplicate_signature(&[7, 7, 7, 3, 3, 9]), vec![3, 2, 1]);
/// ```
pub fn duplicate_signature(values: &[u64]) -> Vec<usize> {
    let mut counts = std::collections::HashMap::new();
    for v in values {
        *counts.entry(*v).or_insert(0usize) += 1;
    }
    let mut sig: Vec<usize> = counts.into_values().collect();
    sig.sort_unstable_by(|a, b| b.cmp(a));
    sig
}

/// L1 distance between two signatures (aligned by rank, padded with zeros).
fn signature_distance(a: &[usize], b: &[usize]) -> usize {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            x.abs_diff(y)
        })
        .sum()
}

/// A guess returned by the frequency attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackGuess {
    /// The best-matching candidate keyword.
    pub keyword: String,
    /// Signature distance of the best match (0 = exact fingerprint).
    pub best_distance: usize,
    /// Distance of the runner-up (the attack is *confident* when
    /// `best_distance` is much smaller than `runner_up_distance`).
    pub runner_up_distance: usize,
}

impl AttackGuess {
    /// Whether the match is both exact and unambiguous.
    pub fn is_confident(&self) -> bool {
        self.best_distance == 0 && self.runner_up_distance > 0
    }
}

/// The duplicate-fingerprint attack with background knowledge: the
/// adversary knows, for each candidate keyword, the plaintext quantized
/// score multiset (e.g. from a public corpus with similar statistics).
///
/// # Example
///
/// ```
/// use rsse_cloud::adversary::FrequencyAttack;
///
/// let attack = FrequencyAttack::new(vec![
///     ("network".into(), vec![5, 5, 5, 9]),
///     ("cipher".into(), vec![1, 2, 3, 4]),
/// ]);
/// // Deterministic OPSE preserves multiplicities: [3,1] fingerprint.
/// let observed = [1111, 1111, 1111, 2222];
/// let guess = attack.guess(&observed).unwrap();
/// assert_eq!(guess.keyword, "network");
/// assert!(guess.is_confident());
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyAttack {
    /// `(keyword, plaintext level multiset)` background knowledge.
    candidates: Vec<(String, Vec<u64>)>,
}

impl FrequencyAttack {
    /// Builds the attack from background knowledge.
    pub fn new(candidates: Vec<(String, Vec<u64>)>) -> Self {
        FrequencyAttack { candidates }
    }

    /// Number of candidate keywords.
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Matches observed (encrypted) values against the candidates.
    ///
    /// Returns `None` with no candidates.
    pub fn guess(&self, observed: &[u64]) -> Option<AttackGuess> {
        let observed_sig = duplicate_signature(observed);
        let mut scored: Vec<(usize, &str)> = self
            .candidates
            .iter()
            .map(|(kw, levels)| {
                (
                    signature_distance(&observed_sig, &duplicate_signature(levels)),
                    kw.as_str(),
                )
            })
            .collect();
        scored.sort_by_key(|(d, _)| *d);
        let (best_distance, keyword) = *scored.first()?;
        let runner_up_distance = scored.get(1).map_or(usize::MAX, |(d, _)| *d);
        Some(AttackGuess {
            keyword: keyword.to_string(),
            best_distance,
            runner_up_distance,
        })
    }
}

/// Histogram-shape distance between an observed value multiset (binned over
/// its own min/max into `bins` containers) and a candidate plaintext level
/// multiset (binned over the level domain).
///
/// Small distance ⇒ the mapped distribution still mirrors the plaintext
/// shape (the deterministic-OPSE leak); distance near the random baseline ⇒
/// the shape was destroyed (the OPM defence, Fig. 6).
pub fn shape_distance(observed: &[u64], candidate_levels: &[u64], bins: usize) -> Option<f64> {
    let obs = Histogram::spanning(observed, bins)?;
    let cand = Histogram::spanning(candidate_levels, bins)?;
    total_variation(obs.counts(), cand.counts())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_basics() {
        assert_eq!(duplicate_signature(&[]), Vec::<usize>::new());
        assert_eq!(duplicate_signature(&[1, 2, 3]), vec![1, 1, 1]);
        assert_eq!(duplicate_signature(&[4, 4, 4, 4]), vec![4]);
    }

    #[test]
    fn signature_distance_properties() {
        assert_eq!(signature_distance(&[3, 2], &[3, 2]), 0);
        assert_eq!(signature_distance(&[3], &[1, 1, 1]), 4);
        assert_eq!(signature_distance(&[], &[2]), 2);
    }

    #[test]
    fn attack_identifies_unique_fingerprint() {
        let attack = FrequencyAttack::new(vec![
            ("alpha".into(), vec![1, 1, 1, 2]),
            ("beta".into(), vec![1, 2, 3, 4]),
            ("gamma".into(), vec![5, 5, 6, 6]),
        ]);
        // Observed multiset with multiplicities [3,1] → alpha.
        let g = attack.guess(&[900, 900, 900, 1]).unwrap();
        assert_eq!(g.keyword, "alpha");
        assert!(g.is_confident());
        // Multiplicities [2,2] → gamma.
        let g = attack.guess(&[7, 7, 9, 9]).unwrap();
        assert_eq!(g.keyword, "gamma");
        assert!(g.is_confident());
    }

    #[test]
    fn attack_is_defeated_by_all_distinct_values() {
        // After OPM every observed value is distinct: signature [1,1,...,1].
        // Against candidates that also have all-distinct levels the match is
        // ambiguous; against duplicate-rich candidates it is wrong-distance.
        let attack = FrequencyAttack::new(vec![
            ("alpha".into(), vec![1, 1, 1, 2]),
            ("beta".into(), vec![1, 2, 3, 4]),
        ]);
        let g = attack.guess(&[10, 20, 30, 40]).unwrap();
        // "beta" matches exactly — but so would any all-distinct candidate;
        // the point for the OPM defence is that *every* keyword's observed
        // multiset now looks like this, carrying no distinguishing signal.
        assert_eq!(g.keyword, "beta");
        let g2 = attack.guess(&[11, 21, 31, 41]).unwrap();
        assert_eq!(g.best_distance, g2.best_distance);
    }

    #[test]
    fn empty_candidates() {
        let attack = FrequencyAttack::new(vec![]);
        assert!(attack.guess(&[1, 2]).is_none());
    }

    #[test]
    fn shape_distance_detects_identical_shapes() {
        // Same shape at different scales: distance ~0.
        let plain: Vec<u64> = (0..100).map(|i| i % 10).collect();
        let scaled: Vec<u64> = plain.iter().map(|v| v * 1000).collect();
        let d = shape_distance(&scaled, &plain, 10).unwrap();
        assert!(d < 0.05, "distance {d}");
    }

    #[test]
    fn shape_distance_detects_flattening() {
        // Peaked plaintext vs uniform observed: large distance.
        let mut peaked = vec![5u64; 90];
        peaked.extend(0..10u64);
        let uniform: Vec<u64> = (0..100u64).collect();
        let d = shape_distance(&uniform, &peaked, 10).unwrap();
        assert!(d > 0.5, "distance {d}");
    }

    #[test]
    fn shape_distance_empty_inputs() {
        assert!(shape_distance(&[], &[1], 4).is_none());
    }
}
