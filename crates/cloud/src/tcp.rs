//! Real byte-stream serving: a non-blocking TCP event loop with
//! pipelining and backpressure.
//!
//! One **event-loop thread** owns the listening socket and every client
//! connection; a fixed **worker pool** (the same [`serve_frame`] serving
//! path the channel pool uses) does the ranking work. No
//! thread-per-connection anywhere: 512 idle connections cost 512 socket
//! fds and their buffers, not 512 stacks.
//!
//! # Event loop
//!
//! All sockets are non-blocking. Each sweep the loop: accepts every
//! waiting connection; drains worker completions into per-connection
//! write buffers (frames go out in *completion* order — that is the
//! pipelining); flushes write buffers until the kernel pushes back;
//! reads every readable connection, reassembling frames with
//! [`FrameAssembler`] from whatever byte splits the stream produced, and
//! hands each complete frame to the worker queue. A sweep that moves no
//! bytes parks on the completion channel for a fraction of a millisecond
//! — the only blocking point — so an idle server costs ~no CPU and a
//! busy one on a single core yields the core to its workers. This is
//! level-triggered readiness (`WouldBlock` = not ready) in safe std; the
//! repo forbids `unsafe`, which rules out `poll(2)` FFI, and the sweep
//! is behaviourally equivalent for the connection counts we serve.
//!
//! # Backpressure, composed
//!
//! Two independent pressure valves, one per resource:
//!
//! * **Worker overload** — the job queue is the same bounded backlog as
//!   the channel pool. A full queue answers *immediately* with the same
//!   byte-identical `Overloaded` error frame the in-process path sheds
//!   with, so clients see one overload protocol on both transports.
//! * **Slow reader** — a connection whose un-flushed write buffer
//!   exceeds its budget stops being *read* until it drains. Its own
//!   pipeline stalls (and TCP flow control propagates the stall to the
//!   client's socket); every other connection keeps its latency. Replies
//!   already owed keep flowing — the budget bounds memory, it never
//!   drops frames.
//!
//! A frame that fails reassembly (hostile length, garbage bytes) closes
//! the connection: a byte stream that lost framing sync cannot be
//! trusted to carry another request.

use crate::codec::{frame_message, ErrorKind, FrameAssembler, Message};
use crate::entities::CloudServer;
use crate::error::CloudError;
use crate::network::TrafficReport;
use crate::server_loop::{serve_frame, PoolOptions, OVERLOAD_DETAIL};
use crate::transport::{Connection, FrameMeter, Transport};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Socket read chunk size (event loop and client side alike).
const READ_CHUNK: usize = 64 << 10;
/// Reads one connection may take per sweep before yielding to the next —
/// fairness against a firehose peer.
const READS_PER_SWEEP: usize = 4;
/// How long an idle sweep parks on the completion channel.
const IDLE_PARK: Duration = Duration::from_micros(500);
/// Consumed write-buffer prefix past which the buffer is compacted.
const WRITE_COMPACT_THRESHOLD: usize = 64 << 10;
/// Cap on the post-stop drain: how long shutdown waits for in-flight
/// jobs and final flushes before abandoning them.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(5);

/// Configuration of a [`TcpServer`].
#[derive(Debug, Clone)]
pub struct TcpServerOptions {
    /// Worker pool shape and fault injection — the same options the
    /// channel pool takes ([`PoolOptions::deadline`] does not apply: on a
    /// byte stream the client owns its deadlines).
    pub pool: PoolOptions,
    /// Per-connection write-buffer budget in bytes: above it the
    /// connection stops being read until the peer drains replies.
    pub write_budget: usize,
}

impl TcpServerOptions {
    /// `workers` threads over a `backlog`-bounded job queue, with a
    /// 256 KiB per-connection write budget.
    pub fn new(workers: usize, backlog: usize) -> Self {
        TcpServerOptions {
            pool: PoolOptions::new(workers, backlog),
            write_budget: 256 << 10,
        }
    }

    /// Replaces the whole worker-pool configuration.
    #[must_use]
    pub fn with_pool(mut self, pool: PoolOptions) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the per-connection write-buffer budget.
    #[must_use]
    pub fn with_write_budget(mut self, budget: usize) -> Self {
        self.write_budget = budget.max(1);
        self
    }
}

/// Observable counters of a running [`TcpServer`] (monotone, lock-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpServerStats {
    /// Connections accepted since spawn.
    pub accepted: u64,
    /// Connections closed (peer EOF, write failure, or garbled stream).
    pub closed: u64,
    /// Connections closed because frame reassembly failed — hostile
    /// length prefix or lost sync.
    pub garbled: u64,
    /// Requests answered with the fast `Overloaded` frame because the
    /// worker backlog was full at arrival.
    pub overloaded: u64,
    /// Times a connection crossed its write budget and was paused — the
    /// slow-reader backpressure valve engaging.
    pub backpressure_stalls: u64,
}

#[derive(Debug, Default)]
struct SharedStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    garbled: AtomicU64,
    overloaded: AtomicU64,
    backpressure_stalls: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> TcpServerStats {
        TcpServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            garbled: self.garbled.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
        }
    }
}

/// One frame handed to the worker pool, tagged with enough connection
/// identity to route the completion back (the `gen` guards against a
/// connection slot being reused while a job is in flight).
enum Job {
    Frame {
        conn: usize,
        gen: u64,
        seq: u64,
        frame: Vec<u8>,
    },
    Shutdown,
}

struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    body: Vec<u8>,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    gen: u64,
    asm: FrameAssembler,
    /// Reply bytes owed to the peer; `write_pos` marks the flushed
    /// prefix.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Whether the connection is currently paused by the write budget
    /// (tracked to count each stall once).
    paused: bool,
}

impl Conn {
    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// A ranked-search server behind a real TCP listener. Spawn with
/// [`TcpServer::spawn`], connect with [`TcpTransport`] (or any client
/// that speaks `u32 len | u64 seq | body` frames), shut down with
/// [`TcpServer::shutdown`].
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    event_loop: Option<JoinHandle<u64>>,
    server: Arc<CloudServer>,
}

impl TcpServer {
    /// Binds `127.0.0.1:0` and spawns the event loop plus the worker
    /// pool over an already-shared server (replica pools over one
    /// `Arc<CloudServer>` compose exactly like
    /// [`crate::server_loop::ServerHandle::spawn_pool_shared`]).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] binding the listener or reading its address.
    pub fn spawn(server: Arc<CloudServer>, options: TcpServerOptions) -> io::Result<TcpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let backlog = options.pool.backlog.max(1);
        let workers = options.pool.workers.max(1);
        let (jobs_tx, jobs_rx) = bounded::<Job>(backlog);
        // Jobs in flight never exceed backlog + workers, and the loop
        // drains every sweep, so this capacity never blocks a worker.
        let (done_tx, done_rx) = bounded::<Completion>(backlog + workers + 1);
        let worker_handles: Vec<JoinHandle<u64>> = (0..workers)
            .map(|_| {
                let jobs_rx = jobs_rx.clone();
                let done_tx = done_tx.clone();
                let server = Arc::clone(&server);
                let io_delay = options.pool.io_delay;
                let fault = options.pool.fault.clone();
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    while let Ok(job) = jobs_rx.recv() {
                        let Job::Frame {
                            conn,
                            gen,
                            seq,
                            frame,
                        } = job
                        else {
                            break;
                        };
                        if let Some(delay) = io_delay {
                            std::thread::sleep(delay);
                        }
                        let body = serve_frame(&server, &frame, fault.as_ref());
                        served += 1;
                        if done_tx
                            .send(Completion {
                                conn,
                                gen,
                                seq,
                                body,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                    served
                })
            })
            .collect();
        let loop_stop = Arc::clone(&stop);
        let loop_stats = Arc::clone(&stats);
        let write_budget = options.write_budget.max(1);
        let event_loop = std::thread::spawn(move || {
            EventLoop {
                listener,
                conns: Vec::new(),
                free: Vec::new(),
                slot_gens: Vec::new(),
                jobs_tx,
                done_rx,
                stop: loop_stop,
                stats: loop_stats,
                write_budget,
                scratch: vec![0u8; READ_CHUNK],
                overload_body: Message::error(ErrorKind::Overloaded, OVERLOAD_DETAIL)
                    .encode()
                    .to_vec(),
            }
            .run(worker_handles)
        });
        Ok(TcpServer {
            addr,
            stop,
            stats,
            event_loop: Some(event_loop),
            server,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server behind the listener.
    pub fn server(&self) -> Arc<CloudServer> {
        Arc::clone(&self.server)
    }

    /// Current event-loop counters.
    pub fn stats(&self) -> TcpServerStats {
        self.stats.snapshot()
    }

    /// Stops accepting, drains in-flight jobs (bounded), flushes owed
    /// replies best-effort, joins the workers and the loop, and returns
    /// the total frames served — the same contract as
    /// [`crate::server_loop::ServerHandle::shutdown`].
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.event_loop
            .take()
            .expect("event loop joined exactly once")
            .join()
            .expect("event loop panicked")
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.event_loop.take() {
            // The loop notices the flag within one idle park; joining
            // here keeps drop deterministic for tests.
            let _ = handle.join();
        }
    }
}

struct EventLoop {
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Per-slot generation counters, bumped on close, so a completion
    /// for a dead connection can never reach the slot's new tenant.
    slot_gens: Vec<u64>,
    jobs_tx: Sender<Job>,
    done_rx: Receiver<Completion>,
    stop: Arc<AtomicBool>,
    stats: Arc<SharedStats>,
    write_budget: usize,
    scratch: Vec<u8>,
    overload_body: Vec<u8>,
}

impl EventLoop {
    fn run(mut self, workers: Vec<JoinHandle<u64>>) -> u64 {
        while !self.stop.load(Ordering::Acquire) {
            let mut progress = false;
            progress |= self.accept_sweep();
            progress |= self.drain_completions();
            progress |= self.write_sweep();
            progress |= self.read_sweep();
            if !progress {
                // Idle: park on the completion channel so a finishing
                // worker wakes the loop instantly while a quiet server
                // burns no CPU.
                match self.done_rx.recv_timeout(IDLE_PARK) {
                    Ok(completion) => self.queue_reply(completion),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        self.drain_and_join(workers)
    }

    /// Accepts every connection waiting on the listener.
    fn accept_sweep(&mut self) -> bool {
        let mut progress = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    progress = true;
                    let slot = match self.free.pop() {
                        Some(slot) => slot,
                        None => {
                            self.conns.push(None);
                            self.slot_gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    self.conns[slot] = Some(Conn {
                        stream,
                        gen: self.slot_gens[slot],
                        asm: FrameAssembler::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        paused: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        progress
    }

    /// Moves every finished job into its connection's write buffer.
    fn drain_completions(&mut self) -> bool {
        let mut progress = false;
        while let Ok(completion) = self.done_rx.recv_timeout(Duration::ZERO) {
            self.queue_reply(completion);
            progress = true;
        }
        progress
    }

    fn queue_reply(&mut self, completion: Completion) {
        let Completion {
            conn,
            gen,
            seq,
            body,
        } = completion;
        if let Some(Some(c)) = self.conns.get_mut(conn) {
            if c.gen == gen {
                c.write_buf.extend_from_slice(&frame_message(seq, &body));
            }
        }
    }

    /// Flushes every connection's owed bytes until the kernel pushes
    /// back.
    fn write_sweep(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            let mut broken = false;
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        progress = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if broken {
                self.close(slot);
                continue;
            }
            let conn = self.conns[slot].as_mut().expect("conn checked above");
            if conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
            } else if conn.write_pos > WRITE_COMPACT_THRESHOLD {
                conn.write_buf.drain(..conn.write_pos);
                conn.write_pos = 0;
            }
        }
        progress
    }

    /// Reads every connection under its write budget, reassembles frames,
    /// and submits them to the pool (or sheds with the overload frame).
    fn read_sweep(&mut self) -> bool {
        let mut progress = false;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_mut() else {
                continue;
            };
            // Backpressure: a peer that is not draining replies stops
            // being read. TCP flow control then stalls the peer's sends,
            // bounding both sides without dropping a frame.
            if conn.pending_write() > self.write_budget {
                if !conn.paused {
                    conn.paused = true;
                    self.stats
                        .backpressure_stalls
                        .fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            conn.paused = false;
            let mut eof = false;
            let mut io_dead = false;
            for _ in 0..READS_PER_SWEEP {
                match conn.stream.read(&mut self.scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.asm.feed(&self.scratch[..n]);
                        progress = true;
                        if n < self.scratch.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        io_dead = true;
                        break;
                    }
                }
            }
            let mut garbled = false;
            loop {
                let conn = self.conns[slot].as_mut().expect("conn present");
                match conn.asm.next_frame() {
                    Ok(Some((seq, frame))) => {
                        let gen = conn.gen;
                        self.submit(slot, gen, seq, frame);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        garbled = true;
                        break;
                    }
                }
            }
            if garbled {
                self.stats.garbled.fetch_add(1, Ordering::Relaxed);
                self.close(slot);
            } else if eof || io_dead {
                self.close(slot);
            }
        }
        progress
    }

    /// Hands one frame to the pool; a full backlog answers immediately
    /// with the byte-identical overload frame the channel path sheds
    /// with.
    fn submit(&mut self, slot: usize, gen: u64, seq: u64, frame: Vec<u8>) {
        match self.jobs_tx.try_send(Job::Frame {
            conn: slot,
            gen,
            seq,
            frame,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
                let reply = frame_message(seq, &self.overload_body);
                if let Some(Some(conn)) = self.conns.get_mut(slot) {
                    conn.write_buf.extend_from_slice(&reply);
                }
            }
            Err(TrySendError::Disconnected(_)) => {
                // Every worker died: nothing can be served any more.
                self.stop.store(true, Ordering::Release);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
            self.stats.closed.fetch_add(1, Ordering::Relaxed);
            self.slot_gens[slot] += 1;
            self.free.push(slot);
        }
    }

    /// Post-stop: let queued jobs finish, flush owed replies, retire the
    /// pool. Bounded by [`SHUTDOWN_DRAIN`] so a wedged peer cannot hang
    /// shutdown.
    fn drain_and_join(mut self, workers: Vec<JoinHandle<u64>>) -> u64 {
        // Sentinels queue *behind* already-accepted jobs (FIFO), so every
        // admitted request is still served before the workers retire.
        for _ in &workers {
            if self.jobs_tx.send(Job::Shutdown).is_err() {
                break;
            }
        }
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        let mut live: Vec<JoinHandle<u64>> = workers;
        let mut done: Vec<JoinHandle<u64>> = Vec::new();
        while !live.is_empty() && Instant::now() < deadline {
            while let Ok(completion) = self.done_rx.recv_timeout(Duration::from_millis(1)) {
                self.queue_reply(completion);
            }
            self.write_sweep();
            let (finished, running): (Vec<_>, Vec<_>) =
                live.into_iter().partition(|w| w.is_finished());
            done.extend(finished);
            live = running;
        }
        // Past the deadline any still-running worker is wedged on a fault
        // injection; joining it would hang shutdown, so its count is lost.
        done.extend(live.into_iter().filter(|w| w.is_finished()));
        let served = done.into_iter().map(|w| w.join().unwrap_or(0)).sum();
        while self.done_rx.recv_timeout(Duration::ZERO).is_ok() {}
        self.write_sweep();
        for slot in 0..self.conns.len() {
            self.close(slot);
        }
        served
    }
}

/// Client-side factory: opens pipelined [`TcpConnection`]s to one
/// server address, all metering into one shared [`FrameMeter`].
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    meter: Arc<FrameMeter>,
}

impl TcpTransport {
    /// A transport dialing `addr` (usually [`TcpServer::addr`]).
    pub fn new(addr: SocketAddr) -> Self {
        TcpTransport {
            addr,
            meter: Arc::new(FrameMeter::new()),
        }
    }

    /// [`Transport::connect`] returning the concrete connection type, for
    /// callers that need [`TcpConnection::recv_seq`].
    ///
    /// # Errors
    ///
    /// As [`Transport::connect`].
    pub fn dial(&self) -> Result<TcpConnection, CloudError> {
        TcpConnection::connect(self.addr, Arc::clone(&self.meter))
    }
}

impl Transport for TcpTransport {
    fn connect(&self) -> Result<Box<dyn Connection>, CloudError> {
        let conn = TcpConnection::connect(self.addr, Arc::clone(&self.meter))?;
        Ok(Box::new(conn))
    }

    fn traffic(&self) -> TrafficReport {
        self.meter.report()
    }
}

/// One pipelined client connection over a blocking socket: `send` writes
/// a frame and returns; replies are reassembled lazily by `recv_any` in
/// whatever order the server completed them.
#[derive(Debug)]
pub struct TcpConnection {
    stream: TcpStream,
    meter: Arc<FrameMeter>,
    next_seq: u64,
    asm: FrameAssembler,
    ready: VecDeque<(u64, Vec<u8>)>,
    scratch: Vec<u8>,
}

impl TcpConnection {
    fn connect(addr: SocketAddr, meter: Arc<FrameMeter>) -> Result<Self, CloudError> {
        let stream = TcpStream::connect(addr).map_err(|_| CloudError::Transport {
            context: "tcp connect failed",
        })?;
        stream
            .set_nodelay(true)
            .map_err(|_| CloudError::Transport {
                context: "tcp socket configuration failed",
            })?;
        Ok(TcpConnection {
            stream,
            meter,
            next_seq: 0,
            asm: FrameAssembler::new(),
            ready: VecDeque::new(),
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    /// Waits for the reply to one specific sequence id, buffering any
    /// other completions that arrive first (they stay collectable by
    /// later calls) — the out-of-order matching hook tests pin down.
    ///
    /// # Errors
    ///
    /// As [`Connection::recv_any`].
    pub fn recv_seq(&mut self, want: u64, timeout: Duration) -> Result<Vec<u8>, CloudError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(at) = self.ready.iter().position(|(seq, _)| *seq == want) {
                let (_, body) = self.ready.remove(at).expect("position just found");
                self.meter.note_down(&body);
                return Ok(body);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CloudError::Timeout { after: timeout });
            }
            self.fill_ready(remaining, timeout)?;
        }
    }

    /// Reads the socket until at least one frame lands in `ready`.
    fn fill_ready(&mut self, remaining: Duration, reported: Duration) -> Result<(), CloudError> {
        // Drain anything already buffered first.
        let mut got = false;
        while let Some((seq, body)) = self.asm.next_frame()? {
            self.ready.push_back((seq, body));
            got = true;
        }
        if got {
            return Ok(());
        }
        self.stream
            .set_read_timeout(Some(remaining))
            .map_err(|_| CloudError::Transport {
                context: "tcp socket configuration failed",
            })?;
        match self.stream.read(&mut self.scratch) {
            Ok(0) => Err(CloudError::Transport {
                context: "server closed the connection",
            }),
            Ok(n) => {
                self.asm.feed(&self.scratch[..n]);
                while let Some((seq, body)) = self.asm.next_frame()? {
                    self.ready.push_back((seq, body));
                }
                Ok(())
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Err(CloudError::Timeout { after: reported })
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(_) => Err(CloudError::Transport {
                context: "tcp read failed",
            }),
        }
    }
}

impl Connection for TcpConnection {
    fn send(&mut self, request: Message) -> Result<u64, CloudError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let body = request.encode();
        let frame = frame_message(seq, &body);
        self.stream
            .write_all(&frame)
            .map_err(|_| CloudError::Transport {
                context: "tcp write failed",
            })?;
        self.meter.note_up(body.len());
        Ok(seq)
    }

    fn recv_any(&mut self, timeout: Duration) -> Result<(u64, Vec<u8>), CloudError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some((seq, body)) = self.ready.pop_front() {
                self.meter.note_down(&body);
                return Ok((seq, body));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CloudError::Timeout { after: timeout });
            }
            self.fill_ready(remaining, timeout)?;
        }
    }
}
