//! Encrypted file storage: the collection `C` as the cloud holds it.

use rsse_crypto::ctr::Sealer;
use rsse_crypto::{CryptoError, SecretKey, SemanticCipher};
use rsse_ir::{Document, FileId};
use std::collections::HashMap;

/// One encrypted file as stored by (and fetched from) the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedFile {
    id: FileId,
    ciphertext: Vec<u8>,
}

impl EncryptedFile {
    /// Wraps an identifier/ciphertext pair.
    pub fn new(id: FileId, ciphertext: Vec<u8>) -> Self {
        EncryptedFile { id, ciphertext }
    }

    /// The file's identifier (`id(F)` is public — it must be, for retrieval).
    pub fn id(&self) -> FileId {
        self.id
    }

    /// The encrypted body.
    pub fn ciphertext(&self) -> &[u8] {
        &self.ciphertext
    }

    /// Size on the wire/disk in bytes.
    pub fn byte_len(&self) -> usize {
        self.ciphertext.len()
    }
}

/// Owner-side file encryption (AES-CTR under a dedicated file key).
#[derive(Debug)]
pub struct FileCrypter {
    key: SecretKey,
}

impl FileCrypter {
    /// Derives the file-encryption key from the owner's master seed.
    pub fn new(master_seed: &[u8]) -> Self {
        FileCrypter {
            key: SecretKey::derive(master_seed, "cloud/files"),
        }
    }

    /// Encrypts one document (nonce bound to the file id).
    pub fn encrypt(&self, doc: &Document) -> EncryptedFile {
        let mut sealer = Sealer::new(SemanticCipher::new(&self.key), doc.id().as_u64());
        EncryptedFile::new(doc.id(), sealer.seal(doc.text().as_bytes()))
    }

    /// Encrypts a whole collection.
    pub fn encrypt_collection(&self, docs: &[Document]) -> Vec<EncryptedFile> {
        docs.iter().map(|d| self.encrypt(d)).collect()
    }

    /// Decrypts a fetched file back to a [`Document`].
    ///
    /// # Errors
    ///
    /// [`CryptoError`] on truncated ciphertexts or non-UTF-8 plaintext
    /// (wrong key).
    pub fn decrypt(&self, file: &EncryptedFile) -> Result<Document, CryptoError> {
        let plain = SemanticCipher::new(&self.key).decrypt(file.ciphertext())?;
        let text = String::from_utf8(plain).map_err(|_| CryptoError::IntegrityCheckFailed)?;
        Ok(Document::new(file.id(), text))
    }
}

/// The server-side store of encrypted files.
#[derive(Debug, Clone, Default)]
pub struct FileStore {
    files: HashMap<FileId, EncryptedFile>,
}

impl FileStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests files (replacing same-id files).
    pub fn ingest(&mut self, files: Vec<EncryptedFile>) {
        for f in files {
            self.files.insert(f.id(), f);
        }
    }

    /// Fetches one file by id.
    pub fn fetch(&self, id: FileId) -> Option<&EncryptedFile> {
        self.files.get(&id)
    }

    /// Fetches many files, preserving the requested order and skipping
    /// unknown ids.
    pub fn fetch_many(&self, ids: &[FileId]) -> Vec<EncryptedFile> {
        ids.iter()
            .filter_map(|id| self.files.get(id).cloned())
            .collect()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(EncryptedFile::byte_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let c = FileCrypter::new(b"seed");
        let doc = Document::new(FileId::new(5), "the secret memo");
        let enc = c.encrypt(&doc);
        assert_ne!(enc.ciphertext(), doc.text().as_bytes());
        assert_eq!(c.decrypt(&enc).unwrap(), doc);
    }

    #[test]
    fn wrong_key_fails_closed() {
        let c1 = FileCrypter::new(b"seed-a");
        let c2 = FileCrypter::new(b"seed-b");
        let enc = c1.encrypt(&Document::new(FileId::new(1), "text"));
        // Wrong key yields garbage; practically always invalid UTF-8 for
        // real text. Either error or garbage-that-differs is acceptable;
        // never the plaintext.
        if let Ok(d) = c2.decrypt(&enc) {
            assert_ne!(d.text(), "text")
        }
    }

    #[test]
    fn store_fetch_semantics() {
        let c = FileCrypter::new(b"seed");
        let docs: Vec<Document> = (1..=5)
            .map(|i| Document::new(FileId::new(i), format!("doc {i}")))
            .collect();
        let mut store = FileStore::new();
        store.ingest(c.encrypt_collection(&docs));
        assert_eq!(store.len(), 5);
        assert!(store.fetch(FileId::new(3)).is_some());
        assert!(store.fetch(FileId::new(99)).is_none());
        let many = store.fetch_many(&[FileId::new(5), FileId::new(99), FileId::new(1)]);
        assert_eq!(many.len(), 2);
        assert_eq!(many[0].id(), FileId::new(5));
        assert_eq!(many[1].id(), FileId::new(1));
        assert!(store.total_bytes() > 0);
    }

    #[test]
    fn same_plaintext_different_ids_different_ciphertexts() {
        let c = FileCrypter::new(b"seed");
        let a = c.encrypt(&Document::new(FileId::new(1), "identical"));
        let b = c.encrypt(&Document::new(FileId::new(2), "identical"));
        assert_ne!(a.ciphertext(), b.ciphertext());
    }
}
