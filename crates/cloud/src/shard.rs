//! Scatter-gather serving over a sharded encrypted index.
//!
//! The paper's server holds one encrypted inverted index; the ROADMAP
//! north-star is a deployment serving millions of users, which means the
//! index must scale *out*. This module partitions an already-built RSSE
//! index across N independent [`CloudServer`] shards and serves ranked
//! search by scattering the trapdoor to every shard and merging their
//! locally ranked partial results.
//!
//! # Why sharding cannot change a ranking
//!
//! Three facts make the sharded result byte-identical to the single-server
//! one:
//!
//! 1. **The partition reuses the global ciphertexts.** The owner builds
//!    the index once — scores computed against global collection
//!    statistics, each OPM value seeded per `(keyword, file)` — and then
//!    routes the *finished* entries to shards by file-id hash
//!    ([`DataOwner::outsource_sharded`]). Rebuilding per shard would
//!    change IDF and OPM randomness, and with them the ranking.
//! 2. **Files partition disjointly**, so a shard's local top-k contains
//!    every one of its files that can appear in the global top-k: the
//!    union of per-shard top-k lists is a superset of the global top-k.
//! 3. **[`RankedResult`]'s order is total** (OPM score descending, ties
//!    toward the smaller file id), so the k-way merge
//!    ([`rsse_core::merge_ranked_streams`]) reproduces the single-server
//!    sort exactly, tie-breaks included.
//!
//! The `tests/shard_equivalence.rs` proptest suite pins this equivalence
//! for shard counts 1–8 against random corpora.
//!
//! # Degraded results, not failed queries
//!
//! Each scatter leg is answered with *some* frame — a
//! [`Message::ShardReply`] or a typed [`Message::Error`] — and legs fail
//! independently: a dead shard removes its partition from the result set
//! and is reported in [`ScatterOutcome::degraded`], while the surviving
//! shards' results still merge. Only when **every** leg fails does the
//! query itself fail, with [`CloudError::AllShardsFailed`].

use crate::codec::{ErrorKind, Message};
use crate::entities::{CloudServer, DataOwner, User};
use crate::error::CloudError;
use crate::files::EncryptedFile;
use crate::network::TrafficReport;
use crate::server_loop::{PendingReply, PoolOptions, ServerClient, ServerHandle};
use rsse_core::{merge_ranked_streams, RankedResult, RsseParams};
use rsse_ir::{Document, FileId};
use std::sync::Arc;
use std::time::Duration;

/// The partition rule: file → shard by hash of the file id.
///
/// The hash (SplitMix64) is keyless and public — *which shard holds a
/// file* is not a secret the scheme protects (the server already sees
/// file ids in every response), it only needs to spread load evenly and
/// deterministically so the owner and the router agree on placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPartitioner {
    num_shards: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IndexPartitioner {
    /// A partitioner over `num_shards` shards (clamped to at least 1).
    pub fn new(num_shards: usize) -> Self {
        IndexPartitioner {
            num_shards: num_shards.max(1),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `file`.
    pub fn shard_of(&self, file: FileId) -> usize {
        (splitmix64(file.as_u64()) % self.num_shards as u64) as usize
    }
}

/// One failed scatter leg: which shard, and why.
#[derive(Debug)]
pub struct DegradedLeg {
    /// The shard that did not contribute results.
    pub shard_id: u32,
    /// What its leg failed with (an error frame, a timeout, a dead
    /// transport, or an out-of-protocol reply).
    pub error: CloudError,
}

/// The outcome of one scatter-gather query.
#[derive(Debug)]
pub struct ScatterOutcome {
    /// Globally ranked results, best first — byte-identical to what the
    /// unsharded server would return *if no leg degraded*.
    pub ranking: Vec<RankedResult>,
    /// The ranked encrypted files, same order as `ranking`.
    pub files: Vec<EncryptedFile>,
    /// Aggregated traffic of every leg, shed attempts and error frames
    /// included ([`TrafficReport::shard_legs`] counts the legs).
    pub traffic: TrafficReport,
    /// Shards that answered with a usable reply.
    pub shards_ok: u32,
    /// Legs that failed — degraded coverage, reported, never silent. Empty
    /// means the ranking is complete.
    pub degraded: Vec<DegradedLeg>,
}

impl ScatterOutcome {
    /// Whether every shard contributed (no degraded coverage).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// The outcome of one *batched* scatter-gather
/// ([`ShardRouter::scatter_batch`]): several keywords resolved against
/// every shard in `num_shards` round trips total.
#[derive(Debug)]
pub struct BatchScatterOutcome {
    /// Per-query merged results, in batch order: each entry is the
    /// globally ranked list plus its aligned encrypted files — exactly
    /// what a [`ScatterOutcome`] would carry for that query alone.
    pub queries: Vec<(Vec<RankedResult>, Vec<EncryptedFile>)>,
    /// Aggregated traffic of every leg ([`TrafficReport::batched_queries`]
    /// counts the amortized queries).
    pub traffic: TrafficReport,
    /// Shards that answered with a usable reply.
    pub shards_ok: u32,
    /// Legs that failed — degraded coverage for *every* query in the
    /// batch, since a leg carries all of them.
    pub degraded: Vec<DegradedLeg>,
}

impl BatchScatterOutcome {
    /// Whether every shard contributed (no degraded coverage).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// Merges per-shard replies into one globally ranked result list with the
/// files aligned to it.
///
/// `rankings[s]` and `files[s]` are shard `s`'s reply, already in its
/// local rank order (files aligned to its ranking). The coordinator's
/// cost here is O(shards) allocations — the head heap, the cursor table,
/// the file iterators, and two pre-sized output vectors — never
/// O(results); the alloc-count regression suite pins the merge half of
/// this. Files are *moved* out of the replies, not cloned.
///
/// Provenance is recovered by per-shard cursors instead of a hash map:
/// the merged order restricted to one shard is a prefix of that shard's
/// local order, so whichever shard's cursor head equals the next merged
/// result is its source (ties drain toward the lower shard index, exactly
/// like the merge). A file that does not match its claimed result — a
/// misbehaving shard — is dropped rather than misattributed.
pub fn merge_shard_replies(
    rankings: &[Vec<RankedResult>],
    files: Vec<Vec<EncryptedFile>>,
    top_k: Option<usize>,
) -> (Vec<RankedResult>, Vec<EncryptedFile>) {
    let streams: Vec<&[RankedResult]> = rankings.iter().map(Vec::as_slice).collect();
    let merged = merge_ranked_streams(&streams, top_k);
    let mut cursors = vec![0usize; rankings.len()];
    let mut file_iters: Vec<std::vec::IntoIter<EncryptedFile>> =
        files.into_iter().map(Vec::into_iter).collect();
    let mut out_files = Vec::with_capacity(merged.len());
    for result in &merged {
        let source = (0..rankings.len())
            .find(|&s| rankings[s].get(cursors[s]) == Some(result))
            .expect("every merged result heads exactly one stream");
        cursors[source] += 1;
        match file_iters[source].next() {
            Some(file) if file.id() == result.file => out_files.push(file),
            _ => {} // shard sent fewer/misaligned files; drop, don't misattribute
        }
    }
    (merged, out_files)
}

/// The scatter-gather coordinator: one [`ServerClient`] per shard, a
/// per-leg deadline, and bounded retry against transient overload.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    clients: Vec<ServerClient>,
    deadline: Duration,
    attempts: u32,
    backoff: Duration,
}

impl ShardRouter {
    /// A router over `clients` (shard `i` is `clients[i]`) with a 5 s
    /// per-leg deadline and 3 overload-retry attempts at 2 ms base
    /// backoff.
    pub fn new(clients: Vec<ServerClient>) -> Self {
        ShardRouter {
            clients,
            deadline: Duration::from_secs(5),
            attempts: 3,
            backoff: Duration::from_millis(2),
        }
    }

    /// Sets the per-leg gather deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the overload-retry budget: up to `attempts` enqueue attempts
    /// per leg, sleeping `backoff` (doubled each retry) between them.
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Number of shards this router addresses.
    pub fn num_shards(&self) -> usize {
        self.clients.len()
    }

    /// Scatters `legs` (leg `i` to shard `i`) and gathers the merged
    /// top-`top_k` ranking.
    ///
    /// All legs are queued before any reply is awaited
    /// ([`ServerClient::call_async`]), so shards serve in parallel. A leg
    /// shed by a full backlog is retried within the router's retry
    /// budget; every other failure — an error frame, a deadline expiry, a
    /// dead worker, an out-of-protocol or misaddressed reply — degrades
    /// that shard's coverage and is reported in
    /// [`ScatterOutcome::degraded`]. Every attempt's bytes are metered,
    /// error frames included; a timed-out leg contributes its upstream
    /// bytes and an empty downstream.
    ///
    /// # Errors
    ///
    /// [`CloudError::AllShardsFailed`] when no shard produced a usable
    /// reply.
    ///
    /// # Panics
    ///
    /// Panics when `legs.len()` differs from the router's shard count —
    /// a misassembled scatter is a programming error, not a wire fault.
    pub fn scatter(
        &self,
        legs: Vec<Message>,
        top_k: Option<usize>,
    ) -> Result<ScatterOutcome, CloudError> {
        assert_eq!(
            legs.len(),
            self.clients.len(),
            "one leg per shard, in shard order"
        );
        let mut traffic = TrafficReport::default();

        // Scatter: queue every leg before waiting on any. Overload sheds
        // are answered round trips (the front door priced them), so each
        // attempt meters as its own leg.
        let mut states = Vec::with_capacity(legs.len());
        for (client, leg) in self.clients.iter().zip(&legs) {
            states.push(self.queue_with_retry(client, leg, &mut traffic));
        }

        // Gather: collect every pending leg under the per-leg deadline.
        let mut rankings: Vec<Vec<RankedResult>> = Vec::with_capacity(states.len());
        let mut shard_files: Vec<Vec<EncryptedFile>> = Vec::with_capacity(states.len());
        let mut degraded = Vec::new();
        for (shard, (state, leg)) in states.into_iter().zip(&legs).enumerate() {
            let shard = shard as u32;
            let up = leg.wire_len();
            let pending = match state {
                Ok(p) => p,
                Err(error) => {
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                    continue;
                }
            };
            match pending.wait(Some(self.deadline)) {
                Ok(Message::ShardReply {
                    shard_id,
                    ranking,
                    files,
                }) if shard_id == shard => {
                    let reply_len = Message::ShardReply {
                        shard_id,
                        ranking: ranking.clone(),
                        files: files.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, reply_len, false));
                    rankings.push(
                        ranking
                            .into_iter()
                            .map(|(id, encrypted_score)| RankedResult {
                                file: FileId::new(id),
                                encrypted_score,
                            })
                            .collect(),
                    );
                    shard_files.push(files);
                }
                Ok(other) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, other.wire_len(), false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::UnexpectedMessage {
                            expected: "ShardReply addressed to this shard",
                        },
                    });
                }
                Err(CloudError::Server { kind, detail }) => {
                    // The codec is canonical, so rebuilding the frame
                    // reproduces its exact wire size.
                    let frame_len = Message::Error {
                        kind,
                        detail: detail.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, frame_len, true));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::Server { kind, detail },
                    });
                }
                Err(error) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, 0, false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                }
            }
        }

        let shards_ok = rankings.len() as u32;
        if shards_ok == 0 {
            return Err(CloudError::AllShardsFailed {
                shards: self.clients.len() as u32,
            });
        }
        let (ranking, files) = merge_shard_replies(&rankings, shard_files, top_k);
        Ok(ScatterOutcome {
            ranking,
            files,
            traffic,
            shards_ok,
            degraded,
        })
    }

    /// Queues one leg under the router's overload-retry budget, metering
    /// every shed attempt; `Err` is a leg that never got queued.
    fn queue_with_retry(
        &self,
        client: &ServerClient,
        leg: &Message,
        traffic: &mut TrafficReport,
    ) -> Result<PendingReply, CloudError> {
        let shed_frame_len =
            Message::error(ErrorKind::Overloaded, "request backlog is full").wire_len();
        let up = leg.wire_len();
        let mut wait = self.backoff;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match client.call_async(leg.clone()) {
                Ok(pending) => return Ok(pending),
                Err(
                    e @ CloudError::Server {
                        kind: ErrorKind::Overloaded,
                        ..
                    },
                ) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, shed_frame_len, true));
                    if attempt >= self.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(wait);
                    wait = wait.saturating_mul(2);
                }
                Err(e) => {
                    // Dead transport: the request never left; meter the
                    // attempted upstream bytes only.
                    traffic.absorb(&TrafficReport::shard_leg(up, 0, false));
                    return Err(e);
                }
            }
        }
    }

    /// Batched scatter-gather: `legs[i]` is a [`Message::BatchRequest`]
    /// addressed to shard `i` (`shard_id == Some(i)`), every leg carrying
    /// the *same* query sequence. Each query's per-shard partial rankings
    /// are merged exactly like [`ShardRouter::scatter`] merges a single
    /// query's, so every entry of [`BatchScatterOutcome::queries`] is
    /// byte-identical to what an unbatched scatter of that query would
    /// return — the whole batch costs one round trip per shard instead of
    /// one per `(query, shard)` pair.
    ///
    /// A reply that echoes the wrong shard id, carries `shard_id: None`,
    /// or answers a different number of queries than asked is out of
    /// protocol and degrades its leg.
    ///
    /// # Errors
    ///
    /// [`CloudError::AllShardsFailed`] when no shard produced a usable
    /// reply.
    ///
    /// # Panics
    ///
    /// Panics when `legs.len()` differs from the router's shard count, on
    /// a non-`BatchRequest` leg, or when legs disagree on the query
    /// sequence length — a misassembled scatter is a programming error,
    /// not a wire fault.
    pub fn scatter_batch(
        &self,
        legs: Vec<Message>,
        top_k: Option<usize>,
    ) -> Result<BatchScatterOutcome, CloudError> {
        assert_eq!(
            legs.len(),
            self.clients.len(),
            "one leg per shard, in shard order"
        );
        let num_queries = legs
            .iter()
            .map(|leg| match leg {
                Message::BatchRequest { queries, .. } => queries.len(),
                other => panic!("scatter_batch leg must be a BatchRequest, got {other:?}"),
            })
            .max()
            .unwrap_or(0);
        for leg in &legs {
            if let Message::BatchRequest { queries, .. } = leg {
                assert_eq!(
                    queries.len(),
                    num_queries,
                    "every shard's leg must carry the same query sequence"
                );
            }
        }
        let mut traffic = TrafficReport::default();

        let mut states = Vec::with_capacity(legs.len());
        for (client, leg) in self.clients.iter().zip(&legs) {
            let state = self.queue_with_retry(client, leg, &mut traffic);
            if state.is_ok() {
                traffic.batched_queries += num_queries as u32;
            }
            states.push(state);
        }

        let mut per_shard: Vec<Vec<crate::BatchResult>> = Vec::with_capacity(states.len());
        let mut degraded = Vec::new();
        for (shard, (state, leg)) in states.into_iter().zip(&legs).enumerate() {
            let shard = shard as u32;
            let up = leg.wire_len();
            let pending = match state {
                Ok(p) => p,
                Err(error) => {
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                    continue;
                }
            };
            match pending.wait(Some(self.deadline)) {
                Ok(Message::BatchReply { shard_id, results })
                    if shard_id == Some(shard) && results.len() == num_queries =>
                {
                    let reply_len = Message::BatchReply {
                        shard_id,
                        results: results.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, reply_len, false));
                    per_shard.push(results);
                }
                Ok(other) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, other.wire_len(), false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::UnexpectedMessage {
                            expected: "BatchReply addressed to this shard",
                        },
                    });
                }
                Err(CloudError::Server { kind, detail }) => {
                    let frame_len = Message::Error {
                        kind,
                        detail: detail.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, frame_len, true));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::Server { kind, detail },
                    });
                }
                Err(error) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, 0, false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                }
            }
        }

        let shards_ok = per_shard.len() as u32;
        if shards_ok == 0 {
            return Err(CloudError::AllShardsFailed {
                shards: self.clients.len() as u32,
            });
        }
        // Transpose shard-major replies into query-major merges: query q's
        // partial rankings across the surviving shards merge exactly like
        // a single scattered query's.
        let mut shard_iters: Vec<std::vec::IntoIter<crate::BatchResult>> =
            per_shard.into_iter().map(Vec::into_iter).collect();
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let mut rankings: Vec<Vec<RankedResult>> = Vec::with_capacity(shard_iters.len());
            let mut files: Vec<Vec<EncryptedFile>> = Vec::with_capacity(shard_iters.len());
            for iter in &mut shard_iters {
                let (ranking, shard_files) = iter.next().expect("length validated at gather");
                rankings.push(
                    ranking
                        .into_iter()
                        .map(|(id, encrypted_score)| RankedResult {
                            file: FileId::new(id),
                            encrypted_score,
                        })
                        .collect(),
                );
                files.push(shard_files);
            }
            queries.push(merge_shard_replies(&rankings, files, top_k));
        }
        Ok(BatchScatterOutcome {
            queries,
            traffic,
            shards_ok,
            degraded,
        })
    }
}

/// A complete sharded deployment: owner, N shard server pools, router,
/// and one authorized user.
pub struct ShardedDeployment {
    owner: DataOwner,
    user: User,
    partitioner: IndexPartitioner,
    handles: Vec<ServerHandle>,
    router: ShardRouter,
}

impl core::fmt::Debug for ShardedDeployment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ShardedDeployment {{ shards: {} }}",
            self.partitioner.num_shards()
        )
    }
}

impl ShardedDeployment {
    /// Bootstraps `num_shards` shard pools over `docs`, each with the
    /// same `options` (workers, backlog, deadline, faults).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        options: PoolOptions,
    ) -> Result<Self, CloudError> {
        Self::bootstrap_with(master_seed, params, docs, num_shards, |_| options.clone())
    }

    /// [`Self::bootstrap`] with per-shard pool options — how the fault
    /// tests wedge exactly one shard while the others serve.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap_with(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        mut options_for: impl FnMut(usize) -> PoolOptions,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let handles: Vec<ServerHandle> = owner
            .outsource_sharded(docs, &partitioner)?
            .into_iter()
            .enumerate()
            .map(|(shard, outsource)| {
                // Over the wire exactly as deployed: each shard boots from
                // its own decoded Outsource frame.
                let frame = outsource.encode();
                let server = CloudServer::from_outsource(Message::decode(frame)?)?;
                Ok(ServerHandle::spawn_pool_with(server, options_for(shard)))
            })
            .collect::<Result<_, CloudError>>()?;
        let router = ShardRouter::new(handles.iter().map(ServerHandle::client).collect());
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            router,
        })
    }

    /// [`Self::bootstrap`] onto the on-disk segment backend: each shard's
    /// partition of the (globally built) index is persisted to
    /// `segment_dir/shard-<i>.idx` and served from disk via
    /// [`CloudServer::from_outsource_segment`] — one segment per shard,
    /// same ciphertexts, so sharded rankings stay byte-identical to the
    /// in-memory path.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures and segment I/O failures.
    pub fn bootstrap_segmented(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        segment_dir: impl AsRef<std::path::Path>,
        options: PoolOptions,
    ) -> Result<Self, CloudError> {
        let segment_dir = segment_dir.as_ref();
        std::fs::create_dir_all(segment_dir).map_err(rsse_core::PersistError::from)?;
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let handles: Vec<ServerHandle> = owner
            .outsource_sharded(docs, &partitioner)?
            .into_iter()
            .enumerate()
            .map(|(shard, outsource)| {
                let frame = outsource.encode();
                let server = CloudServer::from_outsource_segment(
                    Message::decode(frame)?,
                    segment_dir.join(format!("shard-{shard}.idx")),
                    CloudServer::DEFAULT_CACHE_BUDGET,
                )?;
                Ok(ServerHandle::spawn_pool_with(server, options.clone()))
            })
            .collect::<Result<_, CloudError>>()?;
        let router = ShardRouter::new(handles.iter().map(ServerHandle::client).collect());
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            router,
        })
    }

    /// The authorized user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// The data owner.
    pub fn owner(&self) -> &DataOwner {
        &self.owner
    }

    /// The partition rule shards were populated under.
    pub fn partitioner(&self) -> IndexPartitioner {
        self.partitioner
    }

    /// The scatter-gather coordinator.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shared handle to shard `i`'s server (audit log, raw index), if it
    /// exists.
    pub fn shard_server(&self, shard: usize) -> Option<Arc<CloudServer>> {
        self.handles.get(shard).map(ServerHandle::server)
    }

    /// Sharded ranked search: scatter the keyword's trapdoor to every
    /// shard, merge, and decrypt the top-k files.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures, and [`CloudError::AllShardsFailed`]
    /// when no shard replied.
    pub fn rsse_search(
        &self,
        keyword: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<Document>, ScatterOutcome), CloudError> {
        let legs = self
            .user
            .shard_query(keyword, top_k, self.router.num_shards() as u32)?;
        let outcome = self.router.scatter(legs, top_k.map(|k| k as usize))?;
        let docs = self.user.decrypt_files(&outcome.files)?;
        Ok((docs, outcome))
    }

    /// Batched sharded ranked search: every keyword's trapdoor rides the
    /// same scatter leg to each shard ([`User::batch_shard_query`]), and
    /// each keyword's merged ranking comes back byte-identical to a
    /// dedicated [`ShardedDeployment::rsse_search`] for it. Returns the
    /// decrypted top-k documents per keyword, in request order.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures, and [`CloudError::AllShardsFailed`]
    /// when no shard replied.
    pub fn rsse_search_batch(
        &self,
        keywords: &[&str],
        top_k: Option<u32>,
    ) -> Result<(Vec<Vec<Document>>, BatchScatterOutcome), CloudError> {
        let legs = self
            .user
            .batch_shard_query(keywords, top_k, self.router.num_shards() as u32)?;
        let outcome = self.router.scatter_batch(legs, top_k.map(|k| k as usize))?;
        let docs = outcome
            .queries
            .iter()
            .map(|(_, files)| self.user.decrypt_files(files))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((docs, outcome))
    }

    /// Shuts every shard pool down, returning the total requests served
    /// across all shards.
    pub fn shutdown(self) -> u64 {
        self.handles.into_iter().map(ServerHandle::shutdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_loop::Fault;
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
    use std::sync::Once;

    /// Silences the default panic printout for the panics this suite
    /// injects on purpose; genuine panics still print.
    fn quiet_injected_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }

    fn rr(file: u64, score: u64) -> RankedResult {
        RankedResult {
            file: FileId::new(file),
            encrypted_score: score,
        }
    }

    fn ef(id: u64) -> EncryptedFile {
        EncryptedFile::new(FileId::new(id), vec![id as u8; 8])
    }

    #[test]
    fn partitioner_is_deterministic_and_covers_all_shards() {
        for n in 1..=8usize {
            let p = IndexPartitioner::new(n);
            assert_eq!(p.num_shards(), n);
            let mut hit = vec![false; n];
            for id in 0..256u64 {
                let s = p.shard_of(FileId::new(id));
                assert!(s < n);
                assert_eq!(s, p.shard_of(FileId::new(id)), "deterministic");
                hit[s] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "256 files must touch all {n} shards"
            );
        }
        assert_eq!(IndexPartitioner::new(0).num_shards(), 1, "clamped");
    }

    #[test]
    fn merge_aligns_files_with_duplicate_scores_and_empty_shards() {
        // Shard 0 and 1 tie on score 90 (distinct files); shard 2 is empty.
        let rankings = vec![
            vec![rr(4, 90), rr(1, 10)],
            vec![rr(2, 90), rr(7, 50)],
            vec![],
        ];
        let files = vec![vec![ef(4), ef(1)], vec![ef(2), ef(7)], vec![]];
        let (ranking, out_files) = merge_shard_replies(&rankings, files, Some(3));
        assert_eq!(ranking, vec![rr(2, 90), rr(4, 90), rr(7, 50)]);
        let ids: Vec<u64> = out_files.iter().map(|f| f.id().as_u64()).collect();
        assert_eq!(ids, vec![2, 4, 7], "files track the merged rank order");
        // k beyond the total returns everything, still aligned.
        let files = vec![vec![ef(4), ef(1)], vec![ef(2), ef(7)], vec![]];
        let (all, all_files) = merge_shard_replies(&rankings, files, Some(99));
        assert_eq!(all.len(), 4);
        assert_eq!(all_files.len(), 4);
    }

    #[test]
    fn merge_drops_misaligned_files_instead_of_misattributing() {
        let rankings = vec![vec![rr(4, 90)]];
        // The shard claims result 4 but ships file 9.
        let files = vec![vec![ef(9)]];
        let (ranking, out_files) = merge_shard_replies(&rankings, files, None);
        assert_eq!(ranking, vec![rr(4, 90)]);
        assert!(out_files.is_empty(), "a lying shard's file is dropped");
    }

    fn small_docs(seed: u64) -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusParams::small(seed))
    }

    #[test]
    fn sharded_search_round_trips_and_meters_legs() {
        let corpus = small_docs(71);
        let cloud = ShardedDeployment::bootstrap(
            b"shard seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        let (docs, outcome) = cloud.rsse_search("network", Some(5)).unwrap();
        assert_eq!(outcome.ranking.len(), 5);
        assert_eq!(docs.len(), 5);
        assert!(outcome.is_complete());
        assert_eq!(outcome.shards_ok, 3);
        assert_eq!(outcome.traffic.shard_legs, 3);
        assert_eq!(outcome.traffic.round_trips, 3);
        assert_eq!(outcome.traffic.error_frames, 0);
        assert!(outcome.traffic.bytes_down > 0);
        // Each shard audited exactly one scatter leg.
        for shard in 0..3 {
            let report = cloud.shard_server(shard).unwrap().serving_report();
            assert_eq!(report.shard_queries, 1, "shard {shard}");
        }
        assert_eq!(cloud.shutdown(), 3);
    }

    #[test]
    fn batched_scatter_matches_per_keyword_scatter() {
        let corpus = small_docs(75);
        let cloud = ShardedDeployment::bootstrap(
            b"batch shard seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            PoolOptions::new(1, 16),
        )
        .unwrap();
        let keywords = ["network", "data"];

        // Reference: one scatter per keyword.
        let singles: Vec<Vec<RankedResult>> = keywords
            .iter()
            .map(|kw| cloud.rsse_search(kw, Some(5)).unwrap().1.ranking)
            .collect();

        let (docs, outcome) = cloud.rsse_search_batch(&keywords, Some(5)).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.shards_ok, 3);
        assert_eq!(outcome.queries.len(), keywords.len());
        for (q, (ranking, files)) in outcome.queries.iter().enumerate() {
            assert_eq!(
                ranking, &singles[q],
                "batched merge must equal the dedicated scatter for query {q}"
            );
            assert_eq!(files.len(), ranking.len());
        }
        assert_eq!(docs.len(), keywords.len());
        // 2 keywords × 3 shards amortized into 3 legs / round trips.
        assert_eq!(outcome.traffic.shard_legs, 3);
        assert_eq!(outcome.traffic.round_trips, 3);
        assert_eq!(outcome.traffic.batched_queries, 6);
        cloud.shutdown();
    }

    #[test]
    fn batched_scatter_misaddressed_reply_degrades() {
        let corpus = small_docs(76);
        let cloud = ShardedDeployment::bootstrap(
            b"batch misroute seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        let mut legs = cloud
            .user()
            .batch_shard_query(&["network"], Some(3), 2)
            .unwrap();
        legs.swap(0, 1);
        let err = cloud.router().scatter_batch(legs, Some(3)).unwrap_err();
        assert!(matches!(err, CloudError::AllShardsFailed { shards: 2 }));
        cloud.shutdown();
    }

    #[test]
    fn one_faulted_shard_degrades_the_result_set_not_the_query() {
        quiet_injected_panics();
        let corpus = small_docs(72);
        let faulty = 1usize;
        let cloud = ShardedDeployment::bootstrap_with(
            b"degrade seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            |shard| {
                let options = PoolOptions::new(1, 8);
                if shard == faulty {
                    options.with_fault(|msg| {
                        matches!(msg, Message::ShardQuery { .. }).then_some(Fault::Panic("boom"))
                    })
                } else {
                    options
                }
            },
        )
        .unwrap();

        let (_, healthy) = cloud.rsse_search("network", None).unwrap();
        // Re-run with the fault armed on shard 1 only: the query still
        // succeeds, minus exactly shard 1's partition.
        let (docs, outcome) = cloud.rsse_search("network", None).unwrap();
        assert_eq!(outcome.shards_ok, 2);
        assert_eq!(outcome.degraded.len(), 1, "degradation is reported");
        let leg = &outcome.degraded[0];
        assert_eq!(leg.shard_id, faulty as u32);
        assert!(
            matches!(&leg.error, CloudError::Server { kind, .. } if *kind == ErrorKind::Internal),
            "the dead leg carries the shard's error frame: {:?}",
            leg.error
        );
        // The error frame's bytes are on the wire like any reply.
        assert_eq!(outcome.traffic.error_frames, 1);
        assert_eq!(outcome.traffic.shard_legs, 3);
        // Surviving shards' results are intact: the degraded ranking is
        // the healthy one minus the faulted shard's files.
        let p = cloud.partitioner();
        let expect: Vec<RankedResult> = healthy
            .ranking
            .iter()
            .copied()
            .filter(|r| p.shard_of(r.file) != faulty)
            .collect();
        assert_eq!(outcome.ranking, expect);
        assert_eq!(docs.len(), outcome.ranking.len());
        cloud.shutdown();
    }

    #[test]
    fn all_shards_failing_is_an_error_not_an_empty_result() {
        quiet_injected_panics();
        let corpus = small_docs(73);
        let cloud = ShardedDeployment::bootstrap_with(
            b"total loss seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            |_| {
                PoolOptions::new(1, 8).with_fault(|msg| {
                    matches!(msg, Message::ShardQuery { .. }).then_some(Fault::Panic("boom"))
                })
            },
        )
        .unwrap();
        let err = cloud.rsse_search("network", Some(3)).unwrap_err();
        assert!(
            matches!(err, CloudError::AllShardsFailed { shards: 2 }),
            "got {err:?}"
        );
        cloud.shutdown();
    }

    #[test]
    fn misaddressed_reply_degrades_the_leg() {
        // A leg whose reply echoes the wrong shard id is out of protocol.
        let corpus = small_docs(74);
        let cloud = ShardedDeployment::bootstrap(
            b"misroute seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        // Hand-build legs that swap the shard ids: each shard answers with
        // an echo that fails the router's correlation check.
        let mut legs = cloud.user().shard_query("network", Some(3), 2).unwrap();
        legs.swap(0, 1);
        let err = cloud.router().scatter(legs, Some(3)).unwrap_err();
        assert!(matches!(err, CloudError::AllShardsFailed { shards: 2 }));
        cloud.shutdown();
    }
}
