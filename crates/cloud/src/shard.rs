//! Scatter-gather serving over a sharded encrypted index.
//!
//! The paper's server holds one encrypted inverted index; the ROADMAP
//! north-star is a deployment serving millions of users, which means the
//! index must scale *out*. This module partitions an already-built RSSE
//! index across N independent [`CloudServer`] shards and serves ranked
//! search by scattering the trapdoor to every shard and merging their
//! locally ranked partial results.
//!
//! # Why sharding cannot change a ranking
//!
//! Three facts make the sharded result byte-identical to the single-server
//! one:
//!
//! 1. **The partition reuses the global ciphertexts.** The owner builds
//!    the index once — scores computed against global collection
//!    statistics, each OPM value seeded per `(keyword, file)` — and then
//!    routes the *finished* entries to shards by file-id hash
//!    ([`DataOwner::outsource_sharded`]). Rebuilding per shard would
//!    change IDF and OPM randomness, and with them the ranking.
//! 2. **Files partition disjointly**, so a shard's local top-k contains
//!    every one of its files that can appear in the global top-k: the
//!    union of per-shard top-k lists is a superset of the global top-k.
//! 3. **[`RankedResult`]'s order is total** (OPM score descending, ties
//!    toward the smaller file id), so the k-way merge
//!    ([`rsse_core::merge_ranked_streams`]) reproduces the single-server
//!    sort exactly, tie-breaks included.
//!
//! The `tests/shard_equivalence.rs` proptest suite pins this equivalence
//! for shard counts 1–8 against random corpora.
//!
//! # Degraded results, not failed queries
//!
//! Each scatter leg is answered with *some* frame — a
//! [`Message::ShardReply`] or a typed [`Message::Error`] — and legs fail
//! independently: a dead shard removes its partition from the result set
//! and is reported in [`ScatterOutcome::degraded`], while the surviving
//! shards' results still merge. Only when **every** leg fails does the
//! query itself fail, with [`CloudError::AllShardsFailed`].
//!
//! # Routing efficiency: pruning, the merged cache, and replicas
//!
//! A naive scatter pays one leg per shard per query even though most
//! posting lists live on a few shards. Three opt-in features
//! ([`RouterOptions`], wired by [`ShardedDeployment::bootstrap_tuned`])
//! cut that fan-out without changing a single result byte — DESIGN.md
//! §6.5 carries the full protocol and leakage argument:
//!
//! * **Label-filter pruning** — each shard publishes an epoch-tagged set
//!   of the posting-list labels it owns *real* entries for. The router
//!   skips shards whose filter provably excludes the query label; a
//!   pruned shard could only have answered with padding entries, which
//!   ranking drops anyway, so the merge is unchanged. Filters are
//!   refreshed over the wire ([`Message::FilterRequest`]) whenever a
//!   shard's epoch watch moves, and a shard whose filter cannot be
//!   confirmed current is simply not pruned — staleness degrades to the
//!   full scatter, never to a wrong answer.
//! * **Merged-result cache** — the router caches whole merged outcomes
//!   keyed by `(label, top_k)` under the same epoch-guarded fill
//!   discipline as the per-shard ranking cache, so a hot keyword costs
//!   zero legs. Any observed epoch movement flushes it.
//! * **Replica reads** — each shard may be served by several worker pools
//!   sharing one `Arc<CloudServer>`; the router routes each leg to the
//!   less-loaded of two pseudo-randomly chosen replicas
//!   (power-of-two-choices on in-flight counts).

use crate::cache::{CacheStats, CacheWeight, EpochCache};
use crate::codec::{ErrorKind, Message};
use crate::entities::{CloudServer, DataOwner, User};
use crate::error::CloudError;
use crate::files::EncryptedFile;
use crate::network::TrafficReport;
use crate::server_loop::{PendingReply, PoolOptions, ServerClient, ServerHandle};
use parking_lot::{Mutex, RwLock};
use rsse_core::{canonical_label_order, merge_ranked_streams, Label, RankedResult, RsseParams};
use rsse_ir::{Document, FileId};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The partition rule: file → shard by hash of the file id.
///
/// The hash (SplitMix64) is keyless and public — *which shard holds a
/// file* is not a secret the scheme protects (the server already sees
/// file ids in every response), it only needs to spread load evenly and
/// deterministically so the owner and the router agree on placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPartitioner {
    num_shards: usize,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IndexPartitioner {
    /// A partitioner over `num_shards` shards (clamped to at least 1).
    pub fn new(num_shards: usize) -> Self {
        IndexPartitioner {
            num_shards: num_shards.max(1),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `file`.
    pub fn shard_of(&self, file: FileId) -> usize {
        (splitmix64(file.as_u64()) % self.num_shards as u64) as usize
    }
}

/// Opt-in shard-routing efficiency knobs (all off by default, so a plain
/// [`ShardRouter::new`] behaves exactly like the pre-tuning router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterOptions {
    /// Skip scatter legs to shards whose label filter proves they hold no
    /// postings for the query label.
    pub pruning: bool,
    /// Byte budget of the router-level merged-result cache; `0` disables
    /// it.
    pub merged_cache_budget: usize,
    /// Serving pools per shard (clamped to at least 1). Only
    /// [`ShardedDeployment::bootstrap_tuned`] consumes this — a router
    /// built directly from clients takes its replica count from the
    /// client lists it is given.
    pub replicas: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            pruning: false,
            merged_cache_budget: 0,
            replicas: 1,
        }
    }
}

impl RouterOptions {
    /// All features off: one replica, no pruning, no merged cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables label-filter pruning.
    #[must_use]
    pub fn with_pruning(mut self) -> Self {
        self.pruning = true;
        self
    }

    /// Sets the merged-result cache budget in bytes (`0` disables).
    #[must_use]
    pub fn with_merged_cache(mut self, budget_bytes: usize) -> Self {
        self.merged_cache_budget = budget_bytes;
        self
    }

    /// Sets the number of serving pools per shard.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }
}

/// A complete merged scatter outcome, cached at the router keyed by
/// `(label, top_k)` — exactly what the scatter returned, so a hit is
/// byte-identical by construction.
#[derive(Debug)]
struct MergedResult {
    ranking: Vec<RankedResult>,
    files: Vec<EncryptedFile>,
}

impl CacheWeight for MergedResult {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of_val(self.ranking.as_slice())
            + self
                .files
                .iter()
                .map(|f| std::mem::size_of::<EncryptedFile>() + f.byte_len())
                .sum::<usize>()
    }
}

type MergedCache = EpochCache<(Label, Option<usize>), MergedResult>;

/// A complete merged *conjunctive* scatter outcome, cached keyed by
/// `(sorted label set, top_k)`. Per-keyword mapped scores are stored in
/// canonical (sorted-label) order so that any keyword ordering of the
/// same query shares one entry; a hit permutes them back to the asking
/// query's trapdoor order. `score_sum` is order-independent, so the
/// cached ranking itself is reused as-is.
#[derive(Debug)]
struct ConjunctiveMerged {
    /// Wire pairs `(file id, mapped scores in canonical label order)`,
    /// globally ranked by `score_sum` descending (file id ascending on
    /// ties).
    ranking: Vec<(u64, Vec<u64>)>,
    files: Vec<EncryptedFile>,
}

impl CacheWeight for ConjunctiveMerged {
    fn weight_bytes(&self) -> usize {
        std::mem::size_of_val(self.ranking.as_slice())
            + self
                .ranking
                .iter()
                .map(|(_, scores)| std::mem::size_of_val(scores.as_slice()))
                .sum::<usize>()
            + self
                .files
                .iter()
                .map(|f| std::mem::size_of::<EncryptedFile>() + f.byte_len())
                .sum::<usize>()
    }
}

type ConjunctiveMergedCache = EpochCache<(Vec<Label>, Option<usize>), ConjunctiveMerged>;

/// Holds one replica's in-flight count up while a leg is outstanding;
/// dropping the ticket releases it (error paths included).
struct LegTicket {
    in_flight: Arc<AtomicUsize>,
}

impl LegTicket {
    fn acquire(in_flight: Arc<AtomicUsize>) -> Self {
        in_flight.fetch_add(1, Ordering::Relaxed);
        LegTicket { in_flight }
    }
}

impl Drop for LegTicket {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// One shard's replica endpoints plus the load-balancing state shared by
/// every clone of the router.
#[derive(Debug, Clone)]
struct ReplicaSet {
    clients: Vec<ServerClient>,
    /// Legs currently outstanding per replica.
    in_flight: Vec<Arc<AtomicUsize>>,
    /// Total requests ever routed to each replica (bench visibility).
    routed: Vec<Arc<AtomicU64>>,
    /// Monotonic pick counter seeding the two pseudo-random choices.
    picks: Arc<AtomicU64>,
}

impl ReplicaSet {
    fn new(clients: Vec<ServerClient>) -> Self {
        assert!(!clients.is_empty(), "a shard needs at least one replica");
        let n = clients.len();
        ReplicaSet {
            clients,
            in_flight: (0..n).map(|_| Arc::new(AtomicUsize::new(0))).collect(),
            routed: (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            picks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Power-of-two-choices: draw two replicas from the pick counter's
    /// SplitMix64 stream, send to the one with fewer in-flight legs (ties
    /// toward the lower index). Classic result: the max load stays within
    /// `O(log log n)` of the mean without any shared queue.
    fn pick(&self) -> usize {
        let n = self.clients.len() as u64;
        if n == 1 {
            return 0;
        }
        let tick = self.picks.fetch_add(1, Ordering::Relaxed);
        let a = (splitmix64(tick.wrapping_mul(2)) % n) as usize;
        let b = (splitmix64(tick.wrapping_mul(2).wrapping_add(1)) % n) as usize;
        let (load_a, load_b) = (
            self.in_flight[a].load(Ordering::Relaxed),
            self.in_flight[b].load(Ordering::Relaxed),
        );
        match load_a.cmp(&load_b) {
            std::cmp::Ordering::Less => a,
            std::cmp::Ordering::Greater => b,
            std::cmp::Ordering::Equal => a.min(b),
        }
    }

    fn ticket(&self, replica: usize) -> LegTicket {
        self.routed[replica].fetch_add(1, Ordering::Relaxed);
        LegTicket::acquire(Arc::clone(&self.in_flight[replica]))
    }
}

/// The router's view of one shard's label filter: the shard-side epoch
/// watch (shared in process; stands in for a cheap epoch side channel)
/// and the last filter actually fetched over the wire.
#[derive(Debug)]
struct FilterState {
    watch: Arc<AtomicU64>,
    cached: Mutex<CachedFilter>,
}

#[derive(Debug, Default)]
struct CachedFilter {
    /// Epoch the cached label set was fetched at; `None` until the first
    /// fetch succeeds. Pruning requires this to match the live watch.
    epoch: Option<u64>,
    labels: HashSet<Label>,
}

/// One failed scatter leg: which shard, and why.
#[derive(Debug)]
pub struct DegradedLeg {
    /// The shard that did not contribute results.
    pub shard_id: u32,
    /// What its leg failed with (an error frame, a timeout, a dead
    /// transport, or an out-of-protocol reply).
    pub error: CloudError,
}

/// The outcome of one scatter-gather query.
#[derive(Debug)]
pub struct ScatterOutcome {
    /// Globally ranked results, best first — byte-identical to what the
    /// unsharded server would return *if no leg degraded*.
    pub ranking: Vec<RankedResult>,
    /// The ranked encrypted files, same order as `ranking`.
    pub files: Vec<EncryptedFile>,
    /// Aggregated traffic of every leg, shed attempts and error frames
    /// included ([`TrafficReport::shard_legs`] counts the legs).
    pub traffic: TrafficReport,
    /// Shards that answered with a usable reply.
    pub shards_ok: u32,
    /// Legs that failed — degraded coverage, reported, never silent. Empty
    /// means the ranking is complete.
    pub degraded: Vec<DegradedLeg>,
}

impl ScatterOutcome {
    /// Whether every shard contributed (no degraded coverage).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// The outcome of one *batched* scatter-gather
/// ([`ShardRouter::scatter_batch`]): several keywords resolved against
/// every shard in `num_shards` round trips total.
#[derive(Debug)]
pub struct BatchScatterOutcome {
    /// Per-query merged results, in batch order: each entry is the
    /// globally ranked list plus its aligned encrypted files — exactly
    /// what a [`ScatterOutcome`] would carry for that query alone.
    pub queries: Vec<(Vec<RankedResult>, Vec<EncryptedFile>)>,
    /// Aggregated traffic of every leg ([`TrafficReport::batched_queries`]
    /// counts the amortized queries).
    pub traffic: TrafficReport,
    /// Shards that answered with a usable reply.
    pub shards_ok: u32,
    /// Legs that failed — degraded coverage for *every* query in the
    /// batch, since a leg carries all of them.
    pub degraded: Vec<DegradedLeg>,
}

impl BatchScatterOutcome {
    /// Whether every shard contributed (no degraded coverage).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// The outcome of one conjunctive scatter-gather
/// ([`ShardRouter::scatter_conjunctive`]): every shard intersects its own
/// disjoint file partition locally, and the router k-way merges the
/// partial rankings by `score_sum`.
#[derive(Debug)]
pub struct ConjunctiveScatterOutcome {
    /// Globally ranked wire pairs `(file id, per-keyword mapped scores in
    /// trapdoor order)`, best `score_sum` first (file id ascending on
    /// ties) — byte-identical to the unsharded server's conjunctive
    /// ranking *if no leg degraded*.
    pub ranking: Vec<(u64, Vec<u64>)>,
    /// The ranked encrypted files, same order as `ranking`.
    pub files: Vec<EncryptedFile>,
    /// Aggregated traffic of every leg
    /// ([`TrafficReport::conjunctive_legs`] counts the legs).
    pub traffic: TrafficReport,
    /// Shards that answered with a usable reply (pruned shards included).
    pub shards_ok: u32,
    /// Legs that failed — degraded coverage, reported, never silent.
    pub degraded: Vec<DegradedLeg>,
}

impl ConjunctiveScatterOutcome {
    /// Whether every shard contributed (no degraded coverage).
    pub fn is_complete(&self) -> bool {
        self.degraded.is_empty()
    }
}

/// Sum of one wire entry's per-keyword mapped scores — the conjunctive
/// rank key, widened so it cannot overflow.
fn conjunctive_sum(entry: &(u64, Vec<u64>)) -> u128 {
    entry.1.iter().map(|&s| u128::from(s)).sum()
}

/// Merges per-shard conjunctive replies into one globally ranked list
/// with the files aligned to it.
///
/// `rankings[s]` and `files[s]` are shard `s`'s reply, each already in
/// its local `(score_sum desc, file asc)` order. Files partition
/// disjointly across shards and the order is total (file id breaks every
/// tie), so repeatedly taking the best shard head reproduces the
/// single-server sort exactly. Files are *moved* out of the replies; a
/// file that does not match its claimed entry — a misbehaving shard — is
/// dropped rather than misattributed.
pub fn merge_conjunctive_replies(
    rankings: Vec<Vec<(u64, Vec<u64>)>>,
    files: Vec<Vec<EncryptedFile>>,
    top_k: Option<usize>,
) -> (Vec<(u64, Vec<u64>)>, Vec<EncryptedFile>) {
    let total: usize = rankings.iter().map(Vec::len).sum();
    let take = top_k.unwrap_or(total).min(total);
    let mut entry_iters: Vec<std::vec::IntoIter<(u64, Vec<u64>)>> =
        rankings.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(u64, Vec<u64>)>> =
        entry_iters.iter_mut().map(Iterator::next).collect();
    let mut file_iters: Vec<std::vec::IntoIter<EncryptedFile>> =
        files.into_iter().map(Vec::into_iter).collect();
    let mut out = Vec::with_capacity(take);
    let mut out_files = Vec::with_capacity(take);
    while out.len() < take {
        let best = heads
            .iter()
            .enumerate()
            .filter_map(|(s, head)| head.as_ref().map(|h| (s, conjunctive_sum(h), h.0)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(s, _, _)| s);
        let Some(source) = best else { break };
        let entry = heads[source].take().expect("picked a live head");
        heads[source] = entry_iters[source].next();
        match file_iters[source].next() {
            Some(file) if file.id().as_u64() == entry.0 => out_files.push(file),
            _ => {} // shard sent fewer/misaligned files; drop, don't misattribute
        }
        out.push(entry);
    }
    (out, out_files)
}

/// Merges per-shard replies into one globally ranked result list with the
/// files aligned to it.
///
/// `rankings[s]` and `files[s]` are shard `s`'s reply, already in its
/// local rank order (files aligned to its ranking). The coordinator's
/// cost here is O(shards) allocations — the head heap, the cursor table,
/// the file iterators, and two pre-sized output vectors — never
/// O(results); the alloc-count regression suite pins the merge half of
/// this. Files are *moved* out of the replies, not cloned.
///
/// Provenance is recovered by per-shard cursors instead of a hash map:
/// the merged order restricted to one shard is a prefix of that shard's
/// local order, so whichever shard's cursor head equals the next merged
/// result is its source (ties drain toward the lower shard index, exactly
/// like the merge). A file that does not match its claimed result — a
/// misbehaving shard — is dropped rather than misattributed.
pub fn merge_shard_replies(
    rankings: &[Vec<RankedResult>],
    files: Vec<Vec<EncryptedFile>>,
    top_k: Option<usize>,
) -> (Vec<RankedResult>, Vec<EncryptedFile>) {
    let streams: Vec<&[RankedResult]> = rankings.iter().map(Vec::as_slice).collect();
    let merged = merge_ranked_streams(&streams, top_k);
    let mut cursors = vec![0usize; rankings.len()];
    let mut file_iters: Vec<std::vec::IntoIter<EncryptedFile>> =
        files.into_iter().map(Vec::into_iter).collect();
    let mut out_files = Vec::with_capacity(merged.len());
    for result in &merged {
        let source = (0..rankings.len())
            .find(|&s| rankings[s].get(cursors[s]) == Some(result))
            .expect("every merged result heads exactly one stream");
        cursors[source] += 1;
        match file_iters[source].next() {
            Some(file) if file.id() == result.file => out_files.push(file),
            _ => {} // shard sent fewer/misaligned files; drop, don't misattribute
        }
    }
    (merged, out_files)
}

/// When every leg is a [`Message::ShardQuery`] for one label whose
/// `top_k` agrees with the merge's, that label keys the routing features
/// (pruning, merged cache). Anything else — mixed labels, hand-built
/// legs, a `top_k` mismatch — falls back to the plain full scatter.
fn uniform_query_label(legs: &[Message], top_k: Option<usize>) -> Option<Label> {
    let mut query_label = None;
    for leg in legs {
        match leg {
            Message::ShardQuery {
                label, top_k: k, ..
            } if k.map(|k| k as usize) == top_k => match query_label {
                None => query_label = Some(*label),
                Some(prev) if prev == *label => {}
                Some(_) => return None,
            },
            _ => return None,
        }
    }
    query_label
}

/// When every leg is a [`Message::ConjunctiveShardQuery`] carrying the
/// same trapdoor sequence and a `top_k` that agrees with the merge's,
/// the query's label sequence (trapdoor order) keys the routing features.
/// Anything else falls back to the plain full scatter.
fn uniform_conjunctive_labels(legs: &[Message], top_k: Option<usize>) -> Option<Vec<Label>> {
    let mut query_labels: Option<Vec<Label>> = None;
    for leg in legs {
        match leg {
            Message::ConjunctiveShardQuery {
                trapdoors,
                top_k: k,
                ..
            } if k.map(|k| k as usize) == top_k => {
                let labels: Vec<Label> = trapdoors.iter().map(|(label, _)| *label).collect();
                match &query_labels {
                    None => query_labels = Some(labels),
                    Some(prev) if *prev == labels => {}
                    Some(_) => return None,
                }
            }
            _ => return None,
        }
    }
    query_labels.filter(|labels| !labels.is_empty())
}

/// The scatter-gather coordinator: one replica set per shard, a per-leg
/// deadline, bounded retry against transient overload, and the opt-in
/// routing features of [`RouterOptions`]. Clones share all routing state
/// (load counters, filters, merged cache).
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: Vec<ReplicaSet>,
    deadline: Duration,
    attempts: u32,
    backoff: Duration,
    pruning: bool,
    /// Per-shard filter state; empty when no epoch watches were wired.
    filters: Vec<Arc<FilterState>>,
    merged: Arc<RwLock<MergedCache>>,
    conjunctive_merged: Arc<RwLock<ConjunctiveMergedCache>>,
}

impl ShardRouter {
    /// A router over `clients` (shard `i` is `clients[i]`) with a 5 s
    /// per-leg deadline and 3 overload-retry attempts at 2 ms base
    /// backoff. All routing features are off — this router scatters to
    /// every shard, every query, exactly like the pre-tuning router.
    pub fn new(clients: Vec<ServerClient>) -> Self {
        Self::tuned(
            clients.into_iter().map(|c| vec![c]).collect(),
            Vec::new(),
            RouterOptions::default(),
        )
    }

    /// A router over `replicas` (shard `i` is served by any client in
    /// `replicas[i]`) with `options`'s features armed. `watches[i]` is
    /// shard `i`'s filter-epoch watch ([`CloudServer::filter_watch`]);
    /// the router re-fetches a shard's label filter and flushes its
    /// merged cache whenever a watch moves.
    ///
    /// # Panics
    ///
    /// Panics when pruning or the merged cache is enabled without exactly
    /// one watch per shard — those features are only sound when every
    /// shard's epoch is observable.
    pub fn tuned(
        replicas: Vec<Vec<ServerClient>>,
        watches: Vec<Arc<AtomicU64>>,
        options: RouterOptions,
    ) -> Self {
        if options.pruning || options.merged_cache_budget > 0 {
            assert_eq!(
                watches.len(),
                replicas.len(),
                "pruning and the merged cache need one filter watch per shard"
            );
        }
        ShardRouter {
            shards: replicas.into_iter().map(ReplicaSet::new).collect(),
            deadline: Duration::from_secs(5),
            attempts: 3,
            backoff: Duration::from_millis(2),
            pruning: options.pruning,
            filters: watches
                .into_iter()
                .map(|watch| {
                    Arc::new(FilterState {
                        watch,
                        cached: Mutex::new(CachedFilter::default()),
                    })
                })
                .collect(),
            merged: Arc::new(RwLock::new(MergedCache::new(options.merged_cache_budget))),
            conjunctive_merged: Arc::new(RwLock::new(ConjunctiveMergedCache::new(
                options.merged_cache_budget,
            ))),
        }
    }

    /// Sets the per-leg gather deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the overload-retry budget: up to `attempts` enqueue attempts
    /// per leg, sleeping `backoff` (doubled each retry) between them.
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, backoff: Duration) -> Self {
        self.attempts = attempts.max(1);
        self.backoff = backoff;
        self
    }

    /// Number of shards this router addresses.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard, per-replica counts of requests routed (query legs and
    /// filter fetches) — how a bench shows the replica spread.
    pub fn replica_routing(&self) -> Vec<Vec<u64>> {
        self.shards
            .iter()
            .map(|set| {
                set.routed
                    .iter()
                    .map(|count| count.load(Ordering::Relaxed))
                    .collect()
            })
            .collect()
    }

    /// Snapshot of the merged-result cache counters (all zero when the
    /// cache is disabled).
    pub fn merged_cache_stats(&self) -> CacheStats {
        self.merged.read().stats()
    }

    /// Snapshot of the conjunctive merged-result cache counters (all zero
    /// when the cache is disabled).
    pub fn conjunctive_merged_cache_stats(&self) -> CacheStats {
        self.conjunctive_merged.read().stats()
    }

    /// Compares every shard's cached filter epoch against its live watch;
    /// refreshes stale filters over the wire (pruning mode) or adopts the
    /// observed epoch (merged-cache-only mode), and flushes the merged
    /// cache if anything moved. Serves as this query's linearization
    /// point: a later cache hit is byte-identical to a full scatter
    /// executed right here.
    fn observe_filter_epochs(&self, traffic: &mut TrafficReport) {
        let mut moved = false;
        for (shard, state) in self.filters.iter().enumerate() {
            let current = state.watch.load(Ordering::Acquire);
            if state.cached.lock().epoch == Some(current) {
                continue;
            }
            moved = true;
            if self.pruning {
                self.refresh_filter(shard, state, traffic);
            } else {
                // No label set needed — only the epoch, to key the merged
                // cache's invalidation.
                state.cached.lock().epoch = Some(current);
            }
        }
        if moved {
            self.merged.write().invalidate_all();
            self.conjunctive_merged.write().invalidate_all();
        }
    }

    /// One [`Message::FilterRequest`] round trip to shard `shard`, metered
    /// as a filter fetch. Any failure leaves the cached epoch stale: the
    /// shard stays unprunable and the fetch retries on the next query —
    /// staleness can cost legs, never correctness.
    fn refresh_filter(&self, shard: usize, state: &FilterState, traffic: &mut TrafficReport) {
        let known_epoch = state.cached.lock().epoch;
        let request = Message::FilterRequest {
            shard_id: shard as u32,
            known_epoch,
        };
        let up = request.wire_len();
        let set = &self.shards[shard];
        let replica = set.pick();
        let _ticket = set.ticket(replica);
        let reply = set.clients[replica]
            .call_async(request)
            .and_then(|pending| pending.wait(Some(self.deadline)));
        match reply {
            Ok(Message::FilterReply {
                shard_id,
                epoch,
                labels,
            }) if shard_id == shard as u32 => {
                let down = Message::FilterReply {
                    shard_id,
                    epoch,
                    labels: labels.clone(),
                }
                .wire_len();
                traffic.absorb(&TrafficReport::filter_fetch(up, down));
                if let Some(labels) = labels {
                    let mut cached = state.cached.lock();
                    cached.labels = labels.into_iter().collect();
                    cached.epoch = Some(epoch);
                }
                // A `labels: None` reply means "unchanged since
                // known_epoch" — the cached set already matches that
                // epoch, so there is nothing to store; any other epoch
                // keeps the filter stale (and unprunable).
            }
            Ok(other) => {
                traffic.absorb(&TrafficReport::filter_fetch(up, other.wire_len()));
            }
            Err(CloudError::Server { kind, detail }) => {
                let down = Message::Error { kind, detail }.wire_len();
                traffic.absorb(&TrafficReport::filter_fetch(up, down));
            }
            Err(_) => {
                traffic.absorb(&TrafficReport::filter_fetch(up, 0));
            }
        }
    }

    /// Whether shard `shard` can be skipped for `label`: pruning armed,
    /// the shard's filter confirmed current against its live watch, and
    /// the label absent from it. Filters only grow under updates, so a
    /// *stale* filter could miss a label the shard has since gained —
    /// which is why a stale filter never prunes.
    fn can_prune(&self, shard: usize, query_label: Option<Label>) -> bool {
        if !self.pruning {
            return false;
        }
        let (Some(label), Some(state)) = (query_label, self.filters.get(shard)) else {
            return false;
        };
        let cached = state.cached.lock();
        cached.epoch == Some(state.watch.load(Ordering::Acquire)) && !cached.labels.contains(&label)
    }

    /// Whether shard `shard` can be skipped for a conjunctive query over
    /// `labels`: pruning armed, the shard's filter confirmed current, and
    /// *any* queried label absent from it — a shard missing even one
    /// posting list provably contributes an empty intersection.
    fn can_prune_conjunctive(&self, shard: usize, query_labels: Option<&[Label]>) -> bool {
        if !self.pruning {
            return false;
        }
        let (Some(labels), Some(state)) = (query_labels, self.filters.get(shard)) else {
            return false;
        };
        let cached = state.cached.lock();
        cached.epoch == Some(state.watch.load(Ordering::Acquire))
            && labels.iter().any(|label| !cached.labels.contains(label))
    }

    /// Scatters `legs` (leg `i` to shard `i`) and gathers the merged
    /// top-`top_k` ranking.
    ///
    /// All legs are queued before any reply is awaited
    /// ([`ServerClient::call_async`]), so shards serve in parallel. A leg
    /// shed by a full backlog is retried within the router's retry
    /// budget; every other failure — an error frame, a deadline expiry, a
    /// dead worker, an out-of-protocol or misaddressed reply — degrades
    /// that shard's coverage and is reported in
    /// [`ScatterOutcome::degraded`]. Every attempt's bytes are metered,
    /// error frames included; a timed-out leg contributes its upstream
    /// bytes and an empty downstream.
    ///
    /// With [`RouterOptions`] features armed, a leg may instead be
    /// **pruned** (the shard's current filter excludes the label — zero
    /// bytes, counted in [`TrafficReport::pruned_legs`] and in
    /// [`ScatterOutcome::shards_ok`], since an empty contribution is a
    /// complete answer), or the whole query may be served from the
    /// merged-result cache (zero legs). Both paths return byte-identical
    /// results to the full scatter; a query whose every shard is pruned
    /// succeeds with an empty ranking.
    ///
    /// # Errors
    ///
    /// [`CloudError::AllShardsFailed`] when no shard produced a usable
    /// reply (pruned shards count as answered).
    ///
    /// # Panics
    ///
    /// Panics when `legs.len()` differs from the router's shard count —
    /// a misassembled scatter is a programming error, not a wire fault.
    pub fn scatter(
        &self,
        legs: Vec<Message>,
        top_k: Option<usize>,
    ) -> Result<ScatterOutcome, CloudError> {
        assert_eq!(
            legs.len(),
            self.shards.len(),
            "one leg per shard, in shard order"
        );
        let mut traffic = TrafficReport::default();
        let query_label = uniform_query_label(&legs, top_k);

        // Routing features: observe shard epochs (refreshing any stale
        // filter), then try the merged cache — a hit costs zero legs.
        if !self.filters.is_empty() {
            self.observe_filter_epochs(&mut traffic);
        }
        let fill_epoch = {
            let merged = self.merged.read();
            match (merged.is_enabled(), query_label) {
                (true, Some(label)) => {
                    if let Some(hit) = merged.get(&(label, top_k)) {
                        return Ok(ScatterOutcome {
                            ranking: hit.ranking.clone(),
                            files: hit.files.clone(),
                            traffic,
                            shards_ok: self.shards.len() as u32,
                            degraded: Vec::new(),
                        });
                    }
                    Some(merged.epoch())
                }
                _ => None,
            }
        };

        // Scatter: prune provably empty shards; queue every remaining leg
        // (each to its least-loaded replica) before waiting on any.
        // Overload sheds are answered round trips (the front door priced
        // them), so each attempt meters as its own leg.
        let mut pruned = 0u32;
        let mut states: Vec<Option<(Result<PendingReply, CloudError>, LegTicket)>> =
            Vec::with_capacity(legs.len());
        for (shard, leg) in legs.iter().enumerate() {
            if self.can_prune(shard, query_label) {
                traffic.absorb(&TrafficReport::pruned_leg());
                pruned += 1;
                states.push(None);
                continue;
            }
            let set = &self.shards[shard];
            let replica = set.pick();
            let ticket = set.ticket(replica);
            let state = self.queue_with_retry(&set.clients[replica], leg, &mut traffic);
            states.push(Some((state, ticket)));
        }

        // Gather: collect every pending leg under the per-leg deadline.
        let mut rankings: Vec<Vec<RankedResult>> = Vec::with_capacity(states.len());
        let mut shard_files: Vec<Vec<EncryptedFile>> = Vec::with_capacity(states.len());
        let mut degraded = Vec::new();
        for (shard, (state, leg)) in states.into_iter().zip(&legs).enumerate() {
            let shard = shard as u32;
            let up = leg.wire_len();
            let Some((state, _ticket)) = state else {
                continue; // pruned — nothing to gather
            };
            let pending = match state {
                Ok(p) => p,
                Err(error) => {
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                    continue;
                }
            };
            match pending.wait(Some(self.deadline)) {
                Ok(Message::ShardReply {
                    shard_id,
                    ranking,
                    files,
                }) if shard_id == shard => {
                    let reply_len = Message::ShardReply {
                        shard_id,
                        ranking: ranking.clone(),
                        files: files.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, reply_len, false));
                    rankings.push(
                        ranking
                            .into_iter()
                            .map(|(id, encrypted_score)| RankedResult {
                                file: FileId::new(id),
                                encrypted_score,
                            })
                            .collect(),
                    );
                    shard_files.push(files);
                }
                Ok(other) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, other.wire_len(), false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::UnexpectedMessage {
                            expected: "ShardReply addressed to this shard",
                        },
                    });
                }
                Err(CloudError::Server { kind, detail }) => {
                    // The codec is canonical, so rebuilding the frame
                    // reproduces its exact wire size.
                    let frame_len = Message::Error {
                        kind,
                        detail: detail.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, frame_len, true));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::Server { kind, detail },
                    });
                }
                Err(error) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, 0, false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                }
            }
        }

        // A pruned shard *did* answer — with the empty partial result its
        // filter proved — so it counts toward coverage; only a query
        // where every sent leg failed and nothing was pruned has no
        // usable answer at all.
        let shards_ok = rankings.len() as u32 + pruned;
        if shards_ok == 0 {
            return Err(CloudError::AllShardsFailed {
                shards: self.shards.len() as u32,
            });
        }
        let (ranking, files) = merge_shard_replies(&rankings, shard_files, top_k);
        if degraded.is_empty() {
            if let (Some(fill_epoch), Some(label)) = (fill_epoch, query_label) {
                // Complete outcomes only: a degraded merge is missing a
                // partition and must not be replayed from cache.
                self.merged.write().insert_if_current(
                    (label, top_k),
                    Arc::new(MergedResult {
                        ranking: ranking.clone(),
                        files: files.clone(),
                    }),
                    fill_epoch,
                );
            }
        }
        Ok(ScatterOutcome {
            ranking,
            files,
            traffic,
            shards_ok,
            degraded,
        })
    }

    /// Conjunctive scatter-gather: `legs[i]` is a
    /// [`Message::ConjunctiveShardQuery`] addressed to shard `i`, every
    /// leg carrying the same trapdoor set. Files partition disjointly, so
    /// each shard intersects its own partition locally and the merged
    /// `(score_sum desc, file asc)` ranking is byte-identical to the
    /// unsharded server's — a shard can neither add nor lose an
    /// intersection member another shard owns.
    ///
    /// With [`RouterOptions`] features armed, a shard whose current
    /// filter lacks *any* queried label is pruned (its local intersection
    /// is provably empty), and whole merged outcomes are cached keyed by
    /// `(sorted label set, top_k)` — the cached per-keyword scores live
    /// in canonical label order and are permuted back to the asking
    /// query's trapdoor order on a hit, so every keyword ordering of one
    /// conjunction shares one entry. Legs are metered as
    /// [`TrafficReport::conjunctive_legs`], never mixed into the
    /// single-keyword leg counters.
    ///
    /// # Errors
    ///
    /// [`CloudError::AllShardsFailed`] when no shard produced a usable
    /// reply (pruned shards count as answered).
    ///
    /// # Panics
    ///
    /// Panics when `legs.len()` differs from the router's shard count —
    /// a misassembled scatter is a programming error, not a wire fault.
    pub fn scatter_conjunctive(
        &self,
        legs: Vec<Message>,
        top_k: Option<usize>,
    ) -> Result<ConjunctiveScatterOutcome, CloudError> {
        assert_eq!(
            legs.len(),
            self.shards.len(),
            "one leg per shard, in shard order"
        );
        let mut traffic = TrafficReport {
            conjunctive_queries: 1,
            ..TrafficReport::default()
        };
        let query_labels = uniform_conjunctive_labels(&legs, top_k);

        if !self.filters.is_empty() {
            self.observe_filter_epochs(&mut traffic);
        }
        // Cache key: the label multiset, order-erased. The stored scores
        // are canonical-ordered; `order`/`inv` translate between the
        // asking query's trapdoor order and the canonical one.
        let canonical = query_labels.as_ref().map(|labels| {
            let order = canonical_label_order(labels);
            let key: Vec<Label> = order.iter().map(|&i| labels[i]).collect();
            (order, key)
        });
        let fill_epoch = {
            let cache = self.conjunctive_merged.read();
            match (cache.is_enabled(), &canonical) {
                (true, Some((order, key))) => {
                    if let Some(hit) = cache.get(&(key.clone(), top_k)) {
                        let mut inv = vec![0usize; order.len()];
                        for (k, &i) in order.iter().enumerate() {
                            inv[i] = k;
                        }
                        let ranking = hit
                            .ranking
                            .iter()
                            .map(|(id, scores)| (*id, inv.iter().map(|&k| scores[k]).collect()))
                            .collect();
                        return Ok(ConjunctiveScatterOutcome {
                            ranking,
                            files: hit.files.clone(),
                            traffic,
                            shards_ok: self.shards.len() as u32,
                            degraded: Vec::new(),
                        });
                    }
                    Some(cache.epoch())
                }
                _ => None,
            }
        };

        // Scatter: prune shards whose filter proves an empty local
        // intersection; queue every remaining leg before waiting on any.
        let mut pruned = 0u32;
        let mut states: Vec<Option<(Result<PendingReply, CloudError>, LegTicket)>> =
            Vec::with_capacity(legs.len());
        for (shard, leg) in legs.iter().enumerate() {
            if self.can_prune_conjunctive(shard, query_labels.as_deref()) {
                traffic.absorb(&TrafficReport::pruned_leg());
                pruned += 1;
                states.push(None);
                continue;
            }
            let set = &self.shards[shard];
            let replica = set.pick();
            let ticket = set.ticket(replica);
            let state = self.queue_with_retry_metered(
                &set.clients[replica],
                leg,
                &mut traffic,
                TrafficReport::conjunctive_leg,
            );
            states.push(Some((state, ticket)));
        }

        // Gather: collect every pending leg under the per-leg deadline.
        let mut rankings: Vec<Vec<(u64, Vec<u64>)>> = Vec::with_capacity(states.len());
        let mut shard_files: Vec<Vec<EncryptedFile>> = Vec::with_capacity(states.len());
        let mut degraded = Vec::new();
        for (shard, (state, leg)) in states.into_iter().zip(&legs).enumerate() {
            let shard = shard as u32;
            let up = leg.wire_len();
            let Some((state, _ticket)) = state else {
                continue; // pruned — nothing to gather
            };
            let pending = match state {
                Ok(p) => p,
                Err(error) => {
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                    continue;
                }
            };
            match pending.wait(Some(self.deadline)) {
                Ok(Message::ConjunctiveShardReply {
                    shard_id,
                    ranking,
                    files,
                }) if shard_id == shard => {
                    let reply_len = Message::ConjunctiveShardReply {
                        shard_id,
                        ranking: ranking.clone(),
                        files: files.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::conjunctive_leg(up, reply_len, false));
                    rankings.push(ranking);
                    shard_files.push(files);
                }
                Ok(other) => {
                    traffic.absorb(&TrafficReport::conjunctive_leg(up, other.wire_len(), false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::UnexpectedMessage {
                            expected: "ConjunctiveShardReply addressed to this shard",
                        },
                    });
                }
                Err(CloudError::Server { kind, detail }) => {
                    let frame_len = Message::Error {
                        kind,
                        detail: detail.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::conjunctive_leg(up, frame_len, true));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::Server { kind, detail },
                    });
                }
                Err(error) => {
                    traffic.absorb(&TrafficReport::conjunctive_leg(up, 0, false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                }
            }
        }

        let shards_ok = rankings.len() as u32 + pruned;
        if shards_ok == 0 {
            return Err(CloudError::AllShardsFailed {
                shards: self.shards.len() as u32,
            });
        }
        let (ranking, files) = merge_conjunctive_replies(rankings, shard_files, top_k);
        if degraded.is_empty() {
            if let (Some(fill_epoch), Some((order, key))) = (fill_epoch, canonical) {
                // Complete outcomes only, scores permuted to canonical
                // label order so any keyword ordering can serve the entry.
                let canonical_ranking = ranking
                    .iter()
                    .map(|(id, scores)| {
                        (*id, order.iter().map(|&i| scores[i]).collect::<Vec<u64>>())
                    })
                    .collect();
                self.conjunctive_merged.write().insert_if_current(
                    (key, top_k),
                    Arc::new(ConjunctiveMerged {
                        ranking: canonical_ranking,
                        files: files.clone(),
                    }),
                    fill_epoch,
                );
            }
        }
        Ok(ConjunctiveScatterOutcome {
            ranking,
            files,
            traffic,
            shards_ok,
            degraded,
        })
    }

    /// Queues one leg under the router's overload-retry budget, metering
    /// every shed attempt; `Err` is a leg that never got queued.
    fn queue_with_retry(
        &self,
        client: &ServerClient,
        leg: &Message,
        traffic: &mut TrafficReport,
    ) -> Result<PendingReply, CloudError> {
        self.queue_with_retry_metered(client, leg, traffic, TrafficReport::shard_leg)
    }

    /// [`Self::queue_with_retry`] with the per-attempt meter chosen by the
    /// caller — conjunctive scatters price their legs as
    /// [`TrafficReport::conjunctive_leg`]s, everything else as
    /// [`TrafficReport::shard_leg`]s.
    fn queue_with_retry_metered(
        &self,
        client: &ServerClient,
        leg: &Message,
        traffic: &mut TrafficReport,
        meter: impl Fn(usize, usize, bool) -> TrafficReport,
    ) -> Result<PendingReply, CloudError> {
        let shed_frame_len =
            Message::error(ErrorKind::Overloaded, "request backlog is full").wire_len();
        let up = leg.wire_len();
        let mut wait = self.backoff;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match client.call_async(leg.clone()) {
                Ok(pending) => return Ok(pending),
                Err(
                    e @ CloudError::Server {
                        kind: ErrorKind::Overloaded,
                        ..
                    },
                ) => {
                    traffic.absorb(&meter(up, shed_frame_len, true));
                    if attempt >= self.attempts {
                        return Err(e);
                    }
                    std::thread::sleep(wait);
                    wait = wait.saturating_mul(2);
                }
                Err(e) => {
                    // Dead transport: the request never left; meter the
                    // attempted upstream bytes only.
                    traffic.absorb(&meter(up, 0, false));
                    return Err(e);
                }
            }
        }
    }

    /// Batched scatter-gather: `legs[i]` is a [`Message::BatchRequest`]
    /// addressed to shard `i` (`shard_id == Some(i)`), every leg carrying
    /// the *same* query sequence. Each query's per-shard partial rankings
    /// are merged exactly like [`ShardRouter::scatter`] merges a single
    /// query's, so every entry of [`BatchScatterOutcome::queries`] is
    /// byte-identical to what an unbatched scatter of that query would
    /// return — the whole batch costs one round trip per shard instead of
    /// one per `(query, shard)` pair.
    ///
    /// A reply that echoes the wrong shard id, carries `shard_id: None`,
    /// or answers a different number of queries than asked is out of
    /// protocol and degrades its leg.
    ///
    /// # Errors
    ///
    /// [`CloudError::AllShardsFailed`] when no shard produced a usable
    /// reply.
    ///
    /// # Panics
    ///
    /// Panics when `legs.len()` differs from the router's shard count, on
    /// a non-`BatchRequest` leg, or when legs disagree on the query
    /// sequence length — a misassembled scatter is a programming error,
    /// not a wire fault.
    pub fn scatter_batch(
        &self,
        legs: Vec<Message>,
        top_k: Option<usize>,
    ) -> Result<BatchScatterOutcome, CloudError> {
        assert_eq!(
            legs.len(),
            self.shards.len(),
            "one leg per shard, in shard order"
        );
        let num_queries = legs
            .iter()
            .map(|leg| match leg {
                Message::BatchRequest { queries, .. } => queries.len(),
                other => panic!("scatter_batch leg must be a BatchRequest, got {other:?}"),
            })
            .max()
            .unwrap_or(0);
        for leg in &legs {
            if let Message::BatchRequest { queries, .. } = leg {
                assert_eq!(
                    queries.len(),
                    num_queries,
                    "every shard's leg must carry the same query sequence"
                );
            }
        }
        let mut traffic = TrafficReport::default();

        let mut states = Vec::with_capacity(legs.len());
        for (shard, leg) in legs.iter().enumerate() {
            let set = &self.shards[shard];
            let replica = set.pick();
            let ticket = set.ticket(replica);
            let state = self.queue_with_retry(&set.clients[replica], leg, &mut traffic);
            if state.is_ok() {
                traffic.batched_queries += num_queries as u32;
            }
            states.push((state, ticket));
        }

        let mut per_shard: Vec<Vec<crate::BatchResult>> = Vec::with_capacity(states.len());
        let mut degraded = Vec::new();
        for (shard, ((state, _ticket), leg)) in states.into_iter().zip(&legs).enumerate() {
            let shard = shard as u32;
            let up = leg.wire_len();
            let pending = match state {
                Ok(p) => p,
                Err(error) => {
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                    continue;
                }
            };
            match pending.wait(Some(self.deadline)) {
                Ok(Message::BatchReply { shard_id, results })
                    if shard_id == Some(shard) && results.len() == num_queries =>
                {
                    let reply_len = Message::BatchReply {
                        shard_id,
                        results: results.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, reply_len, false));
                    per_shard.push(results);
                }
                Ok(other) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, other.wire_len(), false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::UnexpectedMessage {
                            expected: "BatchReply addressed to this shard",
                        },
                    });
                }
                Err(CloudError::Server { kind, detail }) => {
                    let frame_len = Message::Error {
                        kind,
                        detail: detail.clone(),
                    }
                    .wire_len();
                    traffic.absorb(&TrafficReport::shard_leg(up, frame_len, true));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error: CloudError::Server { kind, detail },
                    });
                }
                Err(error) => {
                    traffic.absorb(&TrafficReport::shard_leg(up, 0, false));
                    degraded.push(DegradedLeg {
                        shard_id: shard,
                        error,
                    });
                }
            }
        }

        let shards_ok = per_shard.len() as u32;
        if shards_ok == 0 {
            return Err(CloudError::AllShardsFailed {
                shards: self.shards.len() as u32,
            });
        }
        // Transpose shard-major replies into query-major merges: query q's
        // partial rankings across the surviving shards merge exactly like
        // a single scattered query's.
        let mut shard_iters: Vec<std::vec::IntoIter<crate::BatchResult>> =
            per_shard.into_iter().map(Vec::into_iter).collect();
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let mut rankings: Vec<Vec<RankedResult>> = Vec::with_capacity(shard_iters.len());
            let mut files: Vec<Vec<EncryptedFile>> = Vec::with_capacity(shard_iters.len());
            for iter in &mut shard_iters {
                let (ranking, shard_files) = iter.next().expect("length validated at gather");
                rankings.push(
                    ranking
                        .into_iter()
                        .map(|(id, encrypted_score)| RankedResult {
                            file: FileId::new(id),
                            encrypted_score,
                        })
                        .collect(),
                );
                files.push(shard_files);
            }
            queries.push(merge_shard_replies(&rankings, files, top_k));
        }
        Ok(BatchScatterOutcome {
            queries,
            traffic,
            shards_ok,
            degraded,
        })
    }
}

/// A complete sharded deployment: owner, N shard server pools, router,
/// and one authorized user.
pub struct ShardedDeployment {
    owner: DataOwner,
    user: User,
    partitioner: IndexPartitioner,
    /// Flattened shard-major: replica `r` of shard `s` is
    /// `handles[s * replicas_per_shard + r]`.
    handles: Vec<ServerHandle>,
    replicas_per_shard: usize,
    router: ShardRouter,
}

impl core::fmt::Debug for ShardedDeployment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "ShardedDeployment {{ shards: {} }}",
            self.partitioner.num_shards()
        )
    }
}

impl ShardedDeployment {
    /// Bootstraps `num_shards` shard pools over `docs`, each with the
    /// same `options` (workers, backlog, deadline, faults).
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        options: PoolOptions,
    ) -> Result<Self, CloudError> {
        Self::bootstrap_with(master_seed, params, docs, num_shards, |_| options.clone())
    }

    /// [`Self::bootstrap`] with per-shard pool options — how the fault
    /// tests wedge exactly one shard while the others serve.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap_with(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        mut options_for: impl FnMut(usize) -> PoolOptions,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let handles: Vec<ServerHandle> = owner
            .outsource_sharded(docs, &partitioner)?
            .into_iter()
            .enumerate()
            .map(|(shard, outsource)| {
                // Over the wire exactly as deployed: each shard boots from
                // its own decoded Outsource frame.
                let frame = outsource.encode();
                let server = CloudServer::from_outsource(Message::decode(frame)?)?;
                Ok(ServerHandle::spawn_pool_with(server, options_for(shard)))
            })
            .collect::<Result<_, CloudError>>()?;
        let router = ShardRouter::new(handles.iter().map(ServerHandle::client).collect());
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            replicas_per_shard: 1,
            router,
        })
    }

    /// [`Self::bootstrap`] with the shard-routing efficiency features
    /// armed: every shard gets an owner-exact label filter installed
    /// ([`CloudServer::install_label_filter`]),
    /// `router_options.replicas` serving pools sharing its one
    /// `Arc<CloudServer>` (index, ranking cache and filter included), and
    /// the router is wired with each shard's filter watch so pruning and
    /// the merged-result cache can invalidate on updates.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures.
    pub fn bootstrap_tuned(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        options: PoolOptions,
        router_options: RouterOptions,
    ) -> Result<Self, CloudError> {
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let replicas = router_options.replicas.max(1);
        let (frames, shard_labels) = owner.outsource_sharded_with_filters(docs, &partitioner)?;
        let mut handles = Vec::with_capacity(frames.len() * replicas);
        let mut replica_clients = Vec::with_capacity(frames.len());
        let mut watches = Vec::with_capacity(frames.len());
        for (outsource, labels) in frames.into_iter().zip(shard_labels) {
            let frame = outsource.encode();
            let server = Arc::new(CloudServer::from_outsource(Message::decode(frame)?)?);
            server.install_label_filter(labels);
            watches.push(server.filter_watch());
            let clients: Vec<ServerClient> = (0..replicas)
                .map(|_| {
                    let handle =
                        ServerHandle::spawn_pool_shared(Arc::clone(&server), options.clone());
                    let client = handle.client();
                    handles.push(handle);
                    client
                })
                .collect();
            replica_clients.push(clients);
        }
        let router = ShardRouter::tuned(replica_clients, watches, router_options);
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            replicas_per_shard: replicas,
            router,
        })
    }

    /// [`Self::bootstrap`] onto the on-disk segment backend: each shard's
    /// partition of the (globally built) index is persisted to
    /// `segment_dir/shard-<i>.idx` and served from disk via
    /// [`CloudServer::from_outsource_segment`] — one segment per shard,
    /// same ciphertexts, so sharded rankings stay byte-identical to the
    /// in-memory path.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures and segment I/O failures.
    pub fn bootstrap_segmented(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        segment_dir: impl AsRef<std::path::Path>,
        options: PoolOptions,
    ) -> Result<Self, CloudError> {
        let segment_dir = segment_dir.as_ref();
        std::fs::create_dir_all(segment_dir).map_err(rsse_core::PersistError::from)?;
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let handles: Vec<ServerHandle> = owner
            .outsource_sharded(docs, &partitioner)?
            .into_iter()
            .enumerate()
            .map(|(shard, outsource)| {
                let frame = outsource.encode();
                let server = CloudServer::from_outsource_segment(
                    Message::decode(frame)?,
                    segment_dir.join(format!("shard-{shard}.idx")),
                    CloudServer::DEFAULT_CACHE_BUDGET,
                )?;
                Ok(ServerHandle::spawn_pool_with(server, options.clone()))
            })
            .collect::<Result<_, CloudError>>()?;
        let router = ShardRouter::new(handles.iter().map(ServerHandle::client).collect());
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            replicas_per_shard: 1,
            router,
        })
    }

    /// [`Self::bootstrap`] onto the generational store: each shard's
    /// partition is persisted under `store_dir/shard-<i>/` (base
    /// generation + manifest) and served from disk via
    /// [`CloudServer::from_outsource_generational`]. Per-shard update
    /// streams flush into per-shard L0 deltas and compact live without
    /// stalling that shard's serving pool — same ciphertexts, so sharded
    /// rankings stay byte-identical to the in-memory path.
    ///
    /// # Errors
    ///
    /// Propagates index-construction failures and store I/O failures.
    pub fn bootstrap_generational(
        master_seed: &[u8],
        params: RsseParams,
        docs: &[Document],
        num_shards: usize,
        store_dir: impl AsRef<std::path::Path>,
        options: PoolOptions,
    ) -> Result<Self, CloudError> {
        let store_dir = store_dir.as_ref();
        std::fs::create_dir_all(store_dir).map_err(rsse_core::PersistError::from)?;
        let owner = DataOwner::new(master_seed, params);
        let partitioner = IndexPartitioner::new(num_shards);
        let handles: Vec<ServerHandle> = owner
            .outsource_sharded(docs, &partitioner)?
            .into_iter()
            .enumerate()
            .map(|(shard, outsource)| {
                let frame = outsource.encode();
                let server = CloudServer::from_outsource_generational(
                    Message::decode(frame)?,
                    store_dir.join(format!("shard-{shard}")),
                    CloudServer::DEFAULT_CACHE_BUDGET,
                )?;
                Ok(ServerHandle::spawn_pool_with(server, options.clone()))
            })
            .collect::<Result<_, CloudError>>()?;
        let router = ShardRouter::new(handles.iter().map(ServerHandle::client).collect());
        let user = owner.authorize_user();
        Ok(ShardedDeployment {
            owner,
            user,
            partitioner,
            handles,
            replicas_per_shard: 1,
            router,
        })
    }

    /// The authorized user.
    pub fn user(&self) -> &User {
        &self.user
    }

    /// The data owner.
    pub fn owner(&self) -> &DataOwner {
        &self.owner
    }

    /// The partition rule shards were populated under.
    pub fn partitioner(&self) -> IndexPartitioner {
        self.partitioner
    }

    /// The scatter-gather coordinator.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Shared handle to shard `i`'s server (audit log, raw index), if it
    /// exists. Under replicas this is the one server every replica pool
    /// of the shard serves from.
    pub fn shard_server(&self, shard: usize) -> Option<Arc<CloudServer>> {
        self.handles
            .get(shard * self.replicas_per_shard)
            .map(ServerHandle::server)
    }

    /// Sharded ranked search: scatter the keyword's trapdoor to every
    /// shard, merge, and decrypt the top-k files.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures, and [`CloudError::AllShardsFailed`]
    /// when no shard replied.
    pub fn rsse_search(
        &self,
        keyword: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<Document>, ScatterOutcome), CloudError> {
        let legs = self
            .user
            .shard_query(keyword, top_k, self.router.num_shards() as u32)?;
        let outcome = self.router.scatter(legs, top_k.map(|k| k as usize))?;
        let docs = self.user.decrypt_files(&outcome.files)?;
        Ok((docs, outcome))
    }

    /// Batched sharded ranked search: every keyword's trapdoor rides the
    /// same scatter leg to each shard ([`User::batch_shard_query`]), and
    /// each keyword's merged ranking comes back byte-identical to a
    /// dedicated [`ShardedDeployment::rsse_search`] for it. Returns the
    /// decrypted top-k documents per keyword, in request order.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures, and [`CloudError::AllShardsFailed`]
    /// when no shard replied.
    pub fn rsse_search_batch(
        &self,
        keywords: &[&str],
        top_k: Option<u32>,
    ) -> Result<(Vec<Vec<Document>>, BatchScatterOutcome), CloudError> {
        let legs = self
            .user
            .batch_shard_query(keywords, top_k, self.router.num_shards() as u32)?;
        let outcome = self.router.scatter_batch(legs, top_k.map(|k| k as usize))?;
        let docs = outcome
            .queries
            .iter()
            .map(|(_, files)| self.user.decrypt_files(files))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((docs, outcome))
    }

    /// Sharded conjunctive ranked search: scatter the query's trapdoor
    /// set to every shard ([`User::conjunctive_shard_query`]), merge the
    /// per-shard local intersections by `score_sum`, and decrypt the
    /// top-k files. Byte-identical to the unsharded
    /// [`Deployment::conjunctive_search`](crate::entities::Deployment::conjunctive_search)
    /// when no leg degrades.
    ///
    /// # Errors
    ///
    /// Propagates trapdoor failures, and [`CloudError::AllShardsFailed`]
    /// when no shard replied.
    pub fn conjunctive_search(
        &self,
        query: &str,
        top_k: Option<u32>,
    ) -> Result<(Vec<Document>, ConjunctiveScatterOutcome), CloudError> {
        let legs =
            self.user
                .conjunctive_shard_query(query, top_k, self.router.num_shards() as u32)?;
        let outcome = self
            .router
            .scatter_conjunctive(legs, top_k.map(|k| k as usize))?;
        let docs = self.user.decrypt_files(&outcome.files)?;
        Ok((docs, outcome))
    }

    /// Shuts every shard pool down, returning the total requests served
    /// across all shards.
    pub fn shutdown(self) -> u64 {
        self.handles.into_iter().map(ServerHandle::shutdown).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_loop::Fault;
    use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
    use std::sync::Once;

    /// Silences the default panic printout for the panics this suite
    /// injects on purpose; genuine panics still print.
    fn quiet_injected_panics() {
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let default_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let injected = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("injected fault"));
                if !injected {
                    default_hook(info);
                }
            }));
        });
    }

    fn rr(file: u64, score: u64) -> RankedResult {
        RankedResult {
            file: FileId::new(file),
            encrypted_score: score,
        }
    }

    fn ef(id: u64) -> EncryptedFile {
        EncryptedFile::new(FileId::new(id), vec![id as u8; 8])
    }

    #[test]
    fn partitioner_is_deterministic_and_covers_all_shards() {
        for n in 1..=8usize {
            let p = IndexPartitioner::new(n);
            assert_eq!(p.num_shards(), n);
            let mut hit = vec![false; n];
            for id in 0..256u64 {
                let s = p.shard_of(FileId::new(id));
                assert!(s < n);
                assert_eq!(s, p.shard_of(FileId::new(id)), "deterministic");
                hit[s] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "256 files must touch all {n} shards"
            );
        }
        assert_eq!(IndexPartitioner::new(0).num_shards(), 1, "clamped");
    }

    #[test]
    fn merge_aligns_files_with_duplicate_scores_and_empty_shards() {
        // Shard 0 and 1 tie on score 90 (distinct files); shard 2 is empty.
        let rankings = vec![
            vec![rr(4, 90), rr(1, 10)],
            vec![rr(2, 90), rr(7, 50)],
            vec![],
        ];
        let files = vec![vec![ef(4), ef(1)], vec![ef(2), ef(7)], vec![]];
        let (ranking, out_files) = merge_shard_replies(&rankings, files, Some(3));
        assert_eq!(ranking, vec![rr(2, 90), rr(4, 90), rr(7, 50)]);
        let ids: Vec<u64> = out_files.iter().map(|f| f.id().as_u64()).collect();
        assert_eq!(ids, vec![2, 4, 7], "files track the merged rank order");
        // k beyond the total returns everything, still aligned.
        let files = vec![vec![ef(4), ef(1)], vec![ef(2), ef(7)], vec![]];
        let (all, all_files) = merge_shard_replies(&rankings, files, Some(99));
        assert_eq!(all.len(), 4);
        assert_eq!(all_files.len(), 4);
    }

    #[test]
    fn merge_drops_misaligned_files_instead_of_misattributing() {
        let rankings = vec![vec![rr(4, 90)]];
        // The shard claims result 4 but ships file 9.
        let files = vec![vec![ef(9)]];
        let (ranking, out_files) = merge_shard_replies(&rankings, files, None);
        assert_eq!(ranking, vec![rr(4, 90)]);
        assert!(out_files.is_empty(), "a lying shard's file is dropped");
    }

    fn small_docs(seed: u64) -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusParams::small(seed))
    }

    #[test]
    fn sharded_search_round_trips_and_meters_legs() {
        let corpus = small_docs(71);
        let cloud = ShardedDeployment::bootstrap(
            b"shard seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        let (docs, outcome) = cloud.rsse_search("network", Some(5)).unwrap();
        assert_eq!(outcome.ranking.len(), 5);
        assert_eq!(docs.len(), 5);
        assert!(outcome.is_complete());
        assert_eq!(outcome.shards_ok, 3);
        assert_eq!(outcome.traffic.shard_legs, 3);
        assert_eq!(outcome.traffic.round_trips, 3);
        assert_eq!(outcome.traffic.error_frames, 0);
        assert!(outcome.traffic.bytes_down > 0);
        // Each shard audited exactly one scatter leg.
        for shard in 0..3 {
            let report = cloud.shard_server(shard).unwrap().serving_report();
            assert_eq!(report.shard_queries, 1, "shard {shard}");
        }
        assert_eq!(cloud.shutdown(), 3);
    }

    #[test]
    fn batched_scatter_matches_per_keyword_scatter() {
        let corpus = small_docs(75);
        let cloud = ShardedDeployment::bootstrap(
            b"batch shard seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            PoolOptions::new(1, 16),
        )
        .unwrap();
        let keywords = ["network", "data"];

        // Reference: one scatter per keyword.
        let singles: Vec<Vec<RankedResult>> = keywords
            .iter()
            .map(|kw| cloud.rsse_search(kw, Some(5)).unwrap().1.ranking)
            .collect();

        let (docs, outcome) = cloud.rsse_search_batch(&keywords, Some(5)).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.shards_ok, 3);
        assert_eq!(outcome.queries.len(), keywords.len());
        for (q, (ranking, files)) in outcome.queries.iter().enumerate() {
            assert_eq!(
                ranking, &singles[q],
                "batched merge must equal the dedicated scatter for query {q}"
            );
            assert_eq!(files.len(), ranking.len());
        }
        assert_eq!(docs.len(), keywords.len());
        // 2 keywords × 3 shards amortized into 3 legs / round trips.
        assert_eq!(outcome.traffic.shard_legs, 3);
        assert_eq!(outcome.traffic.round_trips, 3);
        assert_eq!(outcome.traffic.batched_queries, 6);
        cloud.shutdown();
    }

    #[test]
    fn batched_scatter_misaddressed_reply_degrades() {
        let corpus = small_docs(76);
        let cloud = ShardedDeployment::bootstrap(
            b"batch misroute seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        let mut legs = cloud
            .user()
            .batch_shard_query(&["network"], Some(3), 2)
            .unwrap();
        legs.swap(0, 1);
        let err = cloud.router().scatter_batch(legs, Some(3)).unwrap_err();
        assert!(matches!(err, CloudError::AllShardsFailed { shards: 2 }));
        cloud.shutdown();
    }

    #[test]
    fn one_faulted_shard_degrades_the_result_set_not_the_query() {
        quiet_injected_panics();
        let corpus = small_docs(72);
        let faulty = 1usize;
        let cloud = ShardedDeployment::bootstrap_with(
            b"degrade seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            |shard| {
                let options = PoolOptions::new(1, 8);
                if shard == faulty {
                    options.with_fault(|msg| {
                        matches!(msg, Message::ShardQuery { .. }).then_some(Fault::Panic("boom"))
                    })
                } else {
                    options
                }
            },
        )
        .unwrap();

        let (_, healthy) = cloud.rsse_search("network", None).unwrap();
        // Re-run with the fault armed on shard 1 only: the query still
        // succeeds, minus exactly shard 1's partition.
        let (docs, outcome) = cloud.rsse_search("network", None).unwrap();
        assert_eq!(outcome.shards_ok, 2);
        assert_eq!(outcome.degraded.len(), 1, "degradation is reported");
        let leg = &outcome.degraded[0];
        assert_eq!(leg.shard_id, faulty as u32);
        assert!(
            matches!(&leg.error, CloudError::Server { kind, .. } if *kind == ErrorKind::Internal),
            "the dead leg carries the shard's error frame: {:?}",
            leg.error
        );
        // The error frame's bytes are on the wire like any reply.
        assert_eq!(outcome.traffic.error_frames, 1);
        assert_eq!(outcome.traffic.shard_legs, 3);
        // Surviving shards' results are intact: the degraded ranking is
        // the healthy one minus the faulted shard's files.
        let p = cloud.partitioner();
        let expect: Vec<RankedResult> = healthy
            .ranking
            .iter()
            .copied()
            .filter(|r| p.shard_of(r.file) != faulty)
            .collect();
        assert_eq!(outcome.ranking, expect);
        assert_eq!(docs.len(), outcome.ranking.len());
        cloud.shutdown();
    }

    #[test]
    fn all_shards_failing_is_an_error_not_an_empty_result() {
        quiet_injected_panics();
        let corpus = small_docs(73);
        let cloud = ShardedDeployment::bootstrap_with(
            b"total loss seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            |_| {
                PoolOptions::new(1, 8).with_fault(|msg| {
                    matches!(msg, Message::ShardQuery { .. }).then_some(Fault::Panic("boom"))
                })
            },
        )
        .unwrap();
        let err = cloud.rsse_search("network", Some(3)).unwrap_err();
        assert!(
            matches!(err, CloudError::AllShardsFailed { shards: 2 }),
            "got {err:?}"
        );
        cloud.shutdown();
    }

    /// Eight filler docs plus exactly one document holding the only
    /// "quasar" posting — so precisely one shard can answer a "quasar"
    /// query with real entries, whatever the shard count.
    fn pruning_corpus() -> Vec<Document> {
        let mut docs: Vec<Document> = (0..8u64)
            .map(|i| Document::new(FileId::new(100 + i), format!("alpha beta gamma doc {i}")))
            .collect();
        docs.push(Document::new(FileId::new(7), "quasar alpha".to_string()));
        docs
    }

    #[test]
    fn pruning_skips_filtered_shards_and_preserves_the_ranking() {
        let docs = pruning_corpus();
        let shards = 4usize;
        let plain = ShardedDeployment::bootstrap(
            b"prune seed",
            RsseParams::default(),
            &docs,
            shards,
            PoolOptions::new(1, 16),
        )
        .unwrap();
        let tuned = ShardedDeployment::bootstrap_tuned(
            b"prune seed",
            RsseParams::default(),
            &docs,
            shards,
            PoolOptions::new(1, 16),
            RouterOptions::new().with_pruning(),
        )
        .unwrap();

        let (_, want) = plain.rsse_search("quasar", None).unwrap();
        let (_, got) = tuned.rsse_search("quasar", None).unwrap();
        assert_eq!(
            got.ranking, want.ranking,
            "pruned scatter must be byte-identical"
        );
        assert!(got.is_complete());
        assert_eq!(
            got.shards_ok, shards as u32,
            "pruned shards count as answered"
        );
        // Exactly one shard owns the only "quasar" posting; the rest
        // prove their emptiness and are pruned.
        assert_eq!(got.traffic.shard_legs, 1);
        assert_eq!(got.traffic.pruned_legs, shards as u32 - 1);
        // The first query pays one filter fetch per shard; a repeat,
        // with every filter current, pays none.
        assert_eq!(got.traffic.filter_fetches, shards as u32);
        let (_, again) = tuned.rsse_search("quasar", None).unwrap();
        assert_eq!(again.ranking, want.ranking);
        assert_eq!(again.traffic.filter_fetches, 0);

        // A keyword no document contains prunes every shard: an empty,
        // *complete* result, not an AllShardsFailed error.
        let (none_docs, all_pruned) = tuned.rsse_search("zyzzyva", None).unwrap();
        assert!(none_docs.is_empty());
        assert!(all_pruned.ranking.is_empty());
        assert!(all_pruned.is_complete());
        assert_eq!(all_pruned.shards_ok, shards as u32);
        assert_eq!(all_pruned.traffic.pruned_legs, shards as u32);
        assert_eq!(all_pruned.traffic.shard_legs, 0);
        plain.shutdown();
        tuned.shutdown();
    }

    #[test]
    fn merged_cache_hit_costs_zero_legs() {
        let docs = pruning_corpus();
        let tuned = ShardedDeployment::bootstrap_tuned(
            b"merge cache seed",
            RsseParams::default(),
            &docs,
            3,
            PoolOptions::new(1, 16),
            RouterOptions::new().with_merged_cache(1 << 20),
        )
        .unwrap();
        let (_, first) = tuned.rsse_search("alpha", Some(5)).unwrap();
        assert_eq!(first.traffic.shard_legs, 3);
        let (cached_docs, second) = tuned.rsse_search("alpha", Some(5)).unwrap();
        assert_eq!(
            second.ranking, first.ranking,
            "a cache hit replays the merge"
        );
        assert_eq!(second.traffic.shard_legs, 0, "a hit costs zero legs");
        assert_eq!(second.traffic.round_trips, 0);
        assert!(second.is_complete());
        assert_eq!(second.shards_ok, 3);
        assert_eq!(
            cached_docs.len(),
            second.ranking.len(),
            "cached files decrypt"
        );
        let stats = tuned.router().merged_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // A different top_k is a different cache key — served by a fresh
        // scatter whose ranking is the longer one's prefix.
        let (_, other_k) = tuned.rsse_search("alpha", Some(2)).unwrap();
        assert_eq!(other_k.traffic.shard_legs, 3);
        assert_eq!(other_k.ranking.len(), 2);
        assert_eq!(&first.ranking[..2], &other_k.ranking[..]);
        tuned.shutdown();
    }

    #[test]
    fn updates_invalidate_filters_and_merged_cache() {
        let docs = pruning_corpus();
        let shards = 4usize;
        let master = b"router coherence seed";
        let params = RsseParams::default();
        let tuned = ShardedDeployment::bootstrap_tuned(
            master,
            params,
            &docs,
            shards,
            PoolOptions::new(1, 16),
            RouterOptions::new()
                .with_pruning()
                .with_merged_cache(1 << 20),
        )
        .unwrap();
        let partitioner = tuned.partitioner();

        let (_, first) = tuned.rsse_search("quasar", None).unwrap();
        assert_eq!(first.ranking.len(), 1);
        assert_eq!(first.traffic.shard_legs, 1);
        let quasar_shard = partitioner.shard_of(first.ranking[0].file);
        // Cached now: a repeat costs neither legs nor pruning decisions.
        let (_, cached) = tuned.rsse_search("quasar", None).unwrap();
        assert_eq!(cached.traffic.shard_legs, 0);
        assert_eq!(cached.traffic.pruned_legs, 0);

        // Grow "quasar" onto a *different* shard via a live update.
        let scheme = rsse_core::Rsse::new(master, params);
        let plain_index = rsse_ir::InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = crate::files::FileCrypter::new(master);
        let new_id = (1_000_000u64..)
            .find(|&id| partitioner.shard_of(FileId::new(id)) != quasar_shard)
            .unwrap();
        let doc = Document::new(FileId::new(new_id), "quasar sighting".to_string());
        let update = updater.add_document(&doc).unwrap();
        let shard = partitioner.shard_of(doc.id());
        tuned
            .shard_server(shard)
            .unwrap()
            .apply_update(update, vec![crypter.encrypt(&doc)]);

        // The touched shard's epoch moved: its filter is re-fetched, the
        // merged cache is flushed, and that shard is no longer pruned —
        // the new posting is served, never hidden by stale router state.
        let (_, after) = tuned.rsse_search("quasar", None).unwrap();
        assert_eq!(
            after.traffic.filter_fetches, 1,
            "only the updated shard re-fetches"
        );
        assert_eq!(after.traffic.shard_legs, 2);
        assert_eq!(after.traffic.pruned_legs, shards as u32 - 2);
        assert_eq!(after.ranking.len(), 2);
        assert!(after.ranking.iter().any(|r| r.file == doc.id()));
        tuned.shutdown();
    }

    #[test]
    fn replica_reads_spread_load_and_account_served_requests() {
        let corpus = small_docs(77);
        let shards = 2usize;
        let replicas = 3usize;
        let tuned = ShardedDeployment::bootstrap_tuned(
            b"replica seed",
            RsseParams::default(),
            corpus.documents(),
            shards,
            PoolOptions::new(1, 16),
            RouterOptions::new().with_replicas(replicas),
        )
        .unwrap();
        let queries = 30u64;
        let mut want: Option<Vec<RankedResult>> = None;
        for _ in 0..queries {
            let (_, outcome) = tuned.rsse_search("network", Some(5)).unwrap();
            assert!(outcome.is_complete());
            assert_eq!(outcome.traffic.shard_legs, shards as u32);
            match &want {
                None => want = Some(outcome.ranking),
                Some(w) => assert_eq!(&outcome.ranking, w, "replicas serve identical bytes"),
            }
        }
        let routing = tuned.router().replica_routing();
        assert_eq!(routing.len(), shards);
        for (shard, counts) in routing.iter().enumerate() {
            assert_eq!(counts.len(), replicas);
            assert_eq!(counts.iter().sum::<u64>(), queries, "shard {shard} total");
            let used = counts.iter().filter(|&&c| c > 0).count();
            assert!(
                used >= 2,
                "shard {shard} routed everything to one replica: {counts:?}"
            );
        }
        // Every routed leg was served by some replica pool of its shard.
        assert_eq!(tuned.shutdown(), queries * shards as u64);
    }

    #[test]
    fn sharded_conjunction_matches_the_unsharded_server() {
        let corpus = small_docs(78);
        let single = crate::entities::Deployment::bootstrap(
            b"conj shard seed",
            RsseParams::default(),
            corpus.documents(),
        )
        .unwrap();
        let sharded = ShardedDeployment::bootstrap(
            b"conj shard seed",
            RsseParams::default(),
            corpus.documents(),
            3,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        for top_k in [None, Some(1), Some(5), Some(100)] {
            let (want, want_docs, _) = single
                .conjunctive_search_ranked("network data", top_k)
                .unwrap();
            let (docs, outcome) = sharded.conjunctive_search("network data", top_k).unwrap();
            assert!(outcome.is_complete());
            assert_eq!(outcome.shards_ok, 3);
            assert_eq!(
                outcome.ranking, want,
                "sharded conjunctive merge must be byte-identical (top_k {top_k:?})"
            );
            let got_ids: Vec<_> = docs.iter().map(Document::id).collect();
            let want_ids: Vec<_> = want_docs.iter().map(Document::id).collect();
            assert_eq!(got_ids, want_ids);
        }
        // Legs are metered as conjunctive legs, never as shard legs.
        let (_, outcome) = sharded.conjunctive_search("network data", Some(5)).unwrap();
        assert_eq!(outcome.traffic.conjunctive_legs, 3);
        assert_eq!(outcome.traffic.conjunctive_queries, 1);
        assert_eq!(outcome.traffic.shard_legs, 0);
        assert_eq!(outcome.traffic.round_trips, 3);
        // Each shard audited its conjunctive scatter legs.
        let audited: u64 = (0..3)
            .map(|s| {
                sharded
                    .shard_server(s)
                    .unwrap()
                    .serving_report()
                    .conjunctive_shard_queries
            })
            .sum();
        assert_eq!(audited, 5 * 3);
        sharded.shutdown();
    }

    #[test]
    fn conjunctive_pruning_skips_shards_missing_any_label() {
        let docs = pruning_corpus();
        let shards = 4usize;
        let plain = ShardedDeployment::bootstrap(
            b"conj prune seed",
            RsseParams::default(),
            &docs,
            shards,
            PoolOptions::new(1, 16),
        )
        .unwrap();
        let tuned = ShardedDeployment::bootstrap_tuned(
            b"conj prune seed",
            RsseParams::default(),
            &docs,
            shards,
            PoolOptions::new(1, 16),
            RouterOptions::new().with_pruning(),
        )
        .unwrap();

        // Only one document holds "quasar", so only its shard can hold
        // both labels; every other shard's filter proves an empty
        // intersection and is pruned.
        let (_, want) = plain.conjunctive_search("quasar alpha", None).unwrap();
        let (_, got) = tuned.conjunctive_search("quasar alpha", None).unwrap();
        assert_eq!(
            got.ranking, want.ranking,
            "pruned conjunctive scatter must be byte-identical"
        );
        assert_eq!(got.ranking.len(), 1);
        assert!(got.is_complete());
        assert_eq!(got.shards_ok, shards as u32);
        assert_eq!(got.traffic.conjunctive_legs, 1);
        assert_eq!(got.traffic.pruned_legs, shards as u32 - 1);

        // A conjunction with an unknown keyword prunes every shard: an
        // empty, complete result, not an error.
        let (none_docs, all_pruned) = tuned.conjunctive_search("alpha zyzzyva", None).unwrap();
        assert!(none_docs.is_empty());
        assert!(all_pruned.ranking.is_empty());
        assert!(all_pruned.is_complete());
        assert_eq!(all_pruned.traffic.pruned_legs, shards as u32);
        assert_eq!(all_pruned.traffic.conjunctive_legs, 0);
        plain.shutdown();
        tuned.shutdown();
    }

    #[test]
    fn conjunctive_merged_cache_hits_share_keyword_orderings_and_invalidate_on_update() {
        let docs = pruning_corpus();
        let shards = 3usize;
        let master = b"conj cache seed";
        let params = RsseParams::default();
        let tuned = ShardedDeployment::bootstrap_tuned(
            master,
            params,
            &docs,
            shards,
            PoolOptions::new(1, 16),
            RouterOptions::new().with_merged_cache(1 << 20),
        )
        .unwrap();

        let (_, first) = tuned.conjunctive_search("alpha beta", Some(5)).unwrap();
        assert_eq!(first.traffic.conjunctive_legs, shards as u32);
        let (cached_docs, second) = tuned.conjunctive_search("alpha beta", Some(5)).unwrap();
        assert_eq!(
            second.ranking, first.ranking,
            "a cache hit replays the merge"
        );
        assert_eq!(second.traffic.conjunctive_legs, 0, "a hit costs zero legs");
        assert_eq!(second.traffic.round_trips, 0);
        assert_eq!(cached_docs.len(), second.ranking.len());

        // The reversed keyword order shares the entry: same files, same
        // sums, per-keyword scores swapped back to the asking order.
        let (_, swapped) = tuned.conjunctive_search("beta alpha", Some(5)).unwrap();
        assert_eq!(
            swapped.traffic.conjunctive_legs, 0,
            "order-erased key shares the entry"
        );
        let unswapped: Vec<(u64, Vec<u64>)> = swapped
            .ranking
            .iter()
            .map(|(id, scores)| (*id, scores.iter().copied().rev().collect()))
            .collect();
        assert_eq!(unswapped, first.ranking);
        let stats = tuned.router().conjunctive_merged_cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));

        // A live update moves the shard's epoch: the cache flushes and
        // the new posting is served, never hidden by stale router state.
        let partitioner = tuned.partitioner();
        let scheme = rsse_core::Rsse::new(master, params);
        let plain_index = rsse_ir::InvertedIndex::build(&docs);
        let updater = scheme.updater_for(&plain_index).unwrap();
        let crypter = crate::files::FileCrypter::new(master);
        let doc = Document::new(FileId::new(2_000_000), "alpha beta reborn".to_string());
        let update = updater.add_document(&doc).unwrap();
        let shard = partitioner.shard_of(doc.id());
        tuned
            .shard_server(shard)
            .unwrap()
            .apply_update(update, vec![crypter.encrypt(&doc)]);

        let (_, after) = tuned.conjunctive_search("alpha beta", Some(20)).unwrap();
        assert_eq!(
            after.traffic.conjunctive_legs, shards as u32,
            "flushed: full scatter again"
        );
        assert!(after.ranking.iter().any(|(id, _)| *id == doc.id().as_u64()));
        tuned.shutdown();
    }

    #[test]
    fn misaddressed_reply_degrades_the_leg() {
        // A leg whose reply echoes the wrong shard id is out of protocol.
        let corpus = small_docs(74);
        let cloud = ShardedDeployment::bootstrap(
            b"misroute seed",
            RsseParams::default(),
            corpus.documents(),
            2,
            PoolOptions::new(1, 8),
        )
        .unwrap();
        // Hand-build legs that swap the shard ids: each shard answers with
        // an echo that fails the router's correlation check.
        let mut legs = cloud.user().shard_query("network", Some(3), 2).unwrap();
        legs.swap(0, 1);
        let err = cloud.router().scatter(legs, Some(3)).unwrap_err();
        assert!(matches!(err, CloudError::AllShardsFailed { shards: 2 }));
        cloud.shutdown();
    }
}
