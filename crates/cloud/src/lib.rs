//! Simulated cloud deployment of the RSSE system (the paper's Fig. 1).
//!
//! * [`entities`] — data owner, honest-but-curious cloud server, and
//!   authorized users, wired through an exact-byte metered channel;
//! * [`codec`] — the hand-rolled binary wire format (every bandwidth number
//!   is a real frame size);
//! * [`network`] — latency/bandwidth cost model for comparing the one-round
//!   RSSE protocol against the basic scheme's naive and two-round variants;
//! * [`files`] — encrypted file storage;
//! * [`adversary`] — the statistical keyword-fingerprinting attack the
//!   one-to-many mapping defends against (Fig. 4 vs Fig. 6);
//! * [`transport`] / [`tcp`] — the byte-stream serving seam: one
//!   `Transport` trait over the deterministic in-process channel harness
//!   and a real non-blocking TCP event loop with pipelining and
//!   backpressure.
//!
//! # Example
//!
//! ```
//! use rsse_cloud::entities::Deployment;
//! use rsse_core::RsseParams;
//! use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
//!
//! # fn main() -> Result<(), rsse_cloud::CloudError> {
//! let corpus = SyntheticCorpus::generate(&CorpusParams::small(3));
//! let cloud = Deployment::bootstrap(b"seed", RsseParams::default(), corpus.documents())?;
//! let (docs, traffic) = cloud.rsse_search("network", Some(5))?;
//! assert_eq!(docs.len(), 5);
//! assert_eq!(traffic.round_trips, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod audit;
pub mod cache;
pub mod codec;
pub mod entities;
pub mod error;
pub mod files;
pub mod keydist;
pub mod network;
pub mod server_loop;
pub mod shard;
pub mod tcp;
pub mod transport;

pub use audit::{AuditCounters, AuditLog, RequestKind, ServingReport};
pub use cache::{CacheStats, ConjunctiveCache, RankingCache};
pub use codec::{
    frame_message, BatchResult, CodecError, ErrorKind, FrameAssembler, Message, SearchMode,
    FRAME_HEADER_LEN, MAX_FRAME_LEN,
};
pub use entities::{CloudServer, DataOwner, Deployment, User};
pub use error::CloudError;
pub use files::{EncryptedFile, FileCrypter, FileStore};
pub use network::{MeteredChannel, NetworkParams, TrafficReport};
pub use server_loop::{
    serve_frame, Fault, FaultHook, PendingReply, PoolOptions, ServerClient, ServerHandle,
};
pub use shard::{
    merge_conjunctive_replies, BatchScatterOutcome, ConjunctiveScatterOutcome, IndexPartitioner,
    RouterOptions, ScatterOutcome, ShardRouter, ShardedDeployment,
};
pub use tcp::{TcpConnection, TcpServer, TcpServerOptions, TcpServerStats, TcpTransport};
pub use transport::{ChannelTransport, Connection, FrameMeter, Transport};
