//! Transport equivalence: the simulated channel transport and the real
//! TCP transport must produce **byte-identical** reply frames, rankings,
//! and traffic reports for the same request log.
//!
//! Two servers are built from the same `Outsource` message and driven
//! through the same phased request log (pipelined searches and batches,
//! a barriered update, more searches) over each transport. Reply bodies
//! are compared per sequence id; since both transports share the one
//! [`frame_message`] envelope, equal bodies make the full wire frames
//! equal too — asserted literally below.

use rsse_cloud::entities::{CloudServer, DataOwner};
use rsse_cloud::server_loop::{PoolOptions, ServerHandle};
use rsse_cloud::tcp::{TcpServer, TcpServerOptions, TcpTransport};
use rsse_cloud::transport::{ChannelTransport, Transport};
use rsse_cloud::{frame_message, FileCrypter, Message, SearchMode};
use rsse_core::{Rsse, RsseParams};
use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
use rsse_ir::{Document, FileId, InvertedIndex};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const SEED: &[u8] = b"equivalence seed";
const TIMEOUT: Duration = Duration::from_secs(30);

/// The shared request log, as phases: messages within a phase are
/// pipelined; phases are barriered (all replies collected first) so the
/// update serializes against the searches around it on both transports.
fn request_log(owner: &DataOwner, corpus: &SyntheticCorpus) -> Vec<Vec<Message>> {
    let user = owner.authorize_user();
    let scheme = Rsse::new(SEED, RsseParams::default());
    let plain_index = InvertedIndex::build(corpus.documents());
    let updater = scheme.updater_for(&plain_index).unwrap();
    let crypter = FileCrypter::new(SEED);
    let new_doc = Document::new(FileId::new(9001), "network cipher equivalence");
    let update = updater.add_document(&new_doc).unwrap();
    vec![
        vec![
            user.search_request("network", Some(5), SearchMode::Rsse)
                .unwrap(),
            user.search_request("protocol", None, SearchMode::Rsse)
                .unwrap(),
            user.search_request("cipher", Some(3), SearchMode::Rsse)
                .unwrap(),
            user.search_request("unindexedword", Some(5), SearchMode::Rsse)
                .unwrap(),
            user.batch_search_request(&["network", "protocol", "network"], Some(4))
                .unwrap(),
            Message::FetchFiles { ids: vec![1, 2, 3] },
        ],
        vec![Message::Update {
            rsse_lists: update.into_parts(),
            files: vec![crypter.encrypt(&new_doc)],
        }],
        vec![
            user.search_request("network", Some(8), SearchMode::Rsse)
                .unwrap(),
            user.batch_search_request(&["cipher", "network"], None)
                .unwrap(),
        ],
    ]
}

/// Replays the log over one connection of `transport`, returning the
/// reply body of every sequence id.
fn replay(transport: &dyn Transport, phases: &[Vec<Message>]) -> BTreeMap<u64, Vec<u8>> {
    let mut conn = transport.connect().unwrap();
    let mut replies = BTreeMap::new();
    for phase in phases {
        let mut outstanding = 0;
        for msg in phase {
            conn.send(msg.clone()).unwrap();
            outstanding += 1;
        }
        for _ in 0..outstanding {
            let (seq, body) = conn.recv_any(TIMEOUT).unwrap();
            assert!(
                replies.insert(seq, body).is_none(),
                "sequence id {seq} delivered twice"
            );
        }
    }
    replies
}

#[test]
fn tcp_and_channel_transports_are_byte_identical() {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(77));
    let owner = DataOwner::new(SEED, RsseParams::default());
    let outsource = owner.outsource(corpus.documents()).unwrap();
    let phases = request_log(&owner, &corpus);
    let total_requests: usize = phases.iter().map(Vec::len).sum();

    let handle = ServerHandle::spawn_pool_with(
        CloudServer::from_outsource(outsource.clone()).unwrap(),
        PoolOptions::new(2, 64),
    );
    let channel = ChannelTransport::new(handle.client());
    let channel_replies = replay(&channel, &phases);

    let tcp_server = TcpServer::spawn(
        Arc::new(CloudServer::from_outsource(outsource).unwrap()),
        TcpServerOptions::new(2, 64),
    )
    .unwrap();
    let tcp = TcpTransport::new(tcp_server.addr());
    let tcp_replies = replay(&tcp, &phases);

    // Byte-identical reply bodies per sequence id — and therefore
    // byte-identical wire frames, since both sides frame with the one
    // canonical frame_message.
    assert_eq!(channel_replies.len(), total_requests);
    assert_eq!(channel_replies, tcp_replies);
    for (seq, body) in &channel_replies {
        assert_eq!(
            frame_message(*seq, body),
            frame_message(*seq, &tcp_replies[seq])
        );
    }

    // Rankings decode equal and non-trivial (the byte comparison above
    // wasn't comparing empty responses).
    let first = Message::decode(bytes::BytesMut::from(&channel_replies[&0][..])).unwrap();
    let Message::RsseResponse { ranking, files } = first else {
        panic!("seq 0 should be the network search");
    };
    assert_eq!(ranking.len(), 5);
    assert_eq!(files.len(), 5);

    // Metering parity: framed bytes counted once at the framing layer on
    // both wires gives equal TrafficReports by construction.
    assert_eq!(channel.traffic(), tcp.traffic());
    assert!(channel.traffic().bytes_down > 0);

    let stats = tcp_server.stats();
    assert_eq!(stats.garbled, 0);
    assert_eq!(stats.overloaded, 0);
    assert_eq!(handle.shutdown(), total_requests as u64);
    assert_eq!(tcp_server.shutdown(), total_requests as u64);
}
