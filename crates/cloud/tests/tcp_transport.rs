//! Behavioural tests of the TCP event loop: pipelined out-of-order
//! completion matched by sequence id, slow-reader backpressure isolated
//! to its own connection, overload shedding with the canonical frame,
//! and garbled-stream hygiene.

use rsse_cloud::entities::{CloudServer, DataOwner};
use rsse_cloud::server_loop::{Fault, PoolOptions};
use rsse_cloud::tcp::{TcpServer, TcpServerOptions, TcpTransport};
use rsse_cloud::transport::Connection;
use rsse_cloud::{ErrorKind, Message, SearchMode};
use rsse_core::RsseParams;
use rsse_ir::corpus::{CorpusParams, SyntheticCorpus};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: &[u8] = b"tcp transport seed";
const TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(options: TcpServerOptions) -> (DataOwner, TcpServer) {
    let corpus = SyntheticCorpus::generate(&CorpusParams::small(61));
    let owner = DataOwner::new(SEED, RsseParams::default());
    let server = Arc::new(
        CloudServer::from_outsource(owner.outsource(corpus.documents()).unwrap()).unwrap(),
    );
    let tcp = TcpServer::spawn(server, options).unwrap();
    (owner, tcp)
}

fn decode(body: &[u8]) -> Message {
    Message::decode(bytes::BytesMut::from(body)).unwrap()
}

#[test]
fn out_of_order_completions_are_matched_by_sequence_id() {
    // Two workers; FetchFiles requests are wedged for 300ms, so a search
    // pipelined *behind* a fetch completes first. The replies must carry
    // their request's sequence ids, and recv_seq must deliver the late
    // fetch even after the search overtook it.
    let options =
        TcpServerOptions::new(2, 32).with_pool(PoolOptions::new(2, 32).with_fault(|msg| {
            matches!(msg, Message::FetchFiles { .. })
                .then_some(Fault::Stall(Duration::from_millis(300)))
        }));
    let (owner, server) = spawn(options);
    let transport = TcpTransport::new(server.addr());
    let mut conn = transport.dial().unwrap();
    let user = owner.authorize_user();

    let slow_seq = conn.send(Message::FetchFiles { ids: vec![1] }).unwrap();
    let fast_seq = conn
        .send(
            user.search_request("network", Some(3), SearchMode::Rsse)
                .unwrap(),
        )
        .unwrap();
    assert_ne!(slow_seq, fast_seq);

    let (first_seq, first_body) = conn.recv_any(TIMEOUT).unwrap();
    assert_eq!(
        first_seq, fast_seq,
        "the unwedged search must overtake the stalled fetch"
    );
    assert!(matches!(decode(&first_body), Message::RsseResponse { .. }));

    let slow_body = conn.recv_seq(slow_seq, TIMEOUT).unwrap();
    assert!(matches!(decode(&slow_body), Message::FilesResponse { .. }));
    server.shutdown();
}

#[test]
fn slow_reader_stalls_only_its_own_connection() {
    // Connection A pipelines full-list searches (each reply carries ~200
    // encrypted files) and refuses to read; once the kernel buffers and
    // A's 16 KiB write budget fill, the event loop stops reading A.
    // Connection B must keep completing round trips meanwhile, and A's
    // replies must all still arrive intact once it finally drains.
    const SLOW_PIPELINE: usize = 100;
    let options = TcpServerOptions::new(1, 2 * SLOW_PIPELINE).with_write_budget(16 << 10);
    let (owner, server) = spawn(options);
    let transport = TcpTransport::new(server.addr());
    let user = owner.authorize_user();
    let full_search = user
        .search_request("network", None, SearchMode::Rsse)
        .unwrap();

    let mut slow = transport.dial().unwrap();
    for _ in 0..SLOW_PIPELINE {
        slow.send(full_search.clone()).unwrap();
    }

    // Wait until the backpressure valve actually engages on A.
    let deadline = Instant::now() + TIMEOUT;
    while server.stats().backpressure_stalls == 0 {
        assert!(
            Instant::now() < deadline,
            "write budget never engaged: stats = {:?}",
            server.stats()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // B's latency is unaffected: fresh round trips complete promptly
    // while A sits stalled.
    let mut fast = transport.dial().unwrap();
    let quick = user
        .search_request("network", Some(2), SearchMode::Rsse)
        .unwrap();
    for _ in 0..20 {
        let seq = fast.send(quick.clone()).unwrap();
        let (got, body) = fast.recv_any(Duration::from_secs(5)).unwrap();
        assert_eq!(got, seq);
        assert!(matches!(decode(&body), Message::RsseResponse { .. }));
    }

    // A drains: every pipelined reply arrives, none dropped or garbled.
    let mut seqs: Vec<u64> = Vec::with_capacity(SLOW_PIPELINE);
    for _ in 0..SLOW_PIPELINE {
        let (seq, body) = slow.recv_any(TIMEOUT).unwrap();
        assert!(matches!(decode(&body), Message::RsseResponse { .. }));
        seqs.push(seq);
    }
    seqs.sort_unstable();
    assert_eq!(seqs, (0..SLOW_PIPELINE as u64).collect::<Vec<_>>());

    let stats = server.stats();
    assert!(stats.backpressure_stalls > 0);
    assert_eq!(stats.garbled, 0);
    assert_eq!(stats.overloaded, 0);
    server.shutdown();
}

#[test]
fn overload_sheds_the_canonical_frame_over_tcp() {
    // One wedged worker behind a one-slot backlog: a pipelined burst must
    // shed most requests immediately with the *same* Overloaded frame the
    // channel pool produces — not stall, not drop.
    let options = TcpServerOptions::new(1, 1)
        .with_pool(PoolOptions::new(1, 1).with_io_delay(Duration::from_millis(40)));
    let (owner, server) = spawn(options);
    let transport = TcpTransport::new(server.addr());
    let mut conn = transport.dial().unwrap();
    let user = owner.authorize_user();
    let req = user
        .search_request("network", Some(1), SearchMode::Rsse)
        .unwrap();
    const BURST: usize = 16;
    for _ in 0..BURST {
        conn.send(req.clone()).unwrap();
    }
    let canonical = Message::error(ErrorKind::Overloaded, "request backlog is full")
        .encode()
        .to_vec();
    let mut sheds = 0;
    for _ in 0..BURST {
        let (_, body) = conn.recv_any(TIMEOUT).unwrap();
        match decode(&body) {
            Message::Error { kind, .. } => {
                assert_eq!(kind, ErrorKind::Overloaded);
                assert_eq!(body, canonical, "shed frame must be byte-identical");
                sheds += 1;
            }
            Message::RsseResponse { .. } => {}
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    assert!(sheds > 0, "burst must exceed the one-slot backlog");
    assert_eq!(server.stats().overloaded, sheds);
    server.shutdown();
}

#[test]
fn garbled_length_prefix_closes_the_connection() {
    // A frame whose declared length exceeds the bounded-decode cap is
    // rejected from the 4 length bytes alone: the connection closes
    // before any payload could be buffered.
    let (_owner, server) = spawn(TcpServerOptions::new(1, 8));
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(&[0xFF; 12]).unwrap();
    raw.set_read_timeout(Some(TIMEOUT)).unwrap();
    let mut buf = [0u8; 16];
    // The server answers a hostile stream only with EOF.
    assert_eq!(raw.read(&mut buf).unwrap(), 0);
    let stats = server.stats();
    assert_eq!(stats.garbled, 1);
    assert!(stats.closed >= 1);
    server.shutdown();
}
