//! Allocation bounds for the decoder under hostile length prefixes.
//!
//! A frame can claim `u64::MAX` elements in eight bytes; a decoder that
//! pre-allocates what the prefix *claims* hands any client a memory DoS.
//! The codec instead caps every `Vec::with_capacity` by what the remaining
//! input bytes could actually hold, so rejecting a hostile frame must cost
//! no more memory than the frame itself. A counting global allocator
//! verifies the bound in bytes, not just in principle. (The lib crates
//! forbid `unsafe`; this integration-test crate hosts the allocator shim,
//! following `crates/core/tests/alloc_count.rs`.)

use bytes::{BufMut, BytesMut};
use rsse_cloud::Message;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a
// side effect that never touches the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

fn bytes_allocated_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = BYTES_ALLOCATED.load(Ordering::Relaxed);
    let result = f();
    (BYTES_ALLOCATED.load(Ordering::Relaxed) - before, result)
}

/// Hostile frames: tiny inputs whose length prefixes claim enormous
/// element counts, at several nesting depths of the protocol.
fn hostile_frames() -> Vec<(&'static str, Vec<u8>)> {
    let mut frames = Vec::new();

    // FetchFiles claiming 2^61 ids in a 9-byte frame.
    let mut b = BytesMut::new();
    b.put_u8(6);
    b.put_u64(1 << 61);
    frames.push(("fetch_files_huge_count", b.to_vec()));

    // Outsource claiming 2^20 posting lists with nothing behind them.
    let mut b = BytesMut::new();
    b.put_u8(1);
    b.put_u64(1 << 20);
    frames.push(("outsource_huge_list_count", b.to_vec()));

    // Outsource with one list whose entry count lies (inner prefix).
    let mut b = BytesMut::new();
    b.put_u8(1);
    b.put_u64(1); // one rsse list
    b.put_slice(&[0u8; 20]); // label
    b.put_u64(1 << 40); // claimed entries
    frames.push(("outsource_huge_entry_count", b.to_vec()));

    // ConjunctiveRequest claiming 2^30 trapdoors.
    let mut b = BytesMut::new();
    b.put_u8(8);
    b.put_u64(1 << 30);
    frames.push(("conjunctive_huge_trapdoor_count", b.to_vec()));

    // ConjunctiveResponse claiming 2^40 ranking entries in a 9-byte frame.
    let mut b = BytesMut::new();
    b.put_u8(9);
    b.put_u64(1 << 40); // claimed ranking entries
    frames.push(("conjunctive_response_huge_ranking", b.to_vec()));

    // ConjunctiveResponse whose single entry claims 2^40 mapped scores.
    let mut b = BytesMut::new();
    b.put_u8(9);
    b.put_u64(1); // one ranking entry
    b.put_u64(4); // file id
    b.put_u64(1 << 40); // claimed per-keyword score count
    frames.push(("conjunctive_response_huge_score_count", b.to_vec()));

    // ConjunctiveResponse whose files claim a 2^50-byte ciphertext.
    let mut b = BytesMut::new();
    b.put_u8(9);
    b.put_u64(0); // empty ranking
    b.put_u64(1); // one file
    b.put_u64(4); // file id
    b.put_u64(1 << 50); // claimed ciphertext length
    frames.push(("conjunctive_response_huge_ciphertext", b.to_vec()));

    // ConjunctiveShardQuery claiming 2^30 trapdoors.
    let mut b = BytesMut::new();
    b.put_u8(19);
    b.put_u64(1 << 30);
    frames.push(("conjunctive_shard_query_huge_trapdoor_count", b.to_vec()));

    // ConjunctiveShardReply claiming 2^40 ranking entries.
    let mut b = BytesMut::new();
    b.put_u8(20);
    b.put_u32(1); // shard id
    b.put_u64(1 << 40); // claimed ranking entries
    frames.push(("conjunctive_shard_reply_huge_ranking", b.to_vec()));

    // ConjunctiveShardReply whose single entry claims 2^40 mapped scores.
    let mut b = BytesMut::new();
    b.put_u8(20);
    b.put_u32(1); // shard id
    b.put_u64(1); // one ranking entry
    b.put_u64(4); // file id
    b.put_u64(1 << 40); // claimed per-keyword score count
    frames.push(("conjunctive_shard_reply_huge_score_count", b.to_vec()));

    // RsseResponse whose files section claims a 2^50-byte ciphertext.
    let mut b = BytesMut::new();
    b.put_u8(3);
    b.put_u64(0); // empty ranking
    b.put_u64(1); // one file
    b.put_u64(7); // file id
    b.put_u64(1 << 50); // claimed ciphertext length
    frames.push(("rsse_response_huge_ciphertext", b.to_vec()));

    // Error frame claiming a 2^40-byte detail string.
    let mut b = BytesMut::new();
    b.put_u8(12);
    b.put_u8(0); // ErrorKind::BadFrame
    b.put_u64(1 << 40);
    frames.push(("error_frame_huge_detail", b.to_vec()));

    // ShardReply claiming 2^40 ranking pairs in a 13-byte frame.
    let mut b = BytesMut::new();
    b.put_u8(14);
    b.put_u32(0); // shard id
    b.put_u64(1 << 40); // claimed ranking pairs
    frames.push(("shard_reply_huge_ranking", b.to_vec()));

    // ShardReply whose files section claims a 2^50-byte ciphertext.
    let mut b = BytesMut::new();
    b.put_u8(14);
    b.put_u32(3); // shard id
    b.put_u64(0); // empty ranking
    b.put_u64(1); // one file
    b.put_u64(9); // file id
    b.put_u64(1 << 50); // claimed ciphertext length
    frames.push(("shard_reply_huge_ciphertext", b.to_vec()));

    // BatchRequest claiming 2^40 queries in a 9-byte frame.
    let mut b = BytesMut::new();
    b.put_u8(15);
    b.put_u64(1 << 40); // claimed query count
    frames.push(("batch_request_huge_query_count", b.to_vec()));

    // BatchReply claiming 2^40 per-query results with nothing behind them.
    let mut b = BytesMut::new();
    b.put_u8(16);
    b.put_u8(0); // no shard id
    b.put_u64(1 << 40); // claimed result count
    frames.push(("batch_reply_huge_result_count", b.to_vec()));

    // BatchReply whose single result claims 2^40 ranking pairs.
    let mut b = BytesMut::new();
    b.put_u8(16);
    b.put_u8(0); // no shard id
    b.put_u64(1); // one result
    b.put_u64(1 << 40); // claimed ranking pairs
    frames.push(("batch_reply_huge_inner_ranking", b.to_vec()));

    // BatchReply whose single result's files claim a 2^50-byte ciphertext.
    let mut b = BytesMut::new();
    b.put_u8(16);
    b.put_u8(1); // shard id present
    b.put_u32(7);
    b.put_u64(1); // one result
    b.put_u64(0); // empty ranking
    b.put_u64(1); // one file
    b.put_u64(5); // file id
    b.put_u64(1 << 50); // claimed ciphertext length
    frames.push(("batch_reply_huge_ciphertext", b.to_vec()));

    // FilterReply claiming 2^40 labels (20 bytes each) in a 22-byte frame.
    let mut b = BytesMut::new();
    b.put_u8(18);
    b.put_u32(0); // shard id
    b.put_u64(9); // epoch
    b.put_u8(1); // labels present
    b.put_u64(1 << 40); // claimed label count
    frames.push(("filter_reply_huge_label_count", b.to_vec()));

    frames
}

// A single test function: the measurements must not interleave with other
// tests in this binary mutating the global counter.
#[test]
fn hostile_length_prefixes_fail_without_over_allocating() {
    // Decoding budget: the input is well under 100 bytes, so a decoder
    // whose pre-allocation is bounded by the *input* stays within a few
    // KiB of bookkeeping. A decoder that trusts the claimed counts would
    // try to reserve gigabytes and blow straight through this.
    const BUDGET_BYTES: u64 = 4096;
    for (name, frame) in hostile_frames() {
        let (allocated, outcome) =
            bytes_allocated_during(|| Message::decode(BytesMut::from(&frame[..])));
        assert!(
            outcome.is_err(),
            "{name}: hostile frame must be rejected, got {outcome:?}"
        );
        assert!(
            allocated <= BUDGET_BYTES,
            "{name}: rejecting a {}-byte frame allocated {allocated} bytes \
             (budget {BUDGET_BYTES})",
            frame.len()
        );
    }
}
