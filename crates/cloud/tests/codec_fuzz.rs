//! Fuzzing the wire codec with proptest: arbitrary bytes must never panic
//! the decoder, and anything the decoder *does* accept must be canonical —
//! re-encoding yields the input bytes exactly, and `wire_len` agrees with
//! the physical frame size. Canonicality is what makes these properties
//! strong: there is exactly one byte string per message, so a hostile
//! client cannot smuggle two readings of one frame past the byte-exact
//! traffic accounting.

use bytes::BytesMut;
use proptest::collection::vec;
use proptest::prelude::*;
use rsse_cloud::{
    frame_message, CodecError, ErrorKind, FrameAssembler, Message, FRAME_HEADER_LEN, MAX_FRAME_LEN,
};

/// Encoded frames of every protocol variant, used as mutation seeds.
fn seed_frames() -> Vec<Vec<u8>> {
    use rsse_cloud::{EncryptedFile, SearchMode};
    use rsse_ir::FileId;
    vec![
        Message::SearchRequest {
            label: [3u8; 20],
            list_key: [4u8; 32],
            top_k: Some(10),
            mode: SearchMode::Rsse,
        },
        Message::RsseResponse {
            ranking: vec![(1, 999), (2, 500)],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::FetchFiles { ids: vec![3, 1, 2] },
        Message::ConjunctiveRequest {
            trapdoors: vec![([7u8; 20], [8u8; 32])],
            top_k: None,
        },
        Message::ConjunctiveRequest {
            trapdoors: vec![([15u8; 20], [16u8; 32]), ([17u8; 20], [18u8; 32])],
            top_k: Some(8),
        },
        Message::ConjunctiveResponse {
            ranking: vec![(1, vec![900, 40]), (2, vec![500, 30])],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::ConjunctiveShardQuery {
            trapdoors: vec![([19u8; 20], [20u8; 32]), ([21u8; 20], [22u8; 32])],
            top_k: Some(10),
            shard_id: 2,
        },
        Message::ConjunctiveShardReply {
            shard_id: 2,
            ranking: vec![(1, vec![999, 70]), (2, vec![500, 60])],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::UpdateAck {
            lists_touched: 3,
            files_added: 1,
        },
        Message::error(ErrorKind::Overloaded, "request backlog is full"),
        Message::ShardQuery {
            label: [5u8; 20],
            list_key: [6u8; 32],
            top_k: Some(10),
            shard_id: 2,
        },
        Message::ShardReply {
            shard_id: 2,
            ranking: vec![(1, 999), (2, 500)],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::BatchRequest {
            queries: vec![
                ([9u8; 20], [10u8; 32], Some(5)),
                ([11u8; 20], [12u8; 32], None),
            ],
            shard_id: Some(1),
        },
        Message::BatchReply {
            shard_id: Some(1),
            results: vec![
                (
                    vec![(1, 999)],
                    vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
                ),
                (vec![], vec![]),
            ],
        },
        Message::FilterRequest {
            shard_id: 3,
            known_epoch: Some(41),
        },
        Message::FilterReply {
            shard_id: 3,
            epoch: 42,
            labels: Some(vec![[13u8; 20], [14u8; 20]]),
        },
    ]
    .into_iter()
    .map(|m| m.encode().to_vec())
    .collect()
}

/// Decode must be total over `bytes`: no panic, and on success the message
/// is canonical (re-encode reproduces the input, wire_len matches).
fn assert_decode_is_total_and_canonical(bytes: &[u8]) {
    if let Ok(msg) = Message::decode(BytesMut::from(bytes)) {
        let reencoded = msg.encode();
        assert_eq!(
            &reencoded[..],
            bytes,
            "accepted frames must be canonical: {msg:?}"
        );
        assert_eq!(msg.wire_len(), bytes.len(), "wire_len disagrees: {msg:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure garbage: arbitrary byte strings into the decoder.
    #[test]
    fn arbitrary_bytes_never_panic_decode(bytes in vec(any::<u8>(), 0..512)) {
        assert_decode_is_total_and_canonical(&bytes);
    }

    /// Structured garbage: take a real frame of each variant and corrupt
    /// one byte — exercises the deep decode paths that random bytes
    /// almost never reach past the tag.
    #[test]
    fn corrupted_real_frames_never_panic_decode(
        frame_choice in any::<u8>(),
        corrupt_at in any::<u16>(),
        corrupt_with in any::<u8>(),
    ) {
        let seeds = seed_frames();
        let mut frame = seeds[frame_choice as usize % seeds.len()].clone();
        let at = corrupt_at as usize % frame.len();
        frame[at] ^= corrupt_with;
        assert_decode_is_total_and_canonical(&frame);
    }

    /// Truncation fuzz: every prefix of a corrupted frame is also handled.
    #[test]
    fn truncated_corrupted_frames_never_panic_decode(
        frame_choice in any::<u8>(),
        corrupt_at in any::<u16>(),
        cut in any::<u16>(),
    ) {
        let seeds = seed_frames();
        let mut frame = seeds[frame_choice as usize % seeds.len()].clone();
        let at = corrupt_at as usize % frame.len();
        frame[at] = frame[at].wrapping_add(1);
        frame.truncate(cut as usize % (frame.len() + 1));
        assert_decode_is_total_and_canonical(&frame);
    }

    /// Streaming fuzz: a wire stream of corrupted frame *bodies* (valid
    /// envelopes, hostile payloads) fed to the assembler in arbitrary
    /// chunk sizes must reassemble to exactly the bodies that were
    /// framed, and the recovered bodies must survive the same
    /// total-decode property as direct decoding.
    #[test]
    fn streaming_reassembly_of_corrupted_bodies_never_panics(
        frame_choice in any::<u8>(),
        corrupt_at in any::<u16>(),
        corrupt_with in any::<u8>(),
        chunk in 1usize..97,
    ) {
        let seeds = seed_frames();
        let mut body = seeds[frame_choice as usize % seeds.len()].clone();
        let at = corrupt_at as usize % body.len();
        body[at] ^= corrupt_with;
        let stream = frame_message(7, &body);
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            asm.feed(piece);
            while let Some((seq, body)) = asm.next_frame().unwrap() {
                got.push((seq, body));
            }
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(got[0].0, 7);
        prop_assert_eq!(&got[0].1, &body);
        assert_decode_is_total_and_canonical(&got[0].1);
    }
}

/// Every fuzz seed, framed and replayed through the streaming assembler
/// split at **every** byte boundary: for each split point the stream is
/// delivered as two reads, and the reassembled `(seq, body)` must equal
/// what was framed regardless of where the socket cut the bytes. The
/// whole concatenated log is also fed one byte at a time, exercising
/// every intra-frame boundary of every seed in one pass.
#[test]
fn every_seed_reassembles_at_every_split_boundary() {
    let seeds = seed_frames();

    // Two-read splits of each individual frame.
    for (i, body) in seeds.iter().enumerate() {
        let frame = frame_message(i as u64, body);
        for cut in 0..=frame.len() {
            let mut asm = FrameAssembler::new();
            asm.feed(&frame[..cut]);
            if cut < frame.len() {
                // An incomplete frame yields nothing yet — the partial
                // read must never surface a short or garbled frame.
                if cut < FRAME_HEADER_LEN {
                    assert!(asm.next_frame().unwrap().is_none());
                }
                asm.feed(&frame[cut..]);
            }
            let (seq, got) = asm.next_frame().unwrap().expect("one whole frame fed");
            assert_eq!(seq, i as u64, "split at {cut}");
            assert_eq!(&got, body, "split at {cut}");
            assert!(asm.next_frame().unwrap().is_none());
            assert_eq!(asm.buffered(), 0);
        }
    }

    // The full pipelined log, one byte per read.
    let stream: Vec<u8> = seeds
        .iter()
        .enumerate()
        .flat_map(|(i, body)| frame_message(i as u64, body))
        .collect();
    let mut asm = FrameAssembler::new();
    let mut got = Vec::new();
    for byte in &stream {
        asm.feed(std::slice::from_ref(byte));
        while let Some(frame) = asm.next_frame().unwrap() {
            got.push(frame);
        }
    }
    assert_eq!(got.len(), seeds.len());
    for (i, (seq, body)) in got.iter().enumerate() {
        assert_eq!(*seq, i as u64);
        assert_eq!(body, &seeds[i]);
    }
}

/// Hostile declared lengths are rejected from the four length bytes
/// alone — before any payload is buffered — and the error is sticky.
#[test]
fn hostile_declared_lengths_are_rejected_before_buffering() {
    // Over the bounded-decode cap: u32::MAX and exactly one past the cap.
    for hostile in [u32::MAX, (MAX_FRAME_LEN as u32) + 8 + 1] {
        let mut asm = FrameAssembler::new();
        asm.feed(&hostile.to_be_bytes());
        let err = asm.next_frame().unwrap_err();
        assert!(
            matches!(err, CodecError::Oversize(n) if n == u64::from(hostile)),
            "declared {hostile}: got {err:?}"
        );
        // Rejected without the payload: only the 4 header bytes were
        // ever retained, and the assembler refuses to resynchronize.
        assert_eq!(asm.buffered(), 4);
        asm.feed(&[0u8; 64]);
        assert!(asm.next_frame().is_err(), "error must be sticky");
    }

    // Too short to carry the sequence id the envelope promises.
    for hostile in 0u32..8 {
        let mut asm = FrameAssembler::new();
        asm.feed(&hostile.to_be_bytes());
        let err = asm.next_frame().unwrap_err();
        assert!(
            matches!(err, CodecError::BadEnvelope(n) if n == hostile),
            "declared {hostile}: got {err:?}"
        );
    }

    // The largest in-cap length is *not* rejected early: the assembler
    // waits for the payload instead, so the cap is exact.
    let mut asm = FrameAssembler::new();
    asm.feed(&((MAX_FRAME_LEN as u32) + 8).to_be_bytes());
    assert!(asm.next_frame().unwrap().is_none());
}
