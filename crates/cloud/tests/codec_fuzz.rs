//! Fuzzing the wire codec with proptest: arbitrary bytes must never panic
//! the decoder, and anything the decoder *does* accept must be canonical —
//! re-encoding yields the input bytes exactly, and `wire_len` agrees with
//! the physical frame size. Canonicality is what makes these properties
//! strong: there is exactly one byte string per message, so a hostile
//! client cannot smuggle two readings of one frame past the byte-exact
//! traffic accounting.

use bytes::BytesMut;
use proptest::collection::vec;
use proptest::prelude::*;
use rsse_cloud::{ErrorKind, Message};

/// Encoded frames of every protocol variant, used as mutation seeds.
fn seed_frames() -> Vec<Vec<u8>> {
    use rsse_cloud::{EncryptedFile, SearchMode};
    use rsse_ir::FileId;
    vec![
        Message::SearchRequest {
            label: [3u8; 20],
            list_key: [4u8; 32],
            top_k: Some(10),
            mode: SearchMode::Rsse,
        },
        Message::RsseResponse {
            ranking: vec![(1, 999), (2, 500)],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::FetchFiles { ids: vec![3, 1, 2] },
        Message::ConjunctiveRequest {
            trapdoors: vec![([7u8; 20], [8u8; 32])],
            top_k: None,
        },
        Message::UpdateAck {
            lists_touched: 3,
            files_added: 1,
        },
        Message::error(ErrorKind::Overloaded, "request backlog is full"),
        Message::ShardQuery {
            label: [5u8; 20],
            list_key: [6u8; 32],
            top_k: Some(10),
            shard_id: 2,
        },
        Message::ShardReply {
            shard_id: 2,
            ranking: vec![(1, 999), (2, 500)],
            files: vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
        },
        Message::BatchRequest {
            queries: vec![
                ([9u8; 20], [10u8; 32], Some(5)),
                ([11u8; 20], [12u8; 32], None),
            ],
            shard_id: Some(1),
        },
        Message::BatchReply {
            shard_id: Some(1),
            results: vec![
                (
                    vec![(1, 999)],
                    vec![EncryptedFile::new(FileId::new(1), vec![1, 2])],
                ),
                (vec![], vec![]),
            ],
        },
        Message::FilterRequest {
            shard_id: 3,
            known_epoch: Some(41),
        },
        Message::FilterReply {
            shard_id: 3,
            epoch: 42,
            labels: Some(vec![[13u8; 20], [14u8; 20]]),
        },
    ]
    .into_iter()
    .map(|m| m.encode().to_vec())
    .collect()
}

/// Decode must be total over `bytes`: no panic, and on success the message
/// is canonical (re-encode reproduces the input, wire_len matches).
fn assert_decode_is_total_and_canonical(bytes: &[u8]) {
    if let Ok(msg) = Message::decode(BytesMut::from(bytes)) {
        let reencoded = msg.encode();
        assert_eq!(
            &reencoded[..],
            bytes,
            "accepted frames must be canonical: {msg:?}"
        );
        assert_eq!(msg.wire_len(), bytes.len(), "wire_len disagrees: {msg:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure garbage: arbitrary byte strings into the decoder.
    #[test]
    fn arbitrary_bytes_never_panic_decode(bytes in vec(any::<u8>(), 0..512)) {
        assert_decode_is_total_and_canonical(&bytes);
    }

    /// Structured garbage: take a real frame of each variant and corrupt
    /// one byte — exercises the deep decode paths that random bytes
    /// almost never reach past the tag.
    #[test]
    fn corrupted_real_frames_never_panic_decode(
        frame_choice in any::<u8>(),
        corrupt_at in any::<u16>(),
        corrupt_with in any::<u8>(),
    ) {
        let seeds = seed_frames();
        let mut frame = seeds[frame_choice as usize % seeds.len()].clone();
        let at = corrupt_at as usize % frame.len();
        frame[at] ^= corrupt_with;
        assert_decode_is_total_and_canonical(&frame);
    }

    /// Truncation fuzz: every prefix of a corrupted frame is also handled.
    #[test]
    fn truncated_corrupted_frames_never_panic_decode(
        frame_choice in any::<u8>(),
        corrupt_at in any::<u16>(),
        cut in any::<u16>(),
    ) {
        let seeds = seed_frames();
        let mut frame = seeds[frame_choice as usize % seeds.len()].clone();
        let at = corrupt_at as usize % frame.len();
        frame[at] = frame[at].wrapping_add(1);
        frame.truncate(cut as usize % (frame.len() + 1));
        assert_decode_is_total_and_canonical(&frame);
    }
}
