//! Property-based tests of the hypergeometric sampler.

use proptest::prelude::*;
use rsse_crypto::{SecretKey, Tape};
use rsse_hgd::Hypergeometric;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PMF sums to 1 over the support for arbitrary valid parameters.
    #[test]
    fn pmf_normalizes(
        population in 1u64..=100_000,
        successes_frac in 0.0f64..=1.0,
        draws_frac in 0.0f64..=1.0,
    ) {
        let successes = ((population as f64) * successes_frac) as u64;
        let draws = ((population as f64) * draws_frac) as u64;
        let h = Hypergeometric::new(population, successes, draws).unwrap();
        let (lo, hi) = h.support();
        prop_assume!(hi - lo <= 2000); // keep the sweep cheap
        let total: f64 = (lo..=hi).map(|k| h.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    /// CDF is monotone and hits 0/1 at the support edges.
    #[test]
    fn cdf_monotone(
        population in 2u64..=10_000,
        successes in 1u64..=64,
        draws in 1u64..=10_000,
    ) {
        let successes = successes.min(population);
        let draws = draws.min(population);
        let h = Hypergeometric::new(population, successes, draws).unwrap();
        let (lo, hi) = h.support();
        let mut prev = 0.0;
        for k in lo..=hi {
            let c = h.cdf(k);
            prop_assert!(c + 1e-12 >= prev, "cdf not monotone at {k}");
            prev = c;
        }
        prop_assert!((h.cdf(hi) - 1.0).abs() < 1e-12);
        if lo > 0 {
            prop_assert_eq!(h.cdf(lo - 1), 0.0);
        }
    }

    /// inverse_cdf(cdf boundary) is consistent: the sampled value's CDF
    /// brackets the input u.
    #[test]
    fn inverse_cdf_brackets_u(
        population_bits in 2u32..=46,
        successes in 1u64..=128,
        u in 0.0001f64..0.9999,
    ) {
        let population = 1u64 << population_bits;
        let successes = successes.min(population);
        let h = Hypergeometric::new(population, successes, population / 2).unwrap();
        let k = h.inverse_cdf(u);
        let (lo, _) = h.support();
        prop_assert!(h.cdf(k) >= u - 1e-9, "cdf({k}) < u");
        if k > lo {
            prop_assert!(h.cdf(k - 1) < u + 1e-9, "not the smallest k");
        }
    }

    /// Samples are deterministic per tape and stay within the support.
    #[test]
    fn samples_in_support(
        population in 2u64..=1_000_000,
        successes in 0u64..=200,
        seed in any::<u64>(),
    ) {
        let successes = successes.min(population);
        let h = Hypergeometric::new(population, successes, population / 2).unwrap();
        let key = SecretKey::derive(&seed.to_be_bytes(), "hgd");
        let mut tape = Tape::new(&key, b"prop");
        let (lo, hi) = h.support();
        for _ in 0..20 {
            let k = h.sample(&mut tape);
            prop_assert!((lo..=hi).contains(&k));
        }
    }
}
