//! Exact hypergeometric distribution and the `HYGEINV` inverse-CDF sampler.
//!
//! The OPSE binary search draws
//! `x <- HYGEINV(coin, M, N, n)`: sampling how many of the `M` domain points
//! (successes) land in a draw of `n` items from a population of `N` range
//! points. The paper uses MATLAB's `HYGEINV`; this module is the exact,
//! deterministic, pure-Rust equivalent.
//!
//! # Numerical strategy
//!
//! Populations reach `N = 2^46`, where `ln Γ` differences lose all precision
//! (`ln Γ(2^46) ≈ 1.5e15` leaves < 1 ulp for the fractional part). Instead we
//! exploit that the *support* of the distribution spans at most `M + 1`
//! points (`M` ≤ a few hundred for score domains): unnormalized weights are
//! built outward from the mode with the exact PMF ratio
//!
//! ```text
//! pmf(k+1)/pmf(k) = (M-k)(n-k) / ((k+1)(N-M-n+k+1))
//! ```
//!
//! then normalized and inverted. Every factor fits an `f64` with ≤ 2^-52
//! relative error, so the computation is stable and fully reproducible.

use crate::gamma::ln_binomial;
use rsse_crypto::Tape;

/// Largest population this module accepts (keeps every intermediate product
/// exactly representable in `f64` with negligible rounding).
pub const MAX_POPULATION: u64 = 1 << 52;

/// Errors from constructing a [`Hypergeometric`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HgdError {
    /// `successes > population` or `draws > population`.
    InconsistentCounts {
        /// Total population `N`.
        population: u64,
        /// Marked items `M`.
        successes: u64,
        /// Sample size `n`.
        draws: u64,
    },
    /// Population exceeds [`MAX_POPULATION`].
    PopulationTooLarge {
        /// Offending population.
        population: u64,
    },
}

impl core::fmt::Display for HgdError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HgdError::InconsistentCounts {
                population,
                successes,
                draws,
            } => write!(
                f,
                "inconsistent hypergeometric parameters: N={population}, M={successes}, n={draws}"
            ),
            HgdError::PopulationTooLarge { population } => {
                write!(f, "population {population} exceeds 2^52")
            }
        }
    }
}

impl std::error::Error for HgdError {}

/// The hypergeometric distribution `HGD(N, M, n)`.
///
/// `N` = population size, `M` = number of marked items ("successes"),
/// `n` = sample size. The random variate is the number of marked items in
/// the sample.
///
/// # Example
///
/// ```
/// use rsse_hgd::Hypergeometric;
///
/// let h = Hypergeometric::new(100, 10, 50)?;
/// assert_eq!(h.support(), (0, 10));
/// assert!((h.mean() - 5.0).abs() < 1e-12);
/// # Ok::<(), rsse_hgd::HgdError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    population: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Creates the distribution, validating parameters.
    ///
    /// # Errors
    ///
    /// * [`HgdError::InconsistentCounts`] if `successes > population` or
    ///   `draws > population`;
    /// * [`HgdError::PopulationTooLarge`] if `population > 2^52`.
    pub fn new(population: u64, successes: u64, draws: u64) -> Result<Self, HgdError> {
        if successes > population || draws > population {
            return Err(HgdError::InconsistentCounts {
                population,
                successes,
                draws,
            });
        }
        if population > MAX_POPULATION {
            return Err(HgdError::PopulationTooLarge { population });
        }
        Ok(Hypergeometric {
            population,
            successes,
            draws,
        })
    }

    /// Population size `N`.
    pub fn population(&self) -> u64 {
        self.population
    }

    /// Number of marked items `M`.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Sample size `n`.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Inclusive support `[lo, hi]` of the variate.
    pub fn support(&self) -> (u64, u64) {
        let lo = (self.draws + self.successes).saturating_sub(self.population);
        let hi = self.successes.min(self.draws);
        (lo, hi)
    }

    /// Mean `n·M/N`.
    pub fn mean(&self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.population as f64
    }

    /// Variance `n·(M/N)·(1-M/N)·(N-n)/(N-1)`.
    pub fn variance(&self) -> f64 {
        if self.population <= 1 {
            return 0.0;
        }
        let n = self.draws as f64;
        let big_n = self.population as f64;
        let p = self.successes as f64 / big_n;
        n * p * (1.0 - p) * (big_n - n) / (big_n - 1.0)
    }

    /// Mode `floor((n+1)(M+1)/(N+2))`, clamped to the support.
    pub fn mode(&self) -> u64 {
        let raw = ((self.draws as u128 + 1) * (self.successes as u128 + 1))
            / (self.population as u128 + 2);
        let (lo, hi) = self.support();
        (raw as u64).clamp(lo, hi)
    }

    /// Ratio `pmf(k+1)/pmf(k)` — exact in `f64` for our parameter sizes.
    fn ratio_up(&self, k: u64) -> f64 {
        let m = self.successes as f64;
        let n = self.draws as f64;
        let big_n = self.population as f64;
        let kf = k as f64;
        ((m - kf) * (n - kf)) / ((kf + 1.0) * (big_n - m - n + kf + 1.0))
    }

    /// Unnormalized weights over the support, anchored at the mode, plus the
    /// support lower bound. Weight at the mode is 1.
    fn weights(&self) -> (Vec<f64>, u64) {
        let (lo, hi) = self.support();
        let mode = self.mode();
        let len = (hi - lo + 1) as usize;
        let mut w = vec![0.0f64; len];
        let mode_idx = (mode - lo) as usize;
        w[mode_idx] = 1.0;
        // Walk up from the mode.
        let mut cur = 1.0f64;
        for k in mode..hi {
            cur *= self.ratio_up(k);
            w[(k + 1 - lo) as usize] = cur;
        }
        // Walk down from the mode.
        cur = 1.0;
        for k in (lo..mode).rev() {
            cur /= self.ratio_up(k);
            w[(k - lo) as usize] = cur;
        }
        (w, lo)
    }

    /// Probability mass at `k`, computed from the normalized ratio weights.
    ///
    /// # Example
    ///
    /// ```
    /// use rsse_hgd::Hypergeometric;
    /// let h = Hypergeometric::new(10, 4, 5)?;
    /// let total: f64 = (0..=4).map(|k| h.pmf(k)).sum();
    /// assert!((total - 1.0).abs() < 1e-12);
    /// # Ok::<(), rsse_hgd::HgdError>(())
    /// ```
    pub fn pmf(&self, k: u64) -> f64 {
        let (lo, hi) = self.support();
        if k < lo || k > hi {
            return 0.0;
        }
        let (w, base) = self.weights();
        let total: f64 = w.iter().sum();
        w[(k - base) as usize] / total
    }

    /// Probability mass at `k` via the closed-form log-binomial expression.
    ///
    /// Only accurate for moderate populations (≤ ~2^31); used in tests to
    /// cross-validate the ratio method.
    pub fn pmf_closed_form(&self, k: u64) -> f64 {
        let (lo, hi) = self.support();
        if k < lo || k > hi {
            return 0.0;
        }
        (ln_binomial(self.successes, k)
            + ln_binomial(self.population - self.successes, self.draws - k)
            - ln_binomial(self.population, self.draws))
        .exp()
    }

    /// Cumulative distribution `P[X <= k]`.
    pub fn cdf(&self, k: u64) -> f64 {
        let (lo, hi) = self.support();
        if k < lo {
            return 0.0;
        }
        if k >= hi {
            return 1.0;
        }
        let (w, base) = self.weights();
        let total: f64 = w.iter().sum();
        let partial: f64 = w[..=(k - base) as usize].iter().sum();
        partial / total
    }

    /// Inverse CDF: the smallest `k` in the support with `CDF(k) >= u`.
    ///
    /// This is the `HYGEINV` primitive: feeding a uniform `u in [0,1)`
    /// yields an exact hypergeometric variate.
    pub fn inverse_cdf(&self, u: f64) -> u64 {
        let (lo, hi) = self.support();
        if lo == hi {
            return lo;
        }
        let (w, base) = self.weights();
        let total: f64 = w.iter().sum();
        let target = u.clamp(0.0, 1.0) * total;
        let mut acc = 0.0f64;
        for (i, wi) in w.iter().enumerate() {
            acc += wi;
            if acc > target {
                return base + i as u64;
            }
        }
        hi // numerical tail: u was ~1.0
    }

    /// Draws one variate using coins from `tape`.
    pub fn sample(&self, tape: &mut Tape) -> u64 {
        self.inverse_cdf(tape.next_f64())
    }
}

/// Convenience: the paper's `HYGEINV(coin, M, N, n)` call — `M` domain
/// points among `N` range points, sample `n`, driven by the coin tape.
///
/// # Errors
///
/// Propagates [`HgdError`] on invalid parameters.
///
/// # Example
///
/// ```
/// use rsse_crypto::{SecretKey, Tape};
/// use rsse_hgd::hygeinv;
///
/// let key = SecretKey::derive(b"seed", "hgd");
/// let mut tape = Tape::new(&key, b"node-transcript");
/// let x = hygeinv(&mut tape, 128, 1 << 46, 1 << 45)?;
/// assert!(x <= 128);
/// # Ok::<(), rsse_hgd::HgdError>(())
/// ```
pub fn hygeinv(tape: &mut Tape, m: u64, n_population: u64, n_draws: u64) -> Result<u64, HgdError> {
    Ok(Hypergeometric::new(n_population, m, n_draws)?.sample(tape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_crypto::SecretKey;

    fn tape(label: &[u8]) -> Tape {
        Tape::new(&SecretKey::derive(b"hgd tests", "k"), label)
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            Hypergeometric::new(10, 11, 5),
            Err(HgdError::InconsistentCounts { .. })
        ));
        assert!(matches!(
            Hypergeometric::new(10, 5, 11),
            Err(HgdError::InconsistentCounts { .. })
        ));
        assert!(matches!(
            Hypergeometric::new((1 << 52) + 1, 5, 5),
            Err(HgdError::PopulationTooLarge { .. })
        ));
    }

    #[test]
    fn support_bounds() {
        let h = Hypergeometric::new(10, 7, 6).unwrap();
        // lo = n + M - N = 6 + 7 - 10 = 3, hi = min(7, 6) = 6.
        assert_eq!(h.support(), (3, 6));
    }

    #[test]
    fn pmf_sums_to_one_various_params() {
        for &(n, m, d) in &[
            (10u64, 4u64, 5u64),
            (100, 30, 50),
            (1000, 7, 999),
            (50, 50, 25),
        ] {
            let h = Hypergeometric::new(n, m, d).unwrap();
            let (lo, hi) = h.support();
            let total: f64 = (lo..=hi).map(|k| h.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "N={n} M={m} n={d}: {total}");
        }
    }

    #[test]
    fn ratio_method_matches_closed_form_moderate_population() {
        for &(n, m, d) in &[
            (1000u64, 12u64, 500u64),
            (100_000, 64, 50_000),
            (4096, 128, 2048),
        ] {
            let h = Hypergeometric::new(n, m, d).unwrap();
            let (lo, hi) = h.support();
            for k in lo..=hi {
                let a = h.pmf(k);
                let b = h.pmf_closed_form(k);
                assert!(
                    (a - b).abs() < 1e-9 * b.max(1e-300) + 1e-12,
                    "N={n} M={m} n={d} k={k}: ratio={a} closed={b}"
                );
            }
        }
    }

    #[test]
    fn known_small_distribution() {
        // Urn: N=10, M=4 white, draw n=3.
        // P[X=0] = C(4,0)C(6,3)/C(10,3) = 20/120 = 1/6.
        // P[X=1] = C(4,1)C(6,2)/C(10,3) = 60/120 = 1/2.
        let h = Hypergeometric::new(10, 4, 3).unwrap();
        assert!((h.pmf(0) - 1.0 / 6.0).abs() < 1e-12);
        assert!((h.pmf(1) - 0.5).abs() < 1e-12);
        assert!((h.pmf(2) - 0.3).abs() < 1e-12);
        assert!((h.pmf(3) - 1.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        // n = 0: always 0 marked drawn.
        let h = Hypergeometric::new(100, 30, 0).unwrap();
        assert_eq!(h.support(), (0, 0));
        assert_eq!(h.inverse_cdf(0.99), 0);
        // n = N: all marked drawn.
        let h = Hypergeometric::new(100, 30, 100).unwrap();
        assert_eq!(h.support(), (30, 30));
        assert_eq!(h.inverse_cdf(0.01), 30);
        // M = 0.
        let h = Hypergeometric::new(100, 0, 50).unwrap();
        assert_eq!(h.inverse_cdf(0.5), 0);
        // M = N: every draw is marked.
        let h = Hypergeometric::new(100, 100, 37).unwrap();
        assert_eq!(h.inverse_cdf(0.5), 37);
    }

    #[test]
    fn inverse_cdf_edges() {
        let h = Hypergeometric::new(100, 10, 50).unwrap();
        let (lo, hi) = h.support();
        assert_eq!(h.inverse_cdf(0.0), lo);
        assert_eq!(h.inverse_cdf(1.0), hi);
        assert_eq!(h.inverse_cdf(-1.0), lo);
        assert_eq!(h.inverse_cdf(2.0), hi);
    }

    #[test]
    fn inverse_cdf_is_monotone() {
        let h = Hypergeometric::new(1000, 40, 500).unwrap();
        let mut prev = 0;
        for i in 0..=100 {
            let u = i as f64 / 100.0;
            let k = h.inverse_cdf(u);
            assert!(k >= prev, "inverse CDF must be monotone in u");
            prev = k;
        }
    }

    #[test]
    fn sample_mean_near_expectation_huge_population() {
        // The OPSE regime: N = 2^46, n = N/2, M = 128.
        let n_pop = 1u64 << 46;
        let h = Hypergeometric::new(n_pop, 128, n_pop / 2).unwrap();
        let mut t = tape(b"huge");
        let trials = 3000;
        let sum: u64 = (0..trials).map(|_| h.sample(&mut t)).sum();
        let mean = sum as f64 / trials as f64;
        // E[X] = 64, sd ≈ 5.66, so the sample mean of 3000 trials is within
        // ~4·sd/sqrt(trials) ≈ 0.41 with overwhelming probability.
        assert!((mean - 64.0).abs() < 0.6, "mean {mean}");
    }

    #[test]
    fn sample_variance_sane() {
        let h = Hypergeometric::new(10_000, 100, 5_000).unwrap();
        let mut t = tape(b"var");
        let trials = 4000;
        let xs: Vec<f64> = (0..trials).map(|_| h.sample(&mut t) as f64).collect();
        let mean = xs.iter().sum::<f64>() / trials as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / trials as f64;
        let expected = h.variance();
        assert!(
            (var - expected).abs() / expected < 0.15,
            "sample var {var} vs {expected}"
        );
    }

    #[test]
    fn deterministic_given_same_tape() {
        let h = Hypergeometric::new(1 << 40, 200, 1 << 39).unwrap();
        let a: Vec<u64> = {
            let mut t = tape(b"det");
            (0..50).map(|_| h.sample(&mut t)).collect()
        };
        let b: Vec<u64> = {
            let mut t = tape(b"det");
            (0..50).map(|_| h.sample(&mut t)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn chi_square_goodness_of_fit_small() {
        // N=60, M=12, n=30: compare 6000 samples against exact pmf.
        let h = Hypergeometric::new(60, 12, 30).unwrap();
        let (lo, hi) = h.support();
        let mut counts = vec![0u64; (hi - lo + 1) as usize];
        let trials = 6000u64;
        let mut t = tape(b"chi2");
        for _ in 0..trials {
            counts[(h.sample(&mut t) - lo) as usize] += 1;
        }
        let mut chi2 = 0.0;
        let mut dof = 0usize;
        for (i, &c) in counts.iter().enumerate() {
            let e = h.pmf(lo + i as u64) * trials as f64;
            if e >= 5.0 {
                chi2 += (c as f64 - e).powi(2) / e;
                dof += 1;
            }
        }
        // 99.9% quantile of chi2 with ~12 dof is ~32.9; allow generous slack.
        assert!(chi2 < 40.0, "chi2 {chi2} over {dof} cells");
    }

    #[test]
    fn hygeinv_wrapper() {
        let mut t = tape(b"wrap");
        let x = hygeinv(&mut t, 16, 1 << 20, 1 << 19).unwrap();
        assert!(x <= 16);
        assert!(hygeinv(&mut t, 17, 16, 8).is_err());
    }

    #[test]
    fn error_display() {
        let e = Hypergeometric::new(10, 11, 5).unwrap_err();
        assert!(e.to_string().contains("inconsistent"));
    }
}
