//! Special functions: `ln Γ`, log-factorials and log-binomials.
//!
//! Used for closed-form cross-checks of the hypergeometric PMF and for the
//! range-size selection analysis (paper eq. 3/4). The sampler itself avoids
//! large-argument `ln Γ` (see [`crate::hypergeom`]) for numerical stability.

/// Lanczos coefficients (g = 7, n = 9), double precision.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~1e-13 relative error over the tested domain; implemented with
/// the Lanczos approximation plus the reflection formula for `x < 0.5`.
///
/// # Example
///
/// ```
/// use rsse_hgd::gamma::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `x` is not finite or `x <= 0` at a pole (non-positive integer).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite(), "ln_gamma requires finite input");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let sin_pi_x = (core::f64::consts::PI * x).sin();
        assert!(sin_pi_x != 0.0, "ln_gamma pole at non-positive integer {x}");
        return core::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * core::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for integer `n`.
///
/// Exact (table) for `n <= 20`, `ln Γ(n+1)` beyond.
pub fn ln_factorial(n: u64) -> f64 {
    // 0! .. 20! fit in u64 exactly.
    const FACT: [u64; 21] = [
        1,
        1,
        2,
        6,
        24,
        120,
        720,
        5_040,
        40_320,
        362_880,
        3_628_800,
        39_916_800,
        479_001_600,
        6_227_020_800,
        87_178_291_200,
        1_307_674_368_000,
        20_922_789_888_000,
        355_687_428_096_000,
        6_402_373_705_728_000,
        121_645_100_408_832_000,
        2_432_902_008_176_640_000,
    ];
    if n <= 20 {
        (FACT[n as usize] as f64).ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// Returns `f64::NEG_INFINITY` when `k > n` (the coefficient is zero).
///
/// # Example
///
/// ```
/// use rsse_hgd::gamma::ln_binomial;
/// // C(10, 3) = 120
/// assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-10);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    // Use the smaller side for better accuracy with moderate k.
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    // For small k, a direct product sum is more accurate than lgamma
    // differences when n is astronomically large.
    if k <= 64 {
        let n = n as f64;
        let mut acc = 0.0;
        for i in 0..k {
            acc += (n - i as f64).ln() - (i as f64 + 1.0).ln();
        }
        return acc;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_integer_values() {
        // Γ(n) = (n-1)!
        let expected = [0.0f64, 0.0, 2.0f64.ln(), 6.0f64.ln(), 24.0f64.ln()];
        for (i, &e) in expected.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!(
                (ln_gamma(x) - e).abs() < 1e-12,
                "ln_gamma({x}) = {} want {e}",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn gamma_half() {
        // Γ(1/2) = sqrt(π)
        let want = core::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-12);
    }

    #[test]
    fn gamma_large_argument_matches_stirling() {
        // Stirling with first correction term, relative comparison.
        let x: f64 = 1e6;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * core::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        let rel = (ln_gamma(x) - stirling).abs() / stirling.abs();
        assert!(rel < 1e-12, "rel err {rel}");
    }

    #[test]
    fn gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.7f64, 1.3, 2.5, 10.2, 123.4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn factorial_exact_small() {
        assert_eq!(ln_factorial(0), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-14);
        assert!((ln_factorial(20) - 2_432_902_008_176_640_000f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn factorial_continuity_at_table_boundary() {
        // ln(21!) = ln(21) + ln(20!)
        let direct = ln_factorial(21);
        let via_recurrence = 21f64.ln() + ln_factorial(20);
        assert!((direct - via_recurrence).abs() < 1e-9);
    }

    #[test]
    fn binomial_symmetry_and_pascals_rule() {
        assert!((ln_binomial(30, 7) - ln_binomial(30, 23)).abs() < 1e-10);
        // C(n,k) = C(n-1,k-1)+C(n-1,k), checked multiplicatively.
        let a = ln_binomial(40, 11).exp();
        let b = ln_binomial(39, 10).exp() + ln_binomial(39, 11).exp();
        assert!((a - b).abs() / b < 1e-10);
    }

    #[test]
    fn binomial_out_of_range_is_zero() {
        assert_eq!(ln_binomial(5, 6), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_huge_population_small_k() {
        // C(2^46, 2) = N(N-1)/2 — direct-product path must stay accurate.
        let n = 1u64 << 46;
        let want = ((n as f64).ln() + ((n - 1) as f64).ln()) - 2f64.ln();
        assert!((ln_binomial(n, 2) - want).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "pole")]
    fn gamma_pole_panics() {
        ln_gamma(0.0);
    }
}
