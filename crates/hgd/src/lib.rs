//! Exact hypergeometric sampling for order-preserving encryption.
//!
//! The OPSE construction of Boldyreva et al. (Eurocrypt'09), which the RSSE
//! paper builds on, walks a lazily-sampled binary search tree whose splits
//! are hypergeometric variates. The authors called MATLAB's `HYGEINV`; this
//! crate is the deterministic pure-Rust replacement:
//!
//! * [`gamma`] — `ln Γ` (Lanczos), log-factorials, log-binomials;
//! * [`hypergeom`] — the [`Hypergeometric`] distribution with an exact
//!   inverse-CDF sampler ([`hygeinv`]) stable up to populations of `2^52`.
//!
//! # Example
//!
//! ```
//! use rsse_crypto::{SecretKey, Tape};
//! use rsse_hgd::Hypergeometric;
//!
//! # fn main() -> Result<(), rsse_hgd::HgdError> {
//! // How many of 128 marked items land in half of a 2^46 population?
//! let h = Hypergeometric::new(1 << 46, 128, 1 << 45)?;
//! let mut tape = Tape::new(&SecretKey::derive(b"seed", "hgd"), b"node");
//! let x = h.sample(&mut tape);
//! assert!(x <= 128);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gamma;
pub mod hypergeom;

pub use hypergeom::{hygeinv, HgdError, Hypergeometric, MAX_POPULATION};
