//! Equal-width histograms over `u64` or `f64` samples.
//!
//! The paper presents its security story as histograms: the skewed raw-score
//! distribution of Fig. 4 versus the flattened mapped distributions of
//! Fig. 6 ("the distribution ... is obtained with putting encrypted values
//! into 128 equally spaced containers").

use serde::{Deserialize, Serialize};

/// An equal-width histogram with `bins` containers spanning `[lo, hi]`.
///
/// # Example
///
/// ```
/// use rsse_analysis::Histogram;
///
/// let h = Histogram::of_u64(&[1, 2, 2, 3, 100], 10, 1, 100);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.counts().len(), 10);
/// assert_eq!(h.counts()[0], 4); // 1, 2, 2, 3 land in the first bin
/// assert_eq!(h.counts()[9], 1); // 100 lands in the last bin
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    lo: f64,
    hi: f64,
}

impl Histogram {
    /// Builds a histogram of integer samples over the inclusive range
    /// `[lo, hi]`. Samples outside the range clamp into the edge bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo > hi`.
    pub fn of_u64(samples: &[u64], bins: usize, lo: u64, hi: u64) -> Self {
        Self::of_f64(
            &samples.iter().map(|&s| s as f64).collect::<Vec<_>>(),
            bins,
            lo as f64,
            hi as f64,
        )
    }

    /// Builds a histogram of float samples over `[lo, hi]`. Samples outside
    /// the range clamp into the edge bins; non-finite samples are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo > hi`.
    pub fn of_f64(samples: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo <= hi, "invalid histogram range");
        let mut counts = vec![0u64; bins];
        let width = if hi > lo { hi - lo } else { 1.0 };
        for &s in samples {
            if !s.is_finite() {
                continue;
            }
            let t = ((s - lo) / width * bins as f64).floor();
            let bin = (t as i64).clamp(0, bins as i64 - 1) as usize;
            counts[bin] += 1;
        }
        Histogram { counts, lo, hi }
    }

    /// Builds a histogram spanning the sample min/max.
    ///
    /// Returns `None` if `samples` is empty.
    pub fn spanning(samples: &[u64], bins: usize) -> Option<Self> {
        let lo = *samples.iter().min()?;
        let hi = *samples.iter().max()?;
        Some(Self::of_u64(samples, bins, lo, hi))
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized probabilities per bin (empty histogram → all zeros).
    pub fn probabilities(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// The largest bin count.
    pub fn peak(&self) -> u64 {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Peak-to-uniform ratio: how many times the fullest bin exceeds the
    /// uniform share. 1.0 means perfectly flat; large values mean skew.
    pub fn peak_to_uniform(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.peak() as f64 * self.counts.len() as f64 / total as f64
    }

    /// Number of non-empty bins.
    pub fn occupied_bins(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// The histogram's range `[lo, hi]`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_assignment_basics() {
        // Bins are half-open: [0,5) and [5,10]; 5 lands in the second bin.
        let h = Histogram::of_u64(&[0, 5, 10], 2, 0, 10);
        assert_eq!(h.counts(), &[1, 2]);
    }

    #[test]
    fn out_of_range_clamps() {
        let h = Histogram::of_f64(&[-5.0, 50.0], 4, 0.0, 10.0);
        assert_eq!(h.counts(), &[1, 0, 0, 1]);
    }

    #[test]
    fn non_finite_ignored() {
        let h = Histogram::of_f64(&[f64::NAN, f64::INFINITY, 1.0], 2, 0.0, 2.0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let h = Histogram::of_u64(&[1, 2, 3, 4, 5, 6, 7], 3, 1, 7);
        let p: f64 = h.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::of_u64(&[], 4, 0, 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.peak(), 0);
        assert_eq!(h.peak_to_uniform(), 0.0);
        assert!(h.probabilities().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn peak_to_uniform_flat_vs_spiked() {
        let flat = Histogram::of_u64(&[1, 2, 3, 4], 4, 1, 4);
        assert!((flat.peak_to_uniform() - 1.0).abs() < 1e-12);
        let spiked = Histogram::of_u64(&[1, 1, 1, 1], 4, 1, 4);
        assert!((spiked.peak_to_uniform() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn spanning_uses_min_max() {
        let h = Histogram::spanning(&[10, 20, 30], 2).unwrap();
        assert_eq!(h.range(), (10.0, 30.0));
        assert!(Histogram::spanning(&[], 2).is_none());
    }

    #[test]
    fn occupied_bins_counted() {
        let h = Histogram::of_u64(&[1, 1, 1, 9], 9, 1, 9);
        assert_eq!(h.occupied_bins(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::of_u64(&[1], 0, 0, 1);
    }

    #[test]
    fn single_value_range() {
        // lo == hi must not divide by zero.
        let h = Histogram::of_u64(&[5, 5, 5], 3, 5, 5);
        assert_eq!(h.total(), 3);
    }
}
