//! Scalar sample statistics and duplicate accounting.

use std::collections::HashMap;
use std::hash::Hash;

/// Sample mean. Returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance. Returns `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Sample skewness `E[(X−μ)³]/σ³`. Returns `None` for fewer than 3 samples
/// or zero variance.
///
/// # Example
///
/// ```
/// use rsse_analysis::skewness;
/// // A long right tail produces positive skew.
/// let right_tailed = [1.0, 1.0, 1.0, 1.0, 10.0];
/// assert!(skewness(&right_tailed).unwrap() > 1.0);
/// ```
pub fn skewness(xs: &[f64]) -> Option<f64> {
    if xs.len() < 3 {
        return None;
    }
    let m = mean(xs)?;
    let var = variance(xs)?;
    if var == 0.0 {
        return None;
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
    Some(m3 / var.powf(1.5))
}

/// Duplicate statistics of a value multiset — the `max` (largest number of
/// duplicates of any single value) and `λ`-related counts the range-size
/// selection needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateStats {
    /// Total number of values.
    pub total: usize,
    /// Number of distinct values.
    pub distinct: usize,
    /// Largest multiplicity of any value (the paper's `max`).
    pub max_duplicates: usize,
}

impl DuplicateStats {
    /// Fraction of values that collide with at least one other value.
    pub fn collision_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.total - self.distinct) as f64 / self.total as f64
    }
}

/// Computes [`DuplicateStats`] over any hashable values.
///
/// # Example
///
/// ```
/// use rsse_analysis::duplicate_stats;
///
/// let stats = duplicate_stats(&[1u64, 1, 1, 2, 3]);
/// assert_eq!(stats.total, 5);
/// assert_eq!(stats.distinct, 3);
/// assert_eq!(stats.max_duplicates, 3);
/// ```
pub fn duplicate_stats<T: Hash + Eq>(values: &[T]) -> DuplicateStats {
    let mut counts: HashMap<&T, usize> = HashMap::new();
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
    }
    DuplicateStats {
        total: values.len(),
        distinct: counts.len(),
        max_duplicates: counts.values().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs).unwrap(), 2.5);
        assert_eq!(variance(&xs).unwrap(), 1.25);
        assert!(mean(&[]).is_none());
        assert!(variance(&[]).is_none());
    }

    #[test]
    fn skewness_sign() {
        let sym = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&sym).unwrap().abs() < 1e-12);
        let right = [1.0, 1.0, 1.0, 2.0, 20.0];
        assert!(skewness(&right).unwrap() > 0.0);
        let left = [20.0, 20.0, 20.0, 19.0, 1.0];
        assert!(skewness(&left).unwrap() < 0.0);
    }

    #[test]
    fn skewness_degenerate() {
        assert!(skewness(&[1.0, 2.0]).is_none());
        assert!(skewness(&[3.0, 3.0, 3.0]).is_none());
    }

    #[test]
    fn duplicate_stats_all_unique() {
        let s = duplicate_stats(&[1u64, 2, 3]);
        assert_eq!(s.max_duplicates, 1);
        assert_eq!(s.collision_fraction(), 0.0);
    }

    #[test]
    fn duplicate_stats_empty() {
        let s = duplicate_stats::<u64>(&[]);
        assert_eq!(s.total, 0);
        assert_eq!(s.max_duplicates, 0);
        assert_eq!(s.collision_fraction(), 0.0);
    }

    #[test]
    fn collision_fraction_partial() {
        let s = duplicate_stats(&["a", "a", "b", "c"]);
        assert_eq!(s.distinct, 3);
        assert!((s.collision_fraction() - 0.25).abs() < 1e-12);
    }
}
