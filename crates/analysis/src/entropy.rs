//! Entropy measures over empirical distributions.
//!
//! The paper's range-size criterion is stated in terms of **min-entropy**:
//! `H∞(X) = −log2 max_a Pr[X = a]`. High min-entropy of the mapped score
//! distribution is what defeats histogram fingerprinting.

/// Min-entropy `H∞ = −log2(max_count / total)` of an empirical distribution
/// given per-outcome counts.
///
/// Returns `None` for an empty distribution.
///
/// # Example
///
/// ```
/// use rsse_analysis::min_entropy;
///
/// // Uniform over 8 outcomes: H∞ = 3 bits.
/// let h = min_entropy(&[1, 1, 1, 1, 1, 1, 1, 1]).unwrap();
/// assert!((h - 3.0).abs() < 1e-12);
/// // A point mass has zero min-entropy.
/// assert_eq!(min_entropy(&[5, 0, 0]).unwrap(), 0.0);
/// ```
pub fn min_entropy(counts: &[u64]) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let max = counts.iter().copied().max()?;
    if max == 0 {
        return None;
    }
    Some(-((max as f64 / total as f64).log2()))
}

/// Shannon entropy `H = −Σ p log2 p` in bits.
///
/// Returns `None` for an empty distribution.
///
/// # Example
///
/// ```
/// use rsse_analysis::shannon_entropy;
/// let h = shannon_entropy(&[1, 1, 1, 1]).unwrap();
/// assert!((h - 2.0).abs() < 1e-12);
/// ```
pub fn shannon_entropy(counts: &[u64]) -> Option<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let mut h = 0.0;
    for &c in counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    Some(h)
}

/// Checks the paper's "high min-entropy" requirement
/// `H∞(X) ∈ ω(log k)`, instantiated as `H∞ ≥ (log2 k)^c`, where `k` is the
/// bit-length of the outcome space.
///
/// # Example
///
/// ```
/// use rsse_analysis::has_high_min_entropy;
/// // A perfectly uniform 16-outcome distribution over a 4-bit space:
/// // H∞ = 4 ≥ (log2 4)^1.1 = 2^1.1 ≈ 2.14.
/// assert!(has_high_min_entropy(&[1; 16], 4, 1.1));
/// ```
pub fn has_high_min_entropy(counts: &[u64], space_bits: u32, c: f64) -> bool {
    match min_entropy(counts) {
        Some(h) => h >= (space_bits as f64).log2().powf(c),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_entropy_uniform() {
        assert!((min_entropy(&[10; 16]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn min_entropy_skewed_below_uniform() {
        let skewed = min_entropy(&[100, 1, 1, 1]).unwrap();
        let uniform = min_entropy(&[26, 26, 26, 25]).unwrap();
        assert!(skewed < uniform);
    }

    #[test]
    fn empty_distributions() {
        assert!(min_entropy(&[]).is_none());
        assert!(min_entropy(&[0, 0]).is_none());
        assert!(shannon_entropy(&[]).is_none());
    }

    #[test]
    fn shannon_bounds_min_entropy() {
        // H∞ ≤ H always.
        for counts in [&[5u64, 3, 2, 1][..], &[10, 10], &[7, 1, 1, 1, 1]] {
            let h_inf = min_entropy(counts).unwrap();
            let h = shannon_entropy(counts).unwrap();
            assert!(h_inf <= h + 1e-12, "{counts:?}: {h_inf} > {h}");
        }
    }

    #[test]
    fn shannon_point_mass_is_zero() {
        assert_eq!(shannon_entropy(&[42]).unwrap(), 0.0);
    }

    #[test]
    fn high_min_entropy_check() {
        // Point mass never passes.
        assert!(!has_high_min_entropy(&[100, 0, 0, 0], 10, 1.1));
        // Near-uniform over a big space passes.
        assert!(has_high_min_entropy(&[1; 4096], 12, 1.1));
        // Empty never passes.
        assert!(!has_high_min_entropy(&[], 10, 1.1));
    }
}
