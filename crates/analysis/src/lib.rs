//! Statistical analysis toolkit for the RSSE security experiments.
//!
//! The paper's security argument is statistical: the deterministic OPSE
//! leaks the keyword-specific score histogram (Fig. 4), while the
//! one-to-many mapping flattens it and randomizes it per key (Fig. 6). This
//! crate supplies the measurement instruments:
//!
//! * [`Histogram`] — equal-width binning ("128 equally spaced containers");
//! * [`min_entropy`] / [`shannon_entropy`] — the §IV-C min-entropy criterion;
//! * [`total_variation`] / [`ks_statistic`] / [`chi_square`] — distances
//!   between raw and mapped distributions;
//! * [`duplicate_stats`] / [`skewness`] — the `max`/`λ` inputs of eq. (3)
//!   and the shape diagnostics.
//!
//! # Example
//!
//! ```
//! use rsse_analysis::{min_entropy, Histogram};
//!
//! let skewed = Histogram::of_u64(&[50, 50, 50, 50, 51, 52], 4, 50, 53);
//! let flat = Histogram::of_u64(&[50, 51, 52, 53, 50, 51], 4, 50, 53);
//! assert!(min_entropy(flat.counts()) > min_entropy(skewed.counts()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod entropy;
pub mod histogram;
pub mod stats;

pub use distance::{chi_square, ks_statistic, total_variation};
pub use entropy::{has_high_min_entropy, min_entropy, shannon_entropy};
pub use histogram::Histogram;
pub use stats::{duplicate_stats, mean, skewness, variance, DuplicateStats};
