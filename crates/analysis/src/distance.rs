//! Distances between empirical distributions.
//!
//! Used to quantify Fig. 6's claim: the *same* score set mapped under two
//! different keys produces two *differently randomized* value distributions
//! (large distance between the two encrypted histograms), while the raw
//! distribution is key-independent (distance zero).

/// Total-variation distance `½ Σ |p_i − q_i|` between two empirical
/// distributions given as counts. The count vectors must have equal length.
///
/// Returns `None` if lengths differ or either distribution is empty.
///
/// # Example
///
/// ```
/// use rsse_analysis::total_variation;
///
/// let d = total_variation(&[10, 0], &[0, 10]).unwrap();
/// assert!((d - 1.0).abs() < 1e-12); // disjoint supports
/// assert_eq!(total_variation(&[5, 5], &[5, 5]).unwrap(), 0.0);
/// ```
pub fn total_variation(a: &[u64], b: &[u64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    if ta == 0 || tb == 0 {
        return None;
    }
    let mut d = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        d += (x as f64 / ta as f64 - y as f64 / tb as f64).abs();
    }
    Some(d / 2.0)
}

/// Two-sample Kolmogorov–Smirnov statistic `max_k |F_a(k) − F_b(k)|` over
/// binned counts.
///
/// Returns `None` on length mismatch or empty input.
pub fn ks_statistic(a: &[u64], b: &[u64]) -> Option<f64> {
    if a.len() != b.len() {
        return None;
    }
    let ta: u64 = a.iter().sum();
    let tb: u64 = b.iter().sum();
    if ta == 0 || tb == 0 {
        return None;
    }
    let mut ca = 0.0;
    let mut cb = 0.0;
    let mut d: f64 = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        ca += x as f64 / ta as f64;
        cb += y as f64 / tb as f64;
        d = d.max((ca - cb).abs());
    }
    Some(d)
}

/// Pearson chi-square statistic of `observed` against `expected`
/// probabilities. Cells with `expected` probability 0 are skipped.
///
/// Returns `None` on length mismatch or empty observation.
pub fn chi_square(observed: &[u64], expected_probs: &[f64]) -> Option<f64> {
    if observed.len() != expected_probs.len() {
        return None;
    }
    let total: u64 = observed.iter().sum();
    if total == 0 {
        return None;
    }
    let mut chi2 = 0.0;
    for (&o, &p) in observed.iter().zip(expected_probs) {
        if p > 0.0 {
            let e = p * total as f64;
            chi2 += (o as f64 - e).powi(2) / e;
        }
    }
    Some(chi2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_identical_is_zero() {
        assert_eq!(total_variation(&[3, 4, 5], &[3, 4, 5]).unwrap(), 0.0);
        // Scaled versions of the same distribution are also distance 0.
        assert!(total_variation(&[3, 4, 5], &[6, 8, 10]).unwrap() < 1e-12);
    }

    #[test]
    fn tv_bounds() {
        let d = total_variation(&[7, 3], &[2, 8]).unwrap();
        assert!((0.0..=1.0).contains(&d));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_rejects_mismatch_and_empty() {
        assert!(total_variation(&[1], &[1, 2]).is_none());
        assert!(total_variation(&[0, 0], &[1, 1]).is_none());
    }

    #[test]
    fn ks_simple() {
        // All mass at the left vs all at the right: max CDF gap = 1 at bin 0.
        assert_eq!(ks_statistic(&[10, 0], &[0, 10]).unwrap(), 1.0);
        assert_eq!(ks_statistic(&[5, 5], &[5, 5]).unwrap(), 0.0);
    }

    #[test]
    fn ks_le_one() {
        let d = ks_statistic(&[1, 2, 3, 4], &[4, 3, 2, 1]).unwrap();
        assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn chi_square_perfect_fit_small() {
        let chi2 = chi_square(&[25, 25, 25, 25], &[0.25; 4]).unwrap();
        assert_eq!(chi2, 0.0);
    }

    #[test]
    fn chi_square_detects_deviation() {
        let good = chi_square(&[26, 24, 25, 25], &[0.25; 4]).unwrap();
        let bad = chi_square(&[70, 10, 10, 10], &[0.25; 4]).unwrap();
        assert!(bad > good * 10.0);
    }

    #[test]
    fn chi_square_skips_zero_expected() {
        let chi2 = chi_square(&[10, 0], &[1.0, 0.0]).unwrap();
        assert_eq!(chi2, 0.0);
    }
}
