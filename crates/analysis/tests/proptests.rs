//! Property-based tests of the statistical toolkit.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse_analysis::{
    duplicate_stats, ks_statistic, mean, min_entropy, shannon_entropy, skewness, total_variation,
    variance, Histogram,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Entropy bounds: 0 ≤ H∞ ≤ H ≤ log2(#outcomes).
    #[test]
    fn entropy_bounds(counts in vec(0u64..1000, 1..64)) {
        prop_assume!(counts.iter().sum::<u64>() > 0);
        let h_inf = min_entropy(&counts).unwrap();
        let h = shannon_entropy(&counts).unwrap();
        let occupied = counts.iter().filter(|&&c| c > 0).count() as f64;
        prop_assert!(h_inf >= 0.0);
        prop_assert!(h_inf <= h + 1e-9);
        prop_assert!(h <= occupied.log2() + 1e-9);
    }

    /// Total variation is a metric on the probability simplex: symmetric,
    /// zero iff proportional, bounded by 1, triangle inequality.
    #[test]
    fn tv_metric_properties(
        a in vec(0u64..100, 4..16),
        b in vec(0u64..100, 4..16),
        c in vec(0u64..100, 4..16),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let (a, b, c) = (&a[..n], &b[..n], &c[..n]);
        prop_assume!(a.iter().sum::<u64>() > 0);
        prop_assume!(b.iter().sum::<u64>() > 0);
        prop_assume!(c.iter().sum::<u64>() > 0);
        let dab = total_variation(a, b).unwrap();
        let dba = total_variation(b, a).unwrap();
        let dac = total_variation(a, c).unwrap();
        let dcb = total_variation(c, b).unwrap();
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab));
        prop_assert!(dab <= dac + dcb + 1e-9, "triangle violated");
        prop_assert!(total_variation(a, a).unwrap() < 1e-12);
    }

    /// KS ≤ TV·2 ... actually KS ≤ 2·TV always and both are 0 on identical
    /// inputs; check consistency bounds.
    #[test]
    fn ks_vs_tv(a in vec(0u64..100, 4..16), b in vec(0u64..100, 4..16)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        prop_assume!(a.iter().sum::<u64>() > 0 && b.iter().sum::<u64>() > 0);
        let ks = ks_statistic(a, b).unwrap();
        let tv = total_variation(a, b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ks));
        // The max CDF gap cannot exceed the L1 mass difference.
        prop_assert!(ks <= 2.0 * tv + 1e-9);
    }

    /// Histogram mass conservation and peak consistency for float input.
    #[test]
    fn histogram_peak_consistency(
        samples in vec(-1e3f64..1e3, 1..200),
        bins in 1usize..64,
    ) {
        let h = Histogram::of_f64(&samples, bins, -1e3, 1e3);
        prop_assert_eq!(h.total(), samples.len() as u64);
        prop_assert!(h.peak() as usize <= samples.len());
        prop_assert_eq!(
            h.peak(),
            h.counts().iter().copied().max().unwrap()
        );
        let p: f64 = h.probabilities().iter().sum();
        prop_assert!((p - 1.0).abs() < 1e-9);
    }

    /// Duplicate stats: totals add up; max multiplicity is consistent.
    #[test]
    fn duplicate_stats_consistency(values in vec(0u64..32, 0..200)) {
        let s = duplicate_stats(&values);
        prop_assert_eq!(s.total, values.len());
        prop_assert!(s.distinct <= s.total.max(1));
        if !values.is_empty() {
            prop_assert!(s.max_duplicates >= 1);
            prop_assert!(s.max_duplicates <= s.total);
            prop_assert!((0.0..=1.0).contains(&s.collision_fraction()));
        }
    }

    /// Mean/variance/skewness basic sanity on arbitrary samples.
    #[test]
    fn moments_sanity(xs in vec(-1e6f64..1e6, 3..100)) {
        let m = mean(&xs).unwrap();
        let v = variance(&xs).unwrap();
        prop_assert!(v >= 0.0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        if let Some(sk) = skewness(&xs) {
            prop_assert!(sk.is_finite());
        }
    }
}
