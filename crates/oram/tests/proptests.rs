//! Property-based tests of Path ORAM against a plain map oracle.

use proptest::collection::vec;
use proptest::prelude::*;
use rsse_oram::PathOram;
use std::collections::HashMap;

/// A logical operation in a random workload.
#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, Vec<u8>),
}

fn op_strategy(capacity: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..capacity).prop_map(Op::Read),
        (0..capacity, vec(any::<u8>(), 0..64)).prop_map(|(a, d)| Op::Write(a, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ORAM semantics equal a plain HashMap under arbitrary workloads.
    #[test]
    fn oram_matches_map_oracle(
        seed in any::<u64>(),
        ops in vec(op_strategy(48), 1..120),
    ) {
        let mut oram = PathOram::new(48, &seed.to_be_bytes());
        let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Read(a) => {
                    prop_assert_eq!(oram.read(a), oracle.get(&a).cloned(), "addr {}", a);
                }
                Op::Write(a, d) => {
                    oram.write(a, &d);
                    oracle.insert(a, d);
                }
            }
        }
    }

    /// Per-access bucket traffic is constant regardless of the workload.
    #[test]
    fn traffic_is_workload_independent(
        seed in any::<u64>(),
        ops in vec(op_strategy(32), 1..60),
    ) {
        let mut oram = PathOram::new(32, &seed.to_be_bytes());
        let per_access = 2 * (oram.height() as u64 + 1);
        let mut prev = oram.stats();
        for op in ops {
            match op {
                Op::Read(a) => { let _ = oram.read(a); }
                Op::Write(a, d) => oram.write(a, &d),
            }
            let now = oram.stats();
            prop_assert_eq!(now.buckets_touched - prev.buckets_touched, per_access);
            prev = now;
        }
    }

    /// The stash never explodes under arbitrary workloads.
    #[test]
    fn stash_bounded(
        seed in any::<u64>(),
        addrs in vec(0u64..64, 1..200),
    ) {
        let mut oram = PathOram::new(64, &seed.to_be_bytes());
        for (i, &a) in addrs.iter().enumerate() {
            oram.write(a, format!("{i}").as_bytes());
            prop_assert!(oram.stash_len() < 50, "stash {} at step {i}", oram.stash_len());
        }
    }
}
