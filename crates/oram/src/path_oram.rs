//! Path ORAM (Stefanov et al., CCS 2013) over an encrypted bucket tree.
//!
//! The RSSE paper motivates its leakage trade-off by pointing at oblivious
//! RAM: "hiding everything during the search from a malicious server
//! (including access pattern) ... usually brings the cost of logarithmic
//! number of interactions ... for each search request" (§III-A). This
//! module supplies that reference point so the trade-off can be measured
//! rather than asserted.
//!
//! The construction is the textbook one: a binary tree of buckets
//! (`Z` block slots each); the client holds a position map and a stash;
//! every access reads one full root-to-leaf path, remaps the block to a
//! fresh uniform leaf, and greedily writes the path back. All stored
//! blocks are freshly re-encrypted on every write-back, so the server sees
//! only uniformly random paths and ciphertexts.

use rsse_crypto::ctr::NONCE_LEN;
use rsse_crypto::tape::Transcript;
use rsse_crypto::{SecretKey, SemanticCipher, Tape};
use std::collections::HashMap;

/// Blocks per bucket (the standard Z = 4).
pub const BUCKET_SIZE: usize = 4;

/// Payload bytes per block.
pub const PAYLOAD_LEN: usize = 120;

/// Plaintext block layout: `u64 addr ‖ payload`.
const BLOCK_PLAIN_LEN: usize = 8 + PAYLOAD_LEN;
/// Dummy blocks carry this reserved address.
const DUMMY_ADDR: u64 = u64::MAX;

/// Server-visible access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OramStats {
    /// Logical accesses performed.
    pub accesses: u64,
    /// Buckets read + written (each access touches `2·(L+1)` of them).
    pub buckets_touched: u64,
    /// Ciphertext bytes moved client↔server.
    pub bytes_transferred: u64,
}

/// A Path ORAM instance. The struct holds both the simulated server state
/// (the encrypted tree) and the client state (position map, stash, keys);
/// the [`OramStats`] expose exactly what crosses the boundary.
///
/// # Example
///
/// ```
/// use rsse_oram::PathOram;
///
/// let mut oram = PathOram::new(64, b"client secret");
/// oram.write(7, b"hello oram");
/// assert_eq!(oram.read(7).as_deref(), Some(&b"hello oram"[..]));
/// assert_eq!(oram.read(8), None);
/// ```
pub struct PathOram {
    // --- server side ---
    /// Heap-indexed bucket tree; `tree[0]` is the root. Each slot is an
    /// encrypted block ciphertext.
    tree: Vec<Vec<Vec<u8>>>,
    height: u32,
    // --- client side ---
    cipher: SemanticCipher,
    position: HashMap<u64, u64>,
    stash: HashMap<u64, [u8; PAYLOAD_LEN]>,
    coins: Tape,
    nonce_counter: u64,
    capacity: u64,
    stats: OramStats,
}

impl core::fmt::Debug for PathOram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PathOram")
            .field("capacity", &self.capacity)
            .field("height", &self.height)
            .field("stash_len", &self.stash.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PathOram {
    /// Creates an ORAM holding up to `capacity` logical blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u64, client_secret: &[u8]) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        // Tree with at least `capacity` leaves keeps stash overflow
        // probability negligible at Z = 4.
        let height = 64 - capacity.next_power_of_two().leading_zeros() - 1;
        let height = height.max(1);
        let num_nodes = (1usize << (height + 1)) - 1;
        let key = SecretKey::derive(client_secret, "oram/block");
        let coin_key = SecretKey::derive(client_secret, "oram/coins");
        let mut oram = PathOram {
            tree: vec![Vec::new(); num_nodes],
            height,
            cipher: SemanticCipher::new(&key),
            position: HashMap::new(),
            stash: HashMap::new(),
            coins: Tape::new(&coin_key, &Transcript::new("oram").finish()),
            nonce_counter: 0,
            capacity,
            stats: OramStats::default(),
        };
        // Fill every bucket with Z dummy ciphertexts so the server's view
        // — and the per-access bandwidth — is uniform from the start.
        for node in 0..num_nodes {
            let bucket: Vec<Vec<u8>> = (0..BUCKET_SIZE)
                .map(|_| oram.encrypt_block(DUMMY_ADDR, &[0u8; PAYLOAD_LEN]))
                .collect();
            oram.tree[node] = bucket;
        }
        oram
    }

    /// Number of leaves `2^L`.
    fn num_leaves(&self) -> u64 {
        1u64 << self.height
    }

    /// Heap index of the node at `level` on the path to `leaf`.
    fn node_at(&self, leaf: u64, level: u32) -> usize {
        let prefix = leaf >> (self.height - level);
        ((1u64 << level) - 1 + prefix) as usize
    }

    fn fresh_nonce(&mut self) -> [u8; NONCE_LEN] {
        self.nonce_counter += 1;
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(b"oramblk\0");
        nonce[8..].copy_from_slice(&self.nonce_counter.to_be_bytes());
        nonce
    }

    fn encrypt_block(&mut self, addr: u64, payload: &[u8; PAYLOAD_LEN]) -> Vec<u8> {
        let mut plain = [0u8; BLOCK_PLAIN_LEN];
        plain[..8].copy_from_slice(&addr.to_be_bytes());
        plain[8..].copy_from_slice(payload);
        let nonce = self.fresh_nonce();
        self.cipher.encrypt_with_nonce(nonce, &plain)
    }

    fn decrypt_block(&self, ct: &[u8]) -> Option<(u64, [u8; PAYLOAD_LEN])> {
        let plain = self.cipher.decrypt(ct).ok()?;
        if plain.len() != BLOCK_PLAIN_LEN {
            return None;
        }
        let addr = u64::from_be_bytes(plain[..8].try_into().expect("8 bytes"));
        if addr == DUMMY_ADDR {
            return None;
        }
        let payload: [u8; PAYLOAD_LEN] = plain[8..].try_into().expect("payload length");
        Some((addr, payload))
    }

    /// The single access procedure: read the path of the block's current
    /// leaf into the stash, remap, optionally update, write the path back.
    fn access(
        &mut self,
        addr: u64,
        new_payload: Option<[u8; PAYLOAD_LEN]>,
    ) -> Option<[u8; PAYLOAD_LEN]> {
        assert!(addr < self.capacity, "address {addr} out of capacity");
        self.stats.accesses += 1;
        let num_leaves = self.num_leaves();
        let leaf = match self.position.get(&addr) {
            Some(&l) => l,
            None => self.coins.uniform_below(num_leaves),
        };
        // Remap to a fresh uniform leaf *before* the path write-back.
        let new_leaf = self.coins.uniform_below(num_leaves);
        self.position.insert(addr, new_leaf);

        // Read the whole path into the stash.
        for level in 0..=self.height {
            let node = self.node_at(leaf, level);
            let bucket = std::mem::take(&mut self.tree[node]);
            self.stats.buckets_touched += 1;
            for ct in bucket {
                self.stats.bytes_transferred += ct.len() as u64;
                if let Some((a, payload)) = self.decrypt_block(&ct) {
                    self.stash.insert(a, payload);
                }
            }
        }

        let result = self.stash.get(&addr).copied();
        if let Some(p) = new_payload {
            self.stash.insert(addr, p);
        }

        // Greedy write-back from leaf to root: a stashed block may be
        // placed at `level` iff its assigned path shares the node.
        for level in (0..=self.height).rev() {
            let node = self.node_at(leaf, level);
            let mut bucket: Vec<Vec<u8>> = Vec::with_capacity(BUCKET_SIZE);
            let candidates: Vec<u64> = self
                .stash
                .keys()
                .copied()
                .filter(|a| {
                    let assigned = self.position[a];
                    self.node_at(assigned, level) == node
                })
                .take(BUCKET_SIZE)
                .collect();
            for a in candidates {
                let payload = self.stash.remove(&a).expect("candidate from stash");
                let ct = self.encrypt_block(a, &payload);
                self.stats.bytes_transferred += ct.len() as u64;
                bucket.push(ct);
            }
            // Pad with dummies so every bucket is exactly Z ciphertexts.
            while bucket.len() < BUCKET_SIZE {
                let ct = self.encrypt_block(DUMMY_ADDR, &[0u8; PAYLOAD_LEN]);
                self.stats.bytes_transferred += ct.len() as u64;
                bucket.push(ct);
            }
            self.stats.buckets_touched += 1;
            self.tree[node] = bucket;
        }
        result
    }

    /// Reads the block at `addr`, if ever written. Performs one oblivious
    /// access either way.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= capacity`.
    pub fn read(&mut self, addr: u64) -> Option<Vec<u8>> {
        self.access(addr, None).map(|p| {
            // Stored payloads are length-prefixed inside the fixed block.
            let len = u16::from_be_bytes([p[0], p[1]]) as usize;
            p[2..2 + len.min(PAYLOAD_LEN - 2)].to_vec()
        })
    }

    /// Writes `data` (at most [`PAYLOAD_LEN`]`- 2` bytes) to `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= capacity` or `data` exceeds the payload size.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        assert!(
            data.len() <= PAYLOAD_LEN - 2,
            "payload of {} exceeds {} bytes",
            data.len(),
            PAYLOAD_LEN - 2
        );
        let mut payload = [0u8; PAYLOAD_LEN];
        payload[..2].copy_from_slice(&(data.len() as u16).to_be_bytes());
        payload[2..2 + data.len()].copy_from_slice(data);
        self.access(addr, Some(payload));
    }

    /// Access statistics so far.
    pub fn stats(&self) -> OramStats {
        self.stats
    }

    /// Current stash occupancy (should stay small; unbounded growth would
    /// indicate a broken eviction).
    pub fn stash_len(&self) -> usize {
        self.stash.len()
    }

    /// Tree height `L` (each access touches `L + 1` buckets each way).
    pub fn height(&self) -> u32 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut oram = PathOram::new(32, b"secret");
        oram.write(0, b"zero");
        oram.write(31, b"thirty-one");
        assert_eq!(oram.read(0).as_deref(), Some(&b"zero"[..]));
        assert_eq!(oram.read(31).as_deref(), Some(&b"thirty-one"[..]));
        assert_eq!(oram.read(5), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut oram = PathOram::new(8, b"secret");
        oram.write(3, b"old");
        oram.write(3, b"new value");
        assert_eq!(oram.read(3).as_deref(), Some(&b"new value"[..]));
    }

    #[test]
    fn matches_hashmap_oracle_under_random_workload() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let mut oram = PathOram::new(64, b"secret");
        let mut oracle: HashMap<u64, Vec<u8>> = HashMap::new();
        for step in 0..600 {
            let addr = rng.gen_range(0..64u64);
            if rng.gen_bool(0.5) {
                let data = format!("v{step}").into_bytes();
                oram.write(addr, &data);
                oracle.insert(addr, data);
            } else {
                assert_eq!(oram.read(addr), oracle.get(&addr).cloned(), "addr {addr}");
            }
        }
    }

    #[test]
    fn stash_stays_bounded() {
        let mut oram = PathOram::new(128, b"secret");
        for i in 0..128 {
            oram.write(i, format!("block {i}").as_bytes());
        }
        for round in 0..5 {
            for i in 0..128 {
                let _ = oram.read(i);
            }
            assert!(
                oram.stash_len() < 40,
                "round {round}: stash {} too large",
                oram.stash_len()
            );
        }
    }

    #[test]
    fn every_access_touches_a_full_path() {
        let mut oram = PathOram::new(64, b"secret");
        let per_access = 2 * (oram.height() as u64 + 1);
        oram.write(1, b"x");
        assert_eq!(oram.stats().buckets_touched, per_access);
        let _ = oram.read(1);
        assert_eq!(oram.stats().buckets_touched, 2 * per_access);
        // Misses cost exactly the same as hits (obliviousness).
        let _ = oram.read(2);
        assert_eq!(oram.stats().buckets_touched, 3 * per_access);
    }

    #[test]
    fn bandwidth_is_uniform_per_access() {
        let mut oram = PathOram::new(64, b"secret");
        oram.write(0, b"warm");
        let b0 = oram.stats().bytes_transferred;
        let _ = oram.read(0);
        let b1 = oram.stats().bytes_transferred - b0;
        let _ = oram.read(63);
        let b2 = oram.stats().bytes_transferred - b0 - b1;
        assert_eq!(b1, b2, "hit and miss must transfer equal bytes");
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_address_panics() {
        let mut oram = PathOram::new(8, b"secret");
        let _ = oram.read(8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_payload_panics() {
        let mut oram = PathOram::new(8, b"secret");
        oram.write(0, &[0u8; PAYLOAD_LEN]);
    }

    #[test]
    fn server_view_is_fresh_ciphertexts() {
        // After two identical accesses the path buckets hold different
        // ciphertexts (re-encryption), so the server cannot link contents.
        let mut oram = PathOram::new(8, b"secret");
        oram.write(0, b"payload");
        let snapshot: Vec<Vec<Vec<u8>>> = oram.tree.clone();
        let _ = oram.read(0);
        assert_ne!(snapshot, oram.tree);
    }
}
