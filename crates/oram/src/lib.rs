//! Oblivious RAM: the full-security end of the spectrum the RSSE paper
//! positions itself against.
//!
//! §III-A of the paper: *"searchable encryption can be achieved in its full
//! functionality using an oblivious RAM … although hiding everything
//! during the search from a malicious server (including access pattern),
//! utilizing oblivious RAM usually brings the cost of logarithmic number
//! of interactions between the user and the server for each search
//! request."* This crate implements that reference point:
//!
//! * [`PathOram`] — Path ORAM over an encrypted bucket tree with exact
//!   traffic accounting;
//! * [`ObliviousIndex`] — keyword search over ORAM with uniform per-query
//!   cost: no access pattern, no search pattern, no list-length leakage.
//!
//! The comparison benchmark (`cargo bench -p rsse-bench --bench oram`)
//! quantifies the trade-off: RSSE leaks access/search patterns and
//! relevance order but answers in a single cheap lookup; the oblivious
//! index leaks nothing and pays `O(log N)` bucket transfers per block,
//! every time.
//!
//! # Example
//!
//! ```
//! use rsse_oram::PathOram;
//!
//! let mut oram = PathOram::new(16, b"client secret");
//! oram.write(3, b"sensitive");
//! assert_eq!(oram.read(3).as_deref(), Some(&b"sensitive"[..]));
//! // Misses cost exactly as much as hits — that's the point.
//! let stats_before = oram.stats();
//! let _ = oram.read(9);
//! assert!(oram.stats().buckets_touched > stats_before.buckets_touched);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oblivious_index;
pub mod path_oram;

pub use oblivious_index::{ObliviousIndex, ObliviousIndexError};
pub use path_oram::{OramStats, PathOram, BUCKET_SIZE, PAYLOAD_LEN};
