//! An oblivious keyword index: searchable encryption with *no* access- or
//! search-pattern leakage, at ORAM cost.
//!
//! This is the §III-A alternative the paper trades away: posting lists are
//! stored in Path ORAM blocks, every keyword owns the same number of
//! blocks (hiding list lengths), and every search performs the same number
//! of oblivious accesses (hiding which keyword was searched and whether it
//! exists). The price — measured by the stats and the comparison bench —
//! is `blocks_per_keyword × (L+1) × Z` blocks of traffic per query versus
//! RSSE's single list lookup.

use crate::path_oram::{OramStats, PathOram, PAYLOAD_LEN};
use rsse_crypto::{KeyedLabel, SecretKey};
use rsse_ir::{FileId, InvertedIndex, Tokenizer};
use std::collections::HashMap;

/// File ids per ORAM block: `u16 count ‖ count × u64 id` within the
/// payload.
pub const IDS_PER_BLOCK: usize = (PAYLOAD_LEN - 2 - 2) / 8;

/// Errors from building the oblivious index.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObliviousIndexError {
    /// A posting list exceeds the fixed per-keyword capacity.
    PostingListTooLong {
        /// The oversized list's length.
        len: usize,
        /// The configured capacity.
        capacity: usize,
    },
}

impl core::fmt::Display for ObliviousIndexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ObliviousIndexError::PostingListTooLong { len, capacity } => {
                write!(
                    f,
                    "posting list of {len} exceeds the fixed capacity {capacity}"
                )
            }
        }
    }
}

impl std::error::Error for ObliviousIndexError {}

/// The oblivious keyword index. Holds the ORAM plus the client-side
/// keyword directory (label → base address), which in the ORAM model
/// lives with the client.
pub struct ObliviousIndex {
    oram: PathOram,
    directory: HashMap<[u8; 20], u64>,
    blocks_per_keyword: usize,
    label: KeyedLabel,
    tokenizer: Tokenizer,
}

impl core::fmt::Debug for ObliviousIndex {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ObliviousIndex")
            .field("keywords", &self.directory.len())
            .field("blocks_per_keyword", &self.blocks_per_keyword)
            .finish()
    }
}

impl ObliviousIndex {
    /// Builds the index with a fixed per-keyword posting capacity
    /// (`max_postings` file ids — the uniformity that hides list lengths).
    ///
    /// # Errors
    ///
    /// [`ObliviousIndexError::PostingListTooLong`] if any list exceeds the
    /// capacity.
    pub fn build(
        index: &InvertedIndex,
        max_postings: usize,
        client_secret: &[u8],
    ) -> Result<Self, ObliviousIndexError> {
        let blocks_per_keyword = max_postings.div_ceil(IDS_PER_BLOCK).max(1);
        let capacity = (index.num_keywords().max(1) * blocks_per_keyword) as u64;
        let mut oram = PathOram::new(capacity.max(2), client_secret);
        let label = KeyedLabel::new(&SecretKey::derive(client_secret, "oblivious/label"));
        let mut directory = HashMap::with_capacity(index.num_keywords());

        for (i, (term, postings)) in index.iter().enumerate() {
            if postings.len() > max_postings {
                return Err(ObliviousIndexError::PostingListTooLong {
                    len: postings.len(),
                    capacity: max_postings,
                });
            }
            let base = (i * blocks_per_keyword) as u64;
            directory.insert(label.label(term.as_bytes()), base);
            for (chunk_idx, chunk) in postings.chunks(IDS_PER_BLOCK).enumerate() {
                let mut payload = Vec::with_capacity(2 + chunk.len() * 8);
                payload.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
                for p in chunk {
                    payload.extend_from_slice(&p.file.to_bytes());
                }
                oram.write(base + chunk_idx as u64, &payload);
            }
            // Write the remaining blocks too so every keyword owns exactly
            // blocks_per_keyword written blocks (uniform build footprint).
            for chunk_idx in postings.chunks(IDS_PER_BLOCK).count()..blocks_per_keyword {
                oram.write(base + chunk_idx as u64, &0u16.to_be_bytes());
            }
        }
        Ok(ObliviousIndex {
            oram,
            directory,
            blocks_per_keyword,
            label,
            tokenizer: Tokenizer::new(),
        })
    }

    /// Searches for a keyword. Every call — hit or miss — performs exactly
    /// `blocks_per_keyword` oblivious accesses.
    pub fn search(&mut self, query: &str) -> Vec<FileId> {
        let base = self
            .tokenizer
            .tokenize(query)
            .first()
            .and_then(|term| self.directory.get(&self.label.label(term.as_bytes())))
            .copied();
        let mut out = Vec::new();
        for chunk_idx in 0..self.blocks_per_keyword as u64 {
            match base {
                Some(b) => {
                    if let Some(block) = self.oram.read(b + chunk_idx) {
                        if block.len() >= 2 {
                            let count = u16::from_be_bytes([block[0], block[1]]) as usize;
                            for j in 0..count {
                                let off = 2 + j * 8;
                                if block.len() >= off + 8 {
                                    let id: [u8; 8] =
                                        block[off..off + 8].try_into().expect("8 bytes");
                                    out.push(FileId::from_bytes(id));
                                }
                            }
                        }
                    }
                }
                None => {
                    // Dummy accesses keep misses indistinguishable from hits.
                    let dummy = chunk_idx % self.oram_capacity();
                    let _ = self.oram.read(dummy);
                }
            }
        }
        out
    }

    fn oram_capacity(&self) -> u64 {
        (self.directory.len().max(1) * self.blocks_per_keyword) as u64
    }

    /// Server-visible traffic statistics.
    pub fn stats(&self) -> OramStats {
        self.oram.stats()
    }

    /// The uniform number of ORAM accesses every search performs.
    pub fn accesses_per_search(&self) -> usize {
        self.blocks_per_keyword
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsse_ir::Document;

    fn index() -> InvertedIndex {
        let docs = vec![
            Document::new(FileId::new(1), "network routing network"),
            Document::new(FileId::new(2), "network storage"),
            Document::new(FileId::new(3), "storage arrays compression"),
            Document::new(FileId::new(4), "network telemetry"),
        ];
        InvertedIndex::build(&docs)
    }

    #[test]
    fn search_returns_the_posting_list() {
        let mut oi = ObliviousIndex::build(&index(), 16, b"secret").unwrap();
        let mut got = oi.search("network");
        got.sort();
        assert_eq!(got, vec![FileId::new(1), FileId::new(2), FileId::new(4)]);
        assert_eq!(oi.search("compression"), vec![FileId::new(3)]);
    }

    #[test]
    fn miss_returns_empty_but_costs_the_same() {
        let mut oi = ObliviousIndex::build(&index(), 16, b"secret").unwrap();
        let before = oi.stats().accesses;
        let hit = oi.search("network");
        let after_hit = oi.stats().accesses;
        let miss = oi.search("zebra");
        let after_miss = oi.stats().accesses;
        assert!(!hit.is_empty() && miss.is_empty());
        assert_eq!(after_hit - before, after_miss - after_hit);
    }

    #[test]
    fn capacity_enforced() {
        let err = ObliviousIndex::build(&index(), 2, b"secret").unwrap_err();
        assert!(matches!(
            err,
            ObliviousIndexError::PostingListTooLong {
                len: 3,
                capacity: 2
            }
        ));
    }

    #[test]
    fn repeated_searches_stay_correct() {
        // ORAM reshuffles on every access; results must not decay.
        let mut oi = ObliviousIndex::build(&index(), 16, b"secret").unwrap();
        for _ in 0..20 {
            let mut got = oi.search("storage");
            got.sort();
            assert_eq!(got, vec![FileId::new(2), FileId::new(3)]);
        }
    }

    #[test]
    fn multi_block_posting_lists() {
        // More postings than fit in a single block.
        let docs: Vec<Document> = (0..40)
            .map(|i| Document::new(FileId::new(i), "common unique words"))
            .collect();
        let idx = InvertedIndex::build(&docs);
        let mut oi = ObliviousIndex::build(&idx, 64, b"secret").unwrap();
        assert!(oi.accesses_per_search() >= 2);
        let got = oi.search("common");
        assert_eq!(got.len(), 40);
    }
}
