//! The generational segment store: L0 delta flushes, live background
//! compaction, and epoch-based reclaim.
//!
//! [`crate::segment::SegmentBackend`] rewrites its whole file on every
//! compaction, stop-the-world. This module grows that single file into a
//! small LSM-shaped **generation stack** so heavy update streams never
//! force a full rewrite on the serving path:
//!
//! ```text
//!  dir/MANIFEST        which generations exist, in merge order
//!  dir/gen-000000.seg  the base generation   (RSSEIDX2)
//!  dir/gen-000001.seg  an L0 delta           (RSSEIDX2)
//!  dir/gen-000002.seg  another delta ...
//! ```
//!
//! Updates land in the in-memory overlay exactly as before; a **flush**
//! seals the overlay into a new delta generation (cheap: proportional to
//! the overlay, not the index). A **live compaction** merges the whole
//! stack into one fresh generation on a background thread *while queries
//! keep serving* from the old stack + overlay, then installs it with an
//! atomic pointer flip. A query ranks each generation's list as one
//! stream and merges them with [`merge_ranked_streams`] — the same
//! total-order argument that makes base+overlay merging byte-identical
//! makes the N-generation merge byte-identical to the in-memory ranking,
//! because generations hold disjoint *time slices* of each posting list
//! in insertion order.
//!
//! # The flip/reclaim protocol
//!
//! The serving state is one `Arc<GenerationSet>` behind an `RwLock`. A
//! query clones the `Arc` (instant read lock) and ranks against that
//! snapshot with no further coordination — searches never block on
//! compaction I/O, and an in-flight query keeps its generations alive no
//! matter what installs meanwhile. Install order is: (1) write + fsync
//! the merged generation file, (2) write the new `MANIFEST` durably
//! (temp file, fsync, rename, directory fsync), (3) swap the `Arc` and
//! mark the replaced generations **doomed**. The `Arc` refcount *is* the
//! epoch: when the last in-flight query releases a doomed generation,
//! its `Drop` deletes the file. Deletion is deliberately volatile — if
//! the machine dies first, the files resurrect as orphans and the next
//! open removes them (the manifest, not the directory listing, is the
//! source of truth).
//!
//! # Crash consistency
//!
//! Durable state changes only at fsync/rename boundaries, all of which
//! flow through [`SegmentIo`]. Every mutation follows the same
//! discipline: data file synced *before* the manifest references it,
//! manifest replaced atomically, directory fsynced so the rename itself
//! survives power loss. A crash at any boundary therefore leaves the
//! durable manifest at exactly the previous or the next state — never a
//! torn mix — which `crates/core/tests/crash_torture.rs` proves by
//! killing the writer at *every* boundary and diffing rankings after
//! reopen.
//!
//! # Leakage
//!
//! A delta generation makes the update pattern visible per generation:
//! the server sees which labels grew between two flushes and by how many
//! entries — exactly what the in-memory overlay already reveals to the
//! server process, now persisted. Compaction folds the generations back
//! into one file whose layout is a deterministic function of the public
//! shape (label set + list lengths), so the steady state leaks nothing
//! beyond the single-segment backend. See DESIGN.md §6.6.

use crate::backend::IndexBackend;
use crate::index::{merge_ranked_streams, rank_entries, Label, RankedResult, RsseTrapdoor};
use crate::persist::{PersistError, SegmentWriter, DIR_RECORD_LEN};
use crate::segio::{read_file, SegmentIo};
use crate::segment::{BatchReadCounters, BatchReadStats, ListBytes, SegmentReader};
use crate::store::PostingStore;
use crate::RsseIndex;
use rsse_crypto::SemanticCipher;
use rsse_opse::OpseParams;
use std::collections::{BTreeSet, HashMap};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Magic of the generation-store manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"RSSEGEN1";

const MANIFEST: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
/// Sanity cap on the generation count a manifest may claim.
const MAX_GENERATIONS: u64 = 1 << 16;

fn gen_file_name(seq: u64) -> String {
    format!("gen-{seq:06}.seg")
}

fn parse_gen_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("gen-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<'a, T>(l: &'a RwLock<T>) -> std::sync::RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Writes the manifest durably: temp file, fsync, atomic rename over
/// `MANIFEST`, directory fsync. The three sync points are exactly the
/// boundaries the torture suite kills at.
fn write_manifest(
    io: &dyn SegmentIo,
    dir: &Path,
    epoch: u64,
    next_seq: u64,
    seqs: &[u64],
) -> Result<(), PersistError> {
    let mut body = Vec::with_capacity(40 + seqs.len() * 8);
    body.extend_from_slice(MANIFEST_MAGIC);
    body.extend_from_slice(&epoch.to_be_bytes());
    body.extend_from_slice(&next_seq.to_be_bytes());
    body.extend_from_slice(&(seqs.len() as u64).to_be_bytes());
    for seq in seqs {
        body.extend_from_slice(&seq.to_be_bytes());
    }
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_be_bytes());
    let tmp = dir.join(MANIFEST_TMP);
    let mut w = io.create(&tmp)?;
    w.write_all(&body)?;
    w.sync()?;
    drop(w);
    io.rename(&tmp, &dir.join(MANIFEST))?;
    io.fsync_dir(dir)?;
    Ok(())
}

/// Parses and validates a manifest: `(epoch, next_seq, generation seqs)`.
fn parse_manifest(bytes: &[u8]) -> Result<(u64, u64, Vec<u64>), PersistError> {
    use PersistError::BadManifest;
    if bytes.len() < 40 {
        return Err(BadManifest("truncated"));
    }
    if &bytes[..8] != MANIFEST_MAGIC {
        return Err(BadManifest("bad magic"));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let sum = u64::from_be_bytes(sum_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != sum {
        return Err(BadManifest("checksum mismatch"));
    }
    let be = |range: core::ops::Range<usize>| {
        u64::from_be_bytes(bytes[range].try_into().expect("8 bytes"))
    };
    let epoch = be(8..16);
    let next_seq = be(16..24);
    let count = be(24..32);
    if count > MAX_GENERATIONS {
        return Err(BadManifest("generation count over the sanity cap"));
    }
    if body.len() as u64 != 32 + count * 8 {
        return Err(BadManifest("record list does not match the count"));
    }
    let seqs: Vec<u64> = (0..count as usize)
        .map(|i| be(32 + i * 8..40 + i * 8))
        .collect();
    if seqs.iter().collect::<BTreeSet<_>>().len() != seqs.len() {
        return Err(BadManifest("duplicate generation"));
    }
    if seqs.iter().any(|&s| s >= next_seq) {
        return Err(BadManifest("generation seq at or past next_seq"));
    }
    Ok((epoch, next_seq, seqs))
}

/// One immutable generation file: its validated reader plus reclaim
/// state. The `Arc` refcount around this struct is the reclaim epoch —
/// see the module docs.
#[derive(Debug)]
struct GenSegment {
    seq: u64,
    path: PathBuf,
    reader: SegmentReader,
    io: Arc<dyn SegmentIo>,
    /// Set once a compaction replaced this generation: the last holder
    /// deletes the file on drop.
    doomed: AtomicBool,
    reclaimed: Arc<AtomicU64>,
}

impl Drop for GenSegment {
    fn drop(&mut self) {
        if self.doomed.load(Ordering::SeqCst) {
            // Volatile on purpose: if this deletion is lost to a crash,
            // the file comes back as an orphan and open() removes it.
            let _ = self.io.remove_file(&self.path);
            self.reclaimed.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// An immutable snapshot of the generation stack, in merge order (base
/// first, newest delta last).
#[derive(Debug)]
pub(crate) struct GenerationSet {
    epoch: u64,
    segments: Vec<Arc<GenSegment>>,
}

/// State shared by every clone of a [`GenerationalBackend`] and by
/// in-flight [`LiveCompaction`] jobs.
#[derive(Debug)]
struct GenShared {
    /// The serving snapshot; queries clone the `Arc` under an instant
    /// read lock. Writers replace the pointer only after the manifest is
    /// durably on disk.
    current: RwLock<Arc<GenerationSet>>,
    /// Serializes manifest writers (flush and compaction install).
    writer: Mutex<WriterState>,
    /// Guards against concurrent live compactions — the double-compact
    /// race answers [`PersistError::CompactInProgress`], never blocks.
    compacting: AtomicBool,
    /// Generations whose files have been deleted after their last reader
    /// released them.
    reclaimed: Arc<AtomicU64>,
}

#[derive(Debug)]
struct WriterState {
    epoch: u64,
    next_seq: u64,
}

impl GenShared {
    fn current_set(&self) -> Arc<GenerationSet> {
        Arc::clone(&read(&self.current))
    }
}

/// Snapshot of a generational store's shape (observability for tests,
/// benches, and operators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerationStats {
    /// Manifest epoch of the serving snapshot.
    pub epoch: u64,
    /// Generations in the serving snapshot (1 = fully compacted).
    pub segments: usize,
    /// Generation files deleted by epoch reclaim since open.
    pub reclaimed_segments: u64,
    /// Entries parked in the in-memory overlay (not yet flushed).
    pub overlay_entries: usize,
    /// Whether a live compaction is running right now.
    pub compacting: bool,
}

/// Outcome of one live compaction pass.
#[derive(Debug, Clone, Copy)]
pub struct CompactionStats {
    /// Generations merged into the new one.
    pub merged_segments: usize,
    /// Posting entries in the merged generation.
    pub merged_entries: u64,
    /// Bytes of the merged generation file.
    pub bytes_written: u64,
    /// How long the serving pointer was write-locked during the flip —
    /// the only moment a query can wait on compaction at all.
    pub install_pause: Duration,
    /// Total wall time of the pass (merge + durable manifest + flip).
    pub wall: Duration,
}

/// Keeps one generation snapshot alive, like an in-flight query would:
/// doomed generations cannot be reclaimed while a pin holds them.
#[derive(Debug)]
pub struct GenerationPin {
    set: Arc<GenerationSet>,
}

impl GenerationPin {
    /// Paths of the pinned generation files, in merge order.
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.set.segments.iter().map(|s| s.path.clone()).collect()
    }
}

/// A posting-list container served from a stack of generation files plus
/// an in-memory overlay — see the module docs for layout and protocol.
///
/// Cloning shares the generation stack (and compaction state); each
/// clone carries its own overlay, like [`crate::SegmentBackend`].
#[derive(Debug, Clone)]
pub struct GenerationalBackend {
    dir: PathBuf,
    io: Arc<dyn SegmentIo>,
    opse: OpseParams,
    shared: Arc<GenShared>,
    overlay: PostingStore,
    batch: Arc<BatchReadCounters>,
}

impl GenerationalBackend {
    /// Creates a new store at `dir`: writes the base generation from
    /// `index` and the initial manifest, all durably.
    pub fn create(
        io: Arc<dyn SegmentIo>,
        dir: impl AsRef<Path>,
        index: &RsseIndex,
    ) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        io.create_dir_all(&dir)?;
        let opse = index
            .opse_params()
            .copied()
            .unwrap_or_else(|| OpseParams::new(1, 1).expect("1/1 is valid"));
        let path = dir.join(gen_file_name(0));
        let parts = index.export_parts();
        let out = io.create(&path)?;
        let mut w = SegmentWriter::new(out, &opse, parts.len() as u64)?;
        for (label, entries) in parts {
            w.begin_list(label, entries.len() as u64)?;
            for e in entries {
                w.write_entry(&e)?;
            }
            w.end_list();
        }
        let mut out = w.finish()?;
        out.sync()?;
        drop(out);
        write_manifest(io.as_ref(), &dir, 1, 1, &[0])?;
        Self::open(io, dir)
    }

    /// Opens an existing store: reads the manifest, opens every listed
    /// generation, and removes orphan generation files a crash may have
    /// left behind (the manifest is the source of truth; the directory
    /// listing is not).
    ///
    /// # Errors
    ///
    /// [`PersistError::BadManifest`] on a malformed manifest; any
    /// [`PersistError`] validating a listed generation file. A listed
    /// generation that is missing or corrupt fails the open — the
    /// manifest only ever references files whose contents were fsynced
    /// before it, so that state indicates real corruption, not a crash.
    pub fn open(io: Arc<dyn SegmentIo>, dir: impl AsRef<Path>) -> Result<Self, PersistError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest = read_file(io.as_ref(), &dir.join(MANIFEST))?;
        let (epoch, stored_next, seqs) = parse_manifest(&manifest)?;
        let reclaimed = Arc::new(AtomicU64::new(0));
        let mut segments = Vec::with_capacity(seqs.len());
        let mut opse: Option<OpseParams> = None;
        for &seq in &seqs {
            let path = dir.join(gen_file_name(seq));
            let reader = SegmentReader::open(io.as_ref(), &path)?;
            match opse {
                None => opse = Some(*reader.opse()),
                Some(ref p) if p != reader.opse() => {
                    return Err(PersistError::BadManifest(
                        "generations disagree on OPSE parameters",
                    ));
                }
                Some(_) => {}
            }
            segments.push(Arc::new(GenSegment {
                seq,
                path,
                reader,
                io: Arc::clone(&io),
                doomed: AtomicBool::new(false),
                reclaimed: Arc::clone(&reclaimed),
            }));
        }
        let opse = opse.unwrap_or_else(|| OpseParams::new(1, 1).expect("1/1 is valid"));
        // Sweep orphans: generation files not in the manifest (a crashed
        // flush/compaction or a lost reclaim) and a stale manifest temp.
        let referenced: BTreeSet<u64> = seqs.iter().copied().collect();
        if let Ok(names) = io.list_dir(&dir) {
            for name in names {
                if name == MANIFEST_TMP {
                    let _ = io.remove_file(&dir.join(&name));
                } else if let Some(seq) = parse_gen_file_name(&name) {
                    if !referenced.contains(&seq) {
                        let _ = io.remove_file(&dir.join(&name));
                    }
                }
            }
        }
        let next_seq = stored_next.max(seqs.iter().max().map_or(0, |m| m + 1));
        Ok(GenerationalBackend {
            dir,
            io,
            opse,
            shared: Arc::new(GenShared {
                current: RwLock::new(Arc::new(GenerationSet { epoch, segments })),
                writer: Mutex::new(WriterState { epoch, next_seq }),
                compacting: AtomicBool::new(false),
                reclaimed,
            }),
            overlay: PostingStore::new(),
            batch: Arc::new(BatchReadCounters::default()),
        })
    }

    /// The OPSE parameters shared by every generation.
    pub fn opse_params(&self) -> &OpseParams {
        &self.opse
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Entries parked in the in-memory overlay (not yet flushed).
    pub fn overlay_entries(&self) -> usize {
        self.overlay
            .labels()
            .filter_map(|l| self.overlay.list_len(l))
            .sum()
    }

    /// Current shape of the store.
    pub fn stats(&self) -> GenerationStats {
        let set = self.shared.current_set();
        GenerationStats {
            epoch: set.epoch,
            segments: set.segments.len(),
            reclaimed_segments: self.shared.reclaimed.load(Ordering::SeqCst),
            overlay_entries: self.overlay_entries(),
            compacting: self.shared.compacting.load(Ordering::SeqCst),
        }
    }

    /// Pins the current generation snapshot (see [`GenerationPin`]).
    pub fn pin(&self) -> GenerationPin {
        GenerationPin {
            set: self.shared.current_set(),
        }
    }

    /// Whether a live compaction is running right now.
    pub fn compact_in_progress(&self) -> bool {
        self.shared.compacting.load(Ordering::SeqCst)
    }

    /// Seals the overlay into a new L0 delta generation, durably
    /// (data file fsync, then manifest: fsync + rename + dir fsync).
    /// Cost is proportional to the *overlay*, never the index. Returns
    /// `false` when the overlay is empty. On any error the overlay is
    /// kept intact and the serving state unchanged — updates are only
    /// dropped from memory once they are durable on disk.
    pub fn flush(&mut self) -> Result<bool, PersistError> {
        if self.overlay.num_lists() == 0 {
            return Ok(false);
        }
        let mut writer = lock(&self.shared.writer);
        let seq = writer.next_seq;
        let path = self.dir.join(gen_file_name(seq));
        let mut labels: Vec<Label> = self.overlay.labels().copied().collect();
        labels.sort_unstable();
        let out = self.io.create(&path)?;
        let mut w = SegmentWriter::new(out, &self.opse, labels.len() as u64)?;
        for label in &labels {
            let pl = self.overlay.list(label).expect("label from this overlay");
            w.begin_list(*label, pl.len() as u64)?;
            for entry in pl.iter() {
                w.write_entry(entry)?;
            }
            w.end_list();
        }
        let mut out = w.finish()?;
        out.sync()?;
        drop(out);
        let reader = SegmentReader::open(self.io.as_ref(), &path)?;
        let cur = self.shared.current_set();
        let epoch = writer.epoch + 1;
        let mut segments = cur.segments.clone();
        segments.push(Arc::new(GenSegment {
            seq,
            path,
            reader,
            io: Arc::clone(&self.io),
            doomed: AtomicBool::new(false),
            reclaimed: Arc::clone(&self.shared.reclaimed),
        }));
        let seqs: Vec<u64> = segments.iter().map(|s| s.seq).collect();
        write_manifest(self.io.as_ref(), &self.dir, epoch, seq + 1, &seqs)?;
        writer.epoch = epoch;
        writer.next_seq = seq + 1;
        *write(&self.shared.current) = Arc::new(GenerationSet { epoch, segments });
        self.overlay = PostingStore::new();
        Ok(true)
    }

    /// Starts a live compaction of the current generation stack.
    ///
    /// Returns `Ok(None)` when there is nothing to merge (fewer than two
    /// generations — flush first if the overlay should be included).
    /// The returned job owns a snapshot of the stack and runs entirely
    /// off the serving path: hand it to a background thread and call
    /// [`LiveCompaction::run`]. Queries (and flushes) proceed untouched
    /// meanwhile; dropping the job without running it aborts cleanly.
    ///
    /// # Errors
    ///
    /// [`PersistError::CompactInProgress`] when another live compaction
    /// is already running — immediately, never blocking behind it.
    pub fn begin_live_compact(&self) -> Result<Option<LiveCompaction>, PersistError> {
        if self.shared.compacting.swap(true, Ordering::SeqCst) {
            return Err(PersistError::CompactInProgress);
        }
        let snapshot = self.shared.current_set();
        if snapshot.segments.len() < 2 {
            self.shared.compacting.store(false, Ordering::SeqCst);
            return Ok(None);
        }
        let out_seq = {
            let mut writer = lock(&self.shared.writer);
            let seq = writer.next_seq;
            writer.next_seq = seq + 1;
            seq
        };
        Ok(Some(LiveCompaction {
            dir: self.dir.clone(),
            io: Arc::clone(&self.io),
            opse: self.opse,
            shared: Arc::clone(&self.shared),
            snapshot,
            out_seq,
        }))
    }

    /// Ranked search across every generation plus the overlay (see
    /// [`crate::RsseIndex::search_with_scratch`] for the contract).
    ///
    /// Takes an instant snapshot of the generation stack and never
    /// touches compaction state again — a query in flight across a flip
    /// keeps ranking against its snapshot, byte-identical either way.
    pub(crate) fn search(
        &self,
        trapdoor: &RsseTrapdoor,
        top_k: Option<usize>,
        scratch: &mut Vec<u8>,
    ) -> Vec<RankedResult> {
        let set = self.shared.current_set();
        let overlay_list = self.overlay.list(trapdoor.label());
        let in_base = set
            .segments
            .iter()
            .any(|s| s.reader.directory().contains_key(trapdoor.label()));
        if !in_base && overlay_list.is_none() {
            return Vec::new();
        }
        let cipher = SemanticCipher::new(trapdoor.list_key());
        let mut streams: Vec<Vec<RankedResult>> = Vec::new();
        for seg in &set.segments {
            if let Some(ranked) = seg
                .reader
                .rank_label(trapdoor.label(), &cipher, top_k, scratch)
            {
                if !ranked.is_empty() {
                    streams.push(ranked);
                }
            }
        }
        if let Some(pl) = overlay_list {
            if !pl.is_empty() {
                let ranked = rank_entries(pl.iter(), pl.len(), &cipher, top_k, scratch);
                if !ranked.is_empty() {
                    streams.push(ranked);
                }
            }
        }
        match streams.len() {
            0 => Vec::new(),
            1 => streams.pop().expect("one stream"),
            _ => {
                let refs: Vec<&[RankedResult]> = streams.iter().map(Vec::as_slice).collect();
                merge_ranked_streams(&refs, top_k)
            }
        }
    }

    /// Batched [`Self::search`]: every generation file reads the posting
    /// lists the batch touches in file-offset order (one sorted pass per
    /// generation — see [`SegmentReader::read_lists_sorted`]), then each
    /// query ranks against the prefetched bytes. One generation snapshot
    /// covers the whole batch, and per-query results are byte-identical
    /// to serial [`Self::search`] calls against that snapshot: the bytes
    /// fetched and the rank/merge code are the same.
    pub(crate) fn search_batch(
        &self,
        trapdoors: &[RsseTrapdoor],
        top_k: Option<usize>,
        scratch: &mut Vec<u8>,
    ) -> Vec<Vec<RankedResult>> {
        let set = self.shared.current_set();
        let mut per_segment: Vec<HashMap<Label, ListBytes>> =
            Vec::with_capacity(set.segments.len());
        let mut lists_read = 0u64;
        let mut seeks_saved = 0u64;
        for seg in &set.segments {
            let (lists, seeks) = seg
                .reader
                .read_lists_sorted(trapdoors.iter().map(RsseTrapdoor::label));
            lists_read += lists.len() as u64;
            seeks_saved += seeks;
            per_segment.push(lists);
        }
        self.batch.note(lists_read, seeks_saved);
        trapdoors
            .iter()
            .map(|trapdoor| {
                let overlay_list = self.overlay.list(trapdoor.label());
                let in_base = per_segment.iter().any(|m| m.contains_key(trapdoor.label()));
                if !in_base && overlay_list.is_none() {
                    return Vec::new();
                }
                let cipher = SemanticCipher::new(trapdoor.list_key());
                let mut streams: Vec<Vec<RankedResult>> = Vec::new();
                for lists in &per_segment {
                    if let Some(list) = lists.get(trapdoor.label()) {
                        let ranked =
                            rank_entries(list.entries(), list.len(), &cipher, top_k, scratch);
                        if !ranked.is_empty() {
                            streams.push(ranked);
                        }
                    }
                }
                if let Some(pl) = overlay_list {
                    if !pl.is_empty() {
                        let ranked = rank_entries(pl.iter(), pl.len(), &cipher, top_k, scratch);
                        if !ranked.is_empty() {
                            streams.push(ranked);
                        }
                    }
                }
                match streams.len() {
                    0 => Vec::new(),
                    1 => streams.pop().expect("one stream"),
                    _ => {
                        let refs: Vec<&[RankedResult]> =
                            streams.iter().map(Vec::as_slice).collect();
                        merge_ranked_streams(&refs, top_k)
                    }
                }
            })
            .collect()
    }

    /// Counters of the batched-read path since open.
    pub fn batch_read_stats(&self) -> BatchReadStats {
        self.batch.snapshot()
    }

    fn union_labels(&self) -> BTreeSet<Label> {
        let set = self.shared.current_set();
        let mut labels: BTreeSet<Label> = BTreeSet::new();
        for seg in &set.segments {
            labels.extend(seg.reader.directory().keys().copied());
        }
        labels.extend(self.overlay.labels().copied());
        labels
    }
}

impl IndexBackend for GenerationalBackend {
    fn contains_label(&self, label: &Label) -> bool {
        self.overlay.contains_label(label)
            || self
                .shared
                .current_set()
                .segments
                .iter()
                .any(|s| s.reader.directory().contains_key(label))
    }

    fn num_lists(&self) -> usize {
        self.union_labels().len()
    }

    fn list_len(&self, label: &Label) -> Option<usize> {
        let set = self.shared.current_set();
        let mut total = 0usize;
        let mut found = false;
        for seg in &set.segments {
            if let Some(meta) = seg.reader.directory().get(label) {
                total += meta.count as usize;
                found = true;
            }
        }
        if let Some(n) = self.overlay.list_len(label) {
            total += n;
            found = true;
        }
        found.then_some(total)
    }

    fn size_bytes(&self) -> usize {
        // Labels once per (union) list, payloads from every generation
        // plus the overlay — mirrors the mem backend's accounting.
        let set = self.shared.current_set();
        let payload: usize = set.segments.iter().map(|s| s.reader.base_payload()).sum();
        self.num_lists() * 20
            + payload
            + (self.overlay.size_bytes() - 20 * self.overlay.num_lists())
    }

    fn labels(&self) -> Vec<Label> {
        self.union_labels().into_iter().collect()
    }

    fn append(&mut self, label: Label, entries: &[Vec<u8>]) {
        self.overlay.append(label, entries);
    }

    fn for_each_entry(&self, label: &Label, visit: &mut dyn FnMut(&[u8])) -> bool {
        let set = self.shared.current_set();
        let mut found = false;
        for seg in &set.segments {
            found |= seg.reader.for_each_entry(label, visit);
        }
        if let Some(pl) = self.overlay.list(label) {
            found = true;
            for entry in pl.iter() {
                visit(entry);
            }
        }
        found
    }
}

/// An in-flight live compaction: merges a snapshot of the generation
/// stack into one new generation, then installs it. Obtained from
/// [`GenerationalBackend::begin_live_compact`]; safe to move to a
/// background thread. Dropping without [`Self::run`] aborts cleanly
/// (the in-progress flag clears; a partially written file becomes an
/// orphan the next open sweeps).
#[derive(Debug)]
pub struct LiveCompaction {
    dir: PathBuf,
    io: Arc<dyn SegmentIo>,
    opse: OpseParams,
    shared: Arc<GenShared>,
    snapshot: Arc<GenerationSet>,
    out_seq: u64,
}

impl Drop for LiveCompaction {
    fn drop(&mut self) {
        // Runs both on abort and at the end of `run`: the store accepts
        // the next compaction only once this job is fully retired.
        self.shared.compacting.store(false, Ordering::SeqCst);
    }
}

impl LiveCompaction {
    /// Generations this pass will merge.
    pub fn merging(&self) -> usize {
        self.snapshot.segments.len()
    }

    /// Runs the merge and installs the new generation; see the module
    /// docs for the flip/reclaim protocol. No index lock is held at any
    /// point — queries and flushes proceed concurrently; the only
    /// serving-path wait is the pointer swap itself, reported as
    /// [`CompactionStats::install_pause`].
    ///
    /// # Errors
    ///
    /// Any [`PersistError`] writing, fsyncing, or re-validating. On
    /// error nothing is installed: the store keeps serving the old stack
    /// and the partial output file is swept as an orphan on next open.
    pub fn run(self) -> Result<CompactionStats, PersistError> {
        let t0 = Instant::now();
        let segs = &self.snapshot.segments;
        let mut labels: BTreeSet<Label> = BTreeSet::new();
        for seg in segs.iter() {
            labels.extend(seg.reader.directory().keys().copied());
        }
        let path = self.dir.join(gen_file_name(self.out_seq));
        let out = self.io.create(&path)?;
        let mut w = SegmentWriter::new(out, &self.opse, labels.len() as u64)?;
        let mut merged_entries = 0u64;
        for label in &labels {
            let total: u64 = segs
                .iter()
                .filter_map(|s| s.reader.directory().get(label))
                .map(|m| m.count)
                .sum();
            w.begin_list(*label, total)?;
            for seg in segs.iter() {
                if let Some(meta) = seg.reader.directory().get(label) {
                    if meta.byte_len > 0 {
                        w.write_raw_entries(&seg.reader.read_raw(meta)?)?;
                    }
                }
            }
            w.end_list();
            merged_entries += total;
        }
        let bytes_written = w.position() + labels.len() as u64 * DIR_RECORD_LEN + 8;
        let mut out = w.finish()?;
        out.sync()?;
        drop(out);
        let reader = SegmentReader::open(self.io.as_ref(), &path)?;
        let merged = Arc::new(GenSegment {
            seq: self.out_seq,
            path,
            reader,
            io: Arc::clone(&self.io),
            doomed: AtomicBool::new(false),
            reclaimed: Arc::clone(&self.shared.reclaimed),
        });
        // Install: serialize with flushes, then swap the pointer. The
        // current stack may have grown deltas past our snapshot; they are
        // newer than everything merged, so they stay, in order, after the
        // merged generation.
        let mut writer = lock(&self.shared.writer);
        let cur = self.shared.current_set();
        debug_assert!(
            cur.segments
                .iter()
                .zip(segs.iter())
                .all(|(a, b)| a.seq == b.seq),
            "snapshot must be a prefix of the current stack"
        );
        let mut segments = Vec::with_capacity(1 + cur.segments.len() - segs.len());
        segments.push(merged);
        segments.extend(cur.segments[segs.len()..].iter().cloned());
        let epoch = writer.epoch + 1;
        let seqs: Vec<u64> = segments.iter().map(|s| s.seq).collect();
        write_manifest(self.io.as_ref(), &self.dir, epoch, writer.next_seq, &seqs)?;
        writer.epoch = epoch;
        let flip = Instant::now();
        {
            let mut cur_w = write(&self.shared.current);
            for seg in segs.iter() {
                seg.doomed.store(true, Ordering::SeqCst);
            }
            *cur_w = Arc::new(GenerationSet { epoch, segments });
        }
        let install_pause = flip.elapsed();
        Ok(CompactionStats {
            merged_segments: segs.len(),
            merged_entries,
            bytes_written,
            install_pause,
            wall: t0.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segio::MemIo;
    use rsse_opse::OpseParams;

    fn label(b: u8) -> Label {
        [b; 20]
    }

    fn sample_index() -> RsseIndex {
        RsseIndex::from_parts(
            vec![
                (label(1), vec![vec![0xA1; 6], vec![0xA2; 6]]),
                (label(2), vec![]),
                (label(3), vec![vec![0xB1; 3], vec![0xB2; 9]]),
            ],
            OpseParams::default(),
        )
    }

    fn mem_store() -> (MemIo, GenerationalBackend) {
        let io = MemIo::new();
        let store =
            GenerationalBackend::create(io.shared(), Path::new("/gen"), &sample_index()).unwrap();
        (io, store)
    }

    #[test]
    fn create_open_roundtrip_preserves_content() {
        let (io, store) = mem_store();
        assert_eq!(store.stats().segments, 1);
        drop(store);
        let store = GenerationalBackend::open(io.shared(), Path::new("/gen")).unwrap();
        assert_eq!(store.num_lists(), 3);
        assert_eq!(store.list_len(&label(1)), Some(2));
        assert_eq!(store.list_len(&label(2)), Some(0));
        let mut got = Vec::new();
        assert!(store.for_each_entry(&label(3), &mut |e| got.push(e.to_vec())));
        assert_eq!(got, vec![vec![0xB1; 3], vec![0xB2; 9]]);
    }

    #[test]
    fn flush_seals_the_overlay_into_a_delta_generation() {
        let (io, mut store) = mem_store();
        assert!(!store.flush().unwrap(), "empty overlay is a no-op");
        store.append(label(1), &[vec![0xA3; 6]]);
        store.append(label(9), &[vec![0xC1; 2]]);
        assert!(store.flush().unwrap());
        assert_eq!(store.overlay_entries(), 0, "overlay drained");
        let stats = store.stats();
        assert_eq!(stats.segments, 2);
        assert_eq!(store.list_len(&label(1)), Some(3));
        assert_eq!(store.list_len(&label(9)), Some(1));
        // Durable: a power loss and reopen serve the same content.
        io.power_loss();
        let store = GenerationalBackend::open(io.shared(), Path::new("/gen")).unwrap();
        assert_eq!(store.list_len(&label(1)), Some(3));
        assert_eq!(store.list_len(&label(9)), Some(1));
    }

    #[test]
    fn live_compaction_merges_and_reclaims_after_last_release() {
        let (io, mut store) = mem_store();
        store.append(label(1), &[vec![0xA3; 6]]);
        store.flush().unwrap();
        store.append(label(9), &[vec![0xC1; 2]]);
        store.flush().unwrap();
        assert_eq!(store.stats().segments, 3);
        let pin = store.pin(); // an "in-flight query" across the flip
        let old_paths = pin.segment_paths();
        let job = store.begin_live_compact().unwrap().expect("work to do");
        assert_eq!(job.merging(), 3);
        let stats = job.run().unwrap();
        assert_eq!(stats.merged_segments, 3);
        assert_eq!(store.stats().segments, 1);
        // The pin holds the old generations alive: files still present.
        for p in &old_paths {
            assert!(
                io.read(p).is_some(),
                "{} reclaimed under a pin",
                p.display()
            );
        }
        assert_eq!(store.stats().reclaimed_segments, 0);
        drop(pin);
        for p in &old_paths {
            assert!(io.read(p).is_none(), "{} not reclaimed", p.display());
        }
        assert_eq!(store.stats().reclaimed_segments, 3);
        assert_eq!(store.list_len(&label(1)), Some(3));
        assert_eq!(store.list_len(&label(9)), Some(1));
    }

    #[test]
    fn double_compact_gets_a_typed_error_not_a_block() {
        let (_io, mut store) = mem_store();
        store.append(label(1), &[vec![0xA3; 6]]);
        store.flush().unwrap();
        let job = store.begin_live_compact().unwrap().expect("work to do");
        assert!(matches!(
            store.begin_live_compact(),
            Err(PersistError::CompactInProgress)
        ));
        // Aborting the job (drop without run) releases the store.
        drop(job);
        let job = store.begin_live_compact().unwrap().expect("still two gens");
        job.run().unwrap();
        // After a completed pass the store accepts the next one.
        assert!(
            store.begin_live_compact().unwrap().is_none(),
            "one gen left"
        );
    }

    #[test]
    fn single_generation_has_nothing_to_merge() {
        let (_io, store) = mem_store();
        assert!(store.begin_live_compact().unwrap().is_none());
        assert!(!store.compact_in_progress(), "flag released on None");
    }

    #[test]
    fn hostile_manifests_are_rejected() {
        let (io, store) = mem_store();
        drop(store);
        let manifest_path = Path::new("/gen").join(MANIFEST);
        let good = io.read(&manifest_path).unwrap();
        let mut checks = Vec::new();
        // Bit flip anywhere → checksum mismatch.
        let mut flipped = good.clone();
        flipped[9] ^= 1;
        checks.push(flipped);
        // Truncation.
        checks.push(good[..good.len() - 9].to_vec());
        // Wrong magic with a "valid" checksum.
        let mut bad_magic = good.clone();
        bad_magic[..8].copy_from_slice(b"NOTAGEN1");
        let body_len = bad_magic.len() - 8;
        let sum = fnv1a(&bad_magic[..body_len]);
        bad_magic[body_len..].copy_from_slice(&sum.to_be_bytes());
        checks.push(bad_magic);
        for bad in checks {
            use std::io::Write;
            let mut w = io.create(&manifest_path).unwrap();
            w.write_all(&bad).unwrap();
            drop(w);
            assert!(matches!(
                GenerationalBackend::open(io.shared(), Path::new("/gen")),
                Err(PersistError::BadManifest(_)) | Err(PersistError::Io(_))
            ));
        }
    }

    #[test]
    fn orphan_generation_files_are_swept_at_open() {
        let (io, mut store) = mem_store();
        store.append(label(1), &[vec![0xA3; 6]]);
        store.flush().unwrap();
        drop(store);
        // Fake a crashed compaction: an output file nothing references.
        {
            use std::io::Write;
            let mut w = io
                .create(&Path::new("/gen").join(gen_file_name(77)))
                .unwrap();
            w.write_all(b"partial garbage").unwrap();
            drop(w);
            let mut w = io.create(&Path::new("/gen").join(MANIFEST_TMP)).unwrap();
            w.write_all(b"stale").unwrap();
            drop(w);
        }
        let store = GenerationalBackend::open(io.shared(), Path::new("/gen")).unwrap();
        assert!(io
            .read(&Path::new("/gen").join(gen_file_name(77)))
            .is_none());
        assert!(io.read(&Path::new("/gen").join(MANIFEST_TMP)).is_none());
        assert_eq!(store.stats().segments, 2);
    }
}
