//! The pluggable index storage engine: [`IndexBackend`] and the in-memory
//! [`MemBackend`].
//!
//! Curtmola et al. (CCS'06) already treat the SSE index as an opaque
//! server-side data structure, and that is exactly the seam this trait
//! cuts along: the OPM-encrypted posting bytes are the contract between
//! the scheme and the server, the *container* holding them is an
//! implementation detail. [`crate::RsseIndex`] dispatches over two
//! containers:
//!
//! * [`MemBackend`] — the flat [`PostingStore`] arena, everything
//!   resident; zero per-entry allocations on the search path (pinned by
//!   the alloc-count regression suite).
//! * [`crate::segment::SegmentBackend`] — a persisted `RSSEIDX2` segment
//!   file served via a per-label offset directory, reading only the
//!   touched posting list per query, with score-dynamics appends parked
//!   in an in-memory delta overlay.
//!
//! Both containers hold the *same ciphertexts*, so every ranking they
//! serve is byte-identical — `tests/backend_equivalence.rs` proves it
//! under random search/update interleavings.

use crate::index::Label;
use crate::store::PostingStore;

/// A container for encrypted posting lists.
///
/// The trait is deliberately narrow: label-addressed entry streams plus
/// append. Ranking, padding, and every cryptographic decision stay above
/// the trait in [`crate::RsseIndex`] — a backend never sees a key and
/// cannot tell a real entry from a padding entry, so swapping backends
/// cannot change what the server learns (the access pattern it observes —
/// which label, how many entries — is identical either way).
pub trait IndexBackend: Send + Sync + core::fmt::Debug {
    /// Whether a list with this label exists.
    fn contains_label(&self, label: &Label) -> bool;

    /// Number of posting lists.
    fn num_lists(&self) -> usize;

    /// Entry count of the list under `label`, if present.
    fn list_len(&self, label: &Label) -> Option<usize>;

    /// Live bytes: labels plus entry payloads.
    fn size_bytes(&self) -> usize;

    /// All labels, in unspecified order.
    fn labels(&self) -> Vec<Label>;

    /// Appends `entries` to the (possibly new) list under `label`,
    /// materializing the label even when `entries` is empty.
    fn append(&mut self, label: Label, entries: &[Vec<u8>]);

    /// Visits every entry of the list under `label` in insertion order
    /// (for a segment: base entries first, then the delta overlay).
    /// Returns `false` when the label is unknown.
    fn for_each_entry(&self, label: &Label, visit: &mut dyn FnMut(&[u8])) -> bool;
}

/// Which storage engine an index is running on (see
/// [`crate::RsseIndex::backend_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The in-memory [`MemBackend`] arena.
    Mem,
    /// The on-disk [`crate::segment::SegmentBackend`].
    Segment,
    /// The on-disk [`crate::generation::GenerationalBackend`]: a stack of
    /// generation files with L0 delta flushes and live compaction.
    Generational,
}

/// The in-memory backend: the flat [`PostingStore`] arena.
#[derive(Debug, Clone, Default)]
pub struct MemBackend {
    store: PostingStore,
}

impl MemBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an already-populated arena (the shard-split path).
    pub(crate) fn from_store(store: PostingStore) -> Self {
        MemBackend { store }
    }

    /// The underlying arena (borrowed; the zero-allocation search path
    /// reads entry ranges straight out of it).
    pub fn store(&self) -> &PostingStore {
        &self.store
    }
}

impl IndexBackend for MemBackend {
    fn contains_label(&self, label: &Label) -> bool {
        self.store.contains_label(label)
    }

    fn num_lists(&self) -> usize {
        self.store.num_lists()
    }

    fn list_len(&self, label: &Label) -> Option<usize> {
        self.store.list_len(label)
    }

    fn size_bytes(&self) -> usize {
        self.store.size_bytes()
    }

    fn labels(&self) -> Vec<Label> {
        self.store.labels().copied().collect()
    }

    fn append(&mut self, label: Label, entries: &[Vec<u8>]) {
        self.store.append(label, entries);
    }

    fn for_each_entry(&self, label: &Label, visit: &mut dyn FnMut(&[u8])) -> bool {
        let Some(list) = self.store.list(label) else {
            return false;
        };
        for entry in list.iter() {
            visit(entry);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(b: u8) -> Label {
        [b; 20]
    }

    #[test]
    fn mem_backend_round_trips_through_the_trait() {
        let mut backend = MemBackend::new();
        let entries = vec![vec![1u8; 4], vec![2u8; 4]];
        backend.append(label(1), &entries);
        backend.append(label(2), &[]);
        let b: &mut dyn IndexBackend = &mut backend;
        assert!(b.contains_label(&label(1)));
        assert!(b.contains_label(&label(2)));
        assert!(!b.contains_label(&label(3)));
        assert_eq!(b.num_lists(), 2);
        assert_eq!(b.list_len(&label(1)), Some(2));
        assert_eq!(b.list_len(&label(2)), Some(0));
        let mut seen = Vec::new();
        assert!(b.for_each_entry(&label(1), &mut |e| seen.push(e.to_vec())));
        assert_eq!(seen, entries);
        assert!(!b.for_each_entry(&label(9), &mut |_| panic!("no entries")));
        let mut labels = b.labels();
        labels.sort_unstable();
        assert_eq!(labels, vec![label(1), label(2)]);
    }
}
