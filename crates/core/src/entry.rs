//! Posting-entry wire layout of the RSSE index.
//!
//! Unlike the basic scheme — whose entries carry a semantically encrypted
//! score the server can never read — RSSE entries carry the OPM-mapped
//! score as a plain `u64` *inside* the per-list encryption. Once the server
//! holds the trapdoor it unwraps the entry and can compare scores by
//! numeric order.

use rsse_crypto::ctr::NONCE_LEN;
use rsse_ir::FileId;

/// Length of the all-zero validity marker (`0^l` in Fig. 3).
pub const MARKER_LEN: usize = 8;
/// Length of the encoded file identifier.
pub const ID_LEN: usize = 8;
/// Length of the OPM-mapped score (fits in a `u64`; ranges cap at `2^52`).
pub const SCORE_LEN: usize = 8;
/// Plaintext length of one posting entry.
pub const ENTRY_PLAIN_LEN: usize = MARKER_LEN + ID_LEN + SCORE_LEN;
/// Ciphertext length of one posting entry (nonce + body).
pub const ENTRY_CT_LEN: usize = NONCE_LEN + ENTRY_PLAIN_LEN;

/// Encodes the entry plaintext `0^l ‖ id ‖ opm_score`.
pub fn encode_entry(file: FileId, opm_score: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(ENTRY_PLAIN_LEN);
    out.extend_from_slice(&[0u8; MARKER_LEN]);
    out.extend_from_slice(&file.to_bytes());
    out.extend_from_slice(&opm_score.to_be_bytes());
    out
}

/// Decodes an entry plaintext, returning `(file, opm_score)` if the
/// validity marker checks out, `None` for padding/garbage.
pub fn decode_entry(plain: &[u8]) -> Option<(FileId, u64)> {
    if plain.len() != ENTRY_PLAIN_LEN || plain[..MARKER_LEN] != [0u8; MARKER_LEN] {
        return None;
    }
    let id_bytes: [u8; ID_LEN] = plain[MARKER_LEN..MARKER_LEN + ID_LEN]
        .try_into()
        .expect("length checked");
    let score_bytes: [u8; SCORE_LEN] = plain[MARKER_LEN + ID_LEN..]
        .try_into()
        .expect("length checked");
    Some((
        FileId::from_bytes(id_bytes),
        u64::from_be_bytes(score_bytes),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let plain = encode_entry(FileId::new(9), 123_456_789);
        assert_eq!(plain.len(), ENTRY_PLAIN_LEN);
        assert_eq!(decode_entry(&plain), Some((FileId::new(9), 123_456_789)));
    }

    #[test]
    fn padding_and_garbage_rejected() {
        let mut broken = encode_entry(FileId::new(9), 1);
        broken[3] = 0xff;
        assert!(decode_entry(&broken).is_none());
        assert!(decode_entry(&[]).is_none());
        assert!(decode_entry(&[0u8; ENTRY_PLAIN_LEN - 1]).is_none());
    }
}
