//! Flat posting-list arena backing [`crate::RsseIndex`].
//!
//! After padding, every real posting entry has the same ciphertext size
//! ([`crate::entry::ENTRY_CT_LEN`]), so posting lists do not need the
//! `HashMap<Label, Vec<Vec<u8>>>` shape of the original implementation —
//! one heap allocation *per entry* plus pointer-chasing on every search.
//! The [`PostingStore`] keeps all entries of all lists in one contiguous
//! `Vec<u8>` arena, with a per-label table of `(offset, entry_len, count)`.
//! A query walks one dense byte range with perfect locality and zero
//! per-entry allocations.
//!
//! Layout:
//!
//! ```text
//!  arena:  [ list A entries ..... | list B entries ... | list C ... ]
//!           ^offset_A              ^offset_B            ^offset_C
//!  table:  A -> { offset_A, entry_len, count_A, lens: None }
//!          B -> { offset_B, entry_len, count_B, lens: None }
//!          ...
//! ```
//!
//! Lists arriving off the wire are not trusted to be uniform (the codec
//! round-trips arbitrary entry sizes and the failure-injection tests feed
//! garbage), so a list whose entries differ in length carries an explicit
//! per-entry length vector (`lens: Some(..)`) instead of a single
//! `entry_len`; the dense fast path is unaffected.
//!
//! Score dynamics append to lists in place when the list is the arena tail;
//! otherwise the list is relocated to the tail and its old range becomes
//! dead space, compacted away once it exceeds half the arena.

use std::collections::HashMap;

/// A posting-list label `π_x(w)` (160 bits). Mirrors [`crate::Label`].
type Label = [u8; 20];

#[derive(Debug, Clone)]
struct ListMeta {
    /// Byte offset of the list's first entry in the arena.
    offset: usize,
    /// Total bytes of the list's entries.
    byte_len: usize,
    /// Number of entries.
    count: usize,
    /// Uniform entry size in bytes; meaningful when `lens` is `None` and
    /// `count > 0`.
    entry_len: usize,
    /// Per-entry sizes for non-uniform (untrusted wire) lists.
    lens: Option<Vec<u32>>,
}

/// Contiguous arena of posting-list entries with a label lookup table.
#[derive(Debug, Clone, Default)]
pub struct PostingStore {
    arena: Vec<u8>,
    table: HashMap<Label, ListMeta>,
    dead_bytes: usize,
}

/// Borrowed view of one posting list inside the arena.
#[derive(Debug, Clone, Copy)]
pub struct PostingList<'a> {
    data: &'a [u8],
    count: usize,
    entry_len: usize,
    lens: Option<&'a [u32]>,
}

impl<'a> PostingList<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Iterates the entries as borrowed byte slices, in insertion order.
    pub fn iter(&self) -> PostingIter<'a> {
        PostingIter {
            data: self.data,
            remaining: self.count,
            entry_len: self.entry_len,
            lens: self.lens,
            next_len_idx: 0,
        }
    }
}

impl<'a> IntoIterator for PostingList<'a> {
    type Item = &'a [u8];
    type IntoIter = PostingIter<'a>;
    fn into_iter(self) -> PostingIter<'a> {
        self.iter()
    }
}

/// Iterator over the entries of a [`PostingList`].
#[derive(Debug, Clone)]
pub struct PostingIter<'a> {
    data: &'a [u8],
    remaining: usize,
    entry_len: usize,
    lens: Option<&'a [u32]>,
    next_len_idx: usize,
}

impl<'a> Iterator for PostingIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.remaining == 0 {
            return None;
        }
        let len = match self.lens {
            Some(lens) => lens[self.next_len_idx] as usize,
            None => self.entry_len,
        };
        let (head, tail) = self.data.split_at(len);
        self.data = tail;
        self.remaining -= 1;
        self.next_len_idx += 1;
        Some(head)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

fn is_uniform(entries: &[Vec<u8>]) -> Option<usize> {
    let first = entries.first()?.len();
    entries[1..]
        .iter()
        .all(|e| e.len() == first)
        .then_some(first)
}

impl PostingStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of posting lists.
    pub fn num_lists(&self) -> usize {
        self.table.len()
    }

    /// Whether a list with this label exists.
    pub fn contains_label(&self, label: &Label) -> bool {
        self.table.contains_key(label)
    }

    /// Entry count of the list under `label`, if present.
    pub fn list_len(&self, label: &Label) -> Option<usize> {
        self.table.get(label).map(|m| m.count)
    }

    /// Borrowed view of the list under `label`, if present.
    pub fn list(&self, label: &Label) -> Option<PostingList<'_>> {
        let meta = self.table.get(label)?;
        Some(PostingList {
            data: &self.arena[meta.offset..meta.offset + meta.byte_len],
            count: meta.count,
            entry_len: meta.entry_len,
            lens: meta.lens.as_deref(),
        })
    }

    /// Live bytes: labels plus entry payloads (dead arena space excluded).
    pub fn size_bytes(&self) -> usize {
        self.table.iter().map(|(k, m)| k.len() + m.byte_len).sum()
    }

    /// All labels in unspecified order.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.table.keys()
    }

    /// Appends `entries` to the (possibly new) list under `label`.
    ///
    /// The list is extended in place when it already sits at the arena tail;
    /// otherwise it is relocated to the tail first (its old range becomes
    /// dead space, compacted once it exceeds half the arena).
    pub fn append(&mut self, label: Label, entries: &[Vec<u8>]) {
        if entries.is_empty() {
            // Still materialize the (empty) list so the label exists.
            self.table.entry(label).or_insert(ListMeta {
                offset: self.arena.len(),
                byte_len: 0,
                count: 0,
                entry_len: 0,
                lens: None,
            });
            return;
        }
        let added_bytes: usize = entries.iter().map(Vec::len).sum();
        match self.table.get_mut(&label) {
            None => {
                let offset = self.arena.len();
                for e in entries {
                    self.arena.extend_from_slice(e);
                }
                let uniform = is_uniform(entries);
                self.table.insert(
                    label,
                    ListMeta {
                        offset,
                        byte_len: added_bytes,
                        count: entries.len(),
                        entry_len: uniform.unwrap_or(0),
                        lens: if uniform.is_some() {
                            None
                        } else {
                            Some(entries.iter().map(|e| e.len() as u32).collect())
                        },
                    },
                );
            }
            Some(meta) => {
                let at_tail = meta.offset + meta.byte_len == self.arena.len();
                if !at_tail {
                    // Relocate to the tail; the old range becomes dead.
                    let old = meta.offset..meta.offset + meta.byte_len;
                    meta.offset = self.arena.len();
                    self.dead_bytes += meta.byte_len;
                    self.arena.extend_from_within(old);
                }
                for e in entries {
                    self.arena.extend_from_slice(e);
                }
                let new_uniform = is_uniform(entries);
                let stays_uniform =
                    meta.lens.is_none() && (meta.count == 0 || new_uniform == Some(meta.entry_len));
                if stays_uniform {
                    if meta.count == 0 {
                        meta.entry_len = new_uniform.expect("entries non-empty");
                    }
                } else if meta.lens.is_none() {
                    // Demote to ragged: synthesize lengths for existing
                    // entries, then record the new ones.
                    let mut lens = vec![meta.entry_len as u32; meta.count];
                    lens.extend(entries.iter().map(|e| e.len() as u32));
                    meta.lens = Some(lens);
                } else {
                    meta.lens
                        .as_mut()
                        .expect("ragged list")
                        .extend(entries.iter().map(|e| e.len() as u32));
                }
                meta.byte_len += added_bytes;
                meta.count += entries.len();
                if self.dead_bytes * 2 > self.arena.len() {
                    self.compact();
                }
            }
        }
    }

    /// Splits the list under `label` into `n` ordered buckets, routing
    /// entry `i` through `route(i, entry)`. Entries keep their list order
    /// within each bucket, and every bucket exists even when empty, so a
    /// partitioner gets a stable `n`-way shape. Returns `None` for unknown
    /// labels. A route outside `0..n` is clamped to the last bucket rather
    /// than panicking — the caller's hash is trusted to be in range, but a
    /// sharding bug must corrupt placement, not the process.
    ///
    /// The read side is zero-copy (entries are borrowed straight out of the
    /// arena); only the returned buckets own their bytes.
    pub fn split_list(
        &self,
        label: &Label,
        n: usize,
        mut route: impl FnMut(usize, &[u8]) -> usize,
    ) -> Option<Vec<Vec<Vec<u8>>>> {
        let list = self.list(label)?;
        let mut buckets: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n.max(1)];
        let last = buckets.len() - 1;
        for (i, entry) in list.iter().enumerate() {
            buckets[route(i, entry).min(last)].push(entry.to_vec());
        }
        Some(buckets)
    }

    /// Rewrites the arena without dead space, preserving per-list layout.
    fn compact(&mut self) {
        let mut fresh = Vec::with_capacity(self.arena.len() - self.dead_bytes);
        for meta in self.table.values_mut() {
            let offset = fresh.len();
            fresh.extend_from_slice(&self.arena[meta.offset..meta.offset + meta.byte_len]);
            meta.offset = offset;
        }
        self.arena = fresh;
        self.dead_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize, len: usize, tag: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![tag ^ i as u8; len]).collect()
    }

    fn label(b: u8) -> Label {
        [b; 20]
    }

    fn collect(store: &PostingStore, l: &Label) -> Vec<Vec<u8>> {
        store
            .list(l)
            .map(|pl| pl.iter().map(<[u8]>::to_vec).collect())
            .unwrap_or_default()
    }

    #[test]
    fn round_trips_uniform_lists() {
        let mut s = PostingStore::new();
        let a = entries(5, 40, 0x10);
        let b = entries(3, 40, 0x20);
        s.append(label(1), &a);
        s.append(label(2), &b);
        assert_eq!(collect(&s, &label(1)), a);
        assert_eq!(collect(&s, &label(2)), b);
        assert_eq!(s.list_len(&label(1)), Some(5));
        assert_eq!(s.num_lists(), 2);
        assert_eq!(s.size_bytes(), 20 + 5 * 40 + 20 + 3 * 40);
    }

    #[test]
    fn appending_to_non_tail_list_relocates_and_preserves_order() {
        let mut s = PostingStore::new();
        let a1 = entries(2, 40, 0x01);
        let b = entries(2, 40, 0x02);
        let a2 = entries(2, 40, 0x03);
        s.append(label(1), &a1);
        s.append(label(2), &b); // list 1 no longer at tail
        s.append(label(1), &a2);
        let want: Vec<Vec<u8>> = a1.into_iter().chain(a2).collect();
        assert_eq!(collect(&s, &label(1)), want);
        assert_eq!(collect(&s, &label(2)), b);
    }

    #[test]
    fn ragged_lists_round_trip() {
        let mut s = PostingStore::new();
        let mixed = vec![vec![1u8; 3], vec![2u8; 7], vec![3u8; 1]];
        s.append(label(9), &mixed);
        assert_eq!(collect(&s, &label(9)), mixed);
        // Uniform list demoted by a differently-sized append.
        let mut t = PostingStore::new();
        t.append(label(1), &entries(2, 4, 0xAA));
        t.append(label(1), &[vec![5u8; 9]]);
        let got = collect(&t, &label(1));
        assert_eq!(got.len(), 3);
        assert_eq!(got[2], vec![5u8; 9]);
        assert_eq!(got[0].len(), 4);
    }

    #[test]
    fn interleaved_appends_trigger_compaction_without_data_loss() {
        let mut s = PostingStore::new();
        // Ping-pong between two lists: every append relocates the other
        // list, generating dead space and forcing repeated compaction.
        let mut want_a = Vec::new();
        let mut want_b = Vec::new();
        for round in 0..20u8 {
            let ea = entries(3, 40, round);
            let eb = entries(2, 40, round.wrapping_add(100));
            s.append(label(1), &ea);
            s.append(label(2), &eb);
            want_a.extend(ea);
            want_b.extend(eb);
        }
        assert_eq!(collect(&s, &label(1)), want_a);
        assert_eq!(collect(&s, &label(2)), want_b);
        // Dead space is bounded by the compaction threshold.
        assert!(s.dead_bytes * 2 <= s.arena.len().max(1));
    }

    #[test]
    fn empty_append_materializes_label() {
        let mut s = PostingStore::new();
        s.append(label(7), &[]);
        assert!(s.contains_label(&label(7)));
        assert_eq!(s.list_len(&label(7)), Some(0));
        assert_eq!(s.list(&label(7)).unwrap().iter().count(), 0);
        // A later real append works.
        s.append(label(7), &entries(2, 8, 1));
        assert_eq!(s.list_len(&label(7)), Some(2));
    }

    #[test]
    fn split_list_partitions_and_preserves_order() {
        let mut s = PostingStore::new();
        let all = entries(10, 8, 0x30);
        s.append(label(1), &all);
        let buckets = s.split_list(&label(1), 3, |i, _| i % 3).unwrap();
        assert_eq!(buckets.len(), 3);
        for (b, bucket) in buckets.iter().enumerate() {
            let want: Vec<Vec<u8>> = all.iter().skip(b).step_by(3).cloned().collect();
            assert_eq!(bucket, &want, "bucket {b}");
        }
        // Reassembling the buckets round-robin recovers the original list.
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, all.len());
        // Out-of-range routes clamp to the last bucket instead of panicking.
        let clamped = s.split_list(&label(1), 2, |_, _| 99).unwrap();
        assert!(clamped[0].is_empty());
        assert_eq!(clamped[1].len(), all.len());
        // Empty buckets still exist; unknown labels are None.
        let sparse = s.split_list(&label(1), 4, |_, _| 0).unwrap();
        assert_eq!(sparse.len(), 4);
        assert!(sparse[1].is_empty() && sparse[2].is_empty() && sparse[3].is_empty());
        assert!(s.split_list(&label(9), 4, |i, _| i).is_none());
    }

    #[test]
    fn missing_label_is_none() {
        let s = PostingStore::new();
        assert!(s.list(&label(3)).is_none());
        assert!(s.list_len(&label(3)).is_none());
        assert!(!s.contains_label(&label(3)));
    }
}
