//! The RSSE scheme proper: `KeyGen` / `BuildIndex` / `TrapdoorGen`, the
//! owner-side decryption of mapped scores, and score dynamics.

use crate::entry::{encode_entry, ENTRY_CT_LEN};
use crate::error::RsseError;
use crate::index::{Label, RsseIndex, RsseTrapdoor};
use crate::params::{Padding, RsseParams};
use rsse_crypto::ctr::NONCE_LEN;
use rsse_crypto::tape::Transcript;
use rsse_crypto::{KeyMaterial, KeyedLabel, Prf, SemanticCipher, Tape};
use rsse_ir::score::{scores_for_term_with, CollectionStats};
use rsse_ir::{Document, FileId, InvertedIndex, ScoreQuantizer, Tokenizer};
use rsse_opse::{Opm, OpseParams};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Statistics reported by [`Rsse::build_index_with_report`] — the Table I
/// quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildReport {
    /// Number of distinct keywords `m`.
    pub num_keywords: usize,
    /// Number of documents `N`.
    pub num_docs: u64,
    /// Padded posting-list length ν (0 with [`Padding::None`]).
    pub padded_len: usize,
    /// Total index size in bytes.
    pub index_bytes: usize,
    /// One-to-many mapping operations performed.
    pub opm_operations: u64,
    /// Resolved OPSE range size in bits.
    pub range_bits: u32,
    /// Wall-clock time of the whole build.
    pub build_time: Duration,
    /// Portion spent scoring/encoding (the "raw index" cost, without OPM).
    pub raw_index_time: Duration,
}

impl BuildReport {
    /// Average per-keyword posting-list size in bytes (Table I row 2).
    pub fn per_keyword_bytes(&self) -> f64 {
        if self.num_keywords == 0 {
            return 0.0;
        }
        self.index_bytes as f64 / self.num_keywords as f64
    }

    /// Average per-keyword build time (Table I row 3).
    pub fn per_keyword_time(&self) -> Duration {
        if self.num_keywords == 0 {
            return Duration::ZERO;
        }
        self.build_time / self.num_keywords as u32
    }
}

/// The efficient ranked searchable symmetric encryption scheme (paper §IV).
///
/// # Example
///
/// ```
/// use rsse_core::{Rsse, RsseParams};
/// use rsse_ir::{Document, FileId};
///
/// # fn main() -> Result<(), rsse_core::RsseError> {
/// let docs = vec![
///     Document::new(FileId::new(1), "network routing network"),
///     Document::new(FileId::new(2), "network"),
///     Document::new(FileId::new(3), "storage systems"),
/// ];
/// let scheme = Rsse::new(b"owner master secret", RsseParams::default());
/// let index = scheme.build_index(&docs)?;
///
/// // The *server* ranks: doc 2 (tf=1 over 1 term) outranks doc 1.
/// let t = scheme.trapdoor("network")?;
/// let top = index.search(&t, Some(1));
/// assert_eq!(top[0].file, FileId::new(2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Rsse {
    keys: KeyMaterial,
    params: RsseParams,
    tokenizer: Tokenizer,
}

impl Rsse {
    /// `KeyGen`: derives the key triple from a master seed.
    pub fn new(master_seed: &[u8], params: RsseParams) -> Self {
        Rsse {
            keys: KeyMaterial::from_master_seed(master_seed),
            params,
            tokenizer: Tokenizer::new(),
        }
    }

    /// Builds the scheme from explicit key material.
    pub fn with_keys(keys: KeyMaterial, params: RsseParams) -> Self {
        Rsse {
            keys,
            params,
            tokenizer: Tokenizer::new(),
        }
    }

    /// The scheme's key material (distributed to authorized users during
    /// Setup).
    pub fn keys(&self) -> &KeyMaterial {
        &self.keys
    }

    /// The scheme's parameters.
    pub fn params(&self) -> &RsseParams {
        &self.params
    }

    fn canonical_keyword(&self, query: &str) -> Result<String, RsseError> {
        self.tokenizer
            .tokenize(query)
            .into_iter()
            .next()
            .ok_or(RsseError::EmptyQuery)
    }

    /// `TrapdoorGen(w)`: `(π_x(w), f_y(w))` after case folding/stemming.
    ///
    /// # Errors
    ///
    /// [`RsseError::EmptyQuery`] if the query reduces to nothing.
    pub fn trapdoor(&self, query: &str) -> Result<RsseTrapdoor, RsseError> {
        let keyword = self.canonical_keyword(query)?;
        Ok(RsseTrapdoor::from_parts(
            KeyedLabel::new(self.keys.label_key()).label(keyword.as_bytes()),
            Prf::new(self.keys.entry_key()).derive_key(keyword.as_bytes()),
        ))
    }

    /// The per-keyword OPM instance `OPM_{f_z(w)}` (owner-side).
    pub fn opm_for(&self, keyword: &str, opse: OpseParams) -> Opm {
        let key = Prf::new(self.keys.score_key()).derive_key(keyword.as_bytes());
        Opm::new(key, opse)
    }

    /// Fits the score quantizer over a plaintext index — the owner's
    /// precomputation pass.
    ///
    /// # Errors
    ///
    /// [`RsseError::UnscorableCollection`] when no postings are scorable.
    pub fn fit_quantizer(&self, index: &InvertedIndex) -> Result<ScoreQuantizer, RsseError> {
        ScoreQuantizer::fit_index_with(index, self.params.levels, self.params.scoring)
            .ok_or(RsseError::UnscorableCollection)
    }

    /// `BuildIndex(K, C)` from raw documents (tokenizes and scores
    /// internally).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and padding failures.
    pub fn build_index(&self, documents: &[Document]) -> Result<RsseIndex, RsseError> {
        let plaintext_index = InvertedIndex::build(documents);
        self.build_index_from(&plaintext_index)
    }

    /// `BuildIndex` from an existing plaintext inverted index.
    ///
    /// # Errors
    ///
    /// Propagates quantizer and padding failures.
    pub fn build_index_from(&self, index: &InvertedIndex) -> Result<RsseIndex, RsseError> {
        self.build_index_with_report(index).map(|(idx, _)| idx)
    }

    /// `BuildIndex` with full timing/size statistics (the Table I
    /// measurement entry point).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and padding failures.
    pub fn build_index_with_report(
        &self,
        index: &InvertedIndex,
    ) -> Result<(RsseIndex, BuildReport), RsseError> {
        let started = Instant::now();
        let quantizer = self.fit_quantizer(index)?;
        let opse = self.resolve_opse(index);
        let nu = self.padding_target(index)?;

        let mut raw_time = Duration::ZERO;
        let mut opm_ops = 0u64;
        let mut lists: HashMap<Label, Vec<Vec<u8>>> = HashMap::with_capacity(index.num_keywords());
        for (term, _) in index.iter() {
            let (label, list, stats) =
                self.build_posting_list(index, term, &quantizer, opse, nu)?;
            raw_time += stats.raw_time;
            opm_ops += stats.opm_ops;
            lists.insert(label, list);
        }
        let built = RsseIndex::from_lists(lists, opse);
        let report = BuildReport {
            num_keywords: index.num_keywords(),
            num_docs: index.num_docs(),
            padded_len: nu,
            index_bytes: built.size_bytes(),
            opm_operations: opm_ops,
            range_bits: opse.range_bits(),
            build_time: started.elapsed(),
            raw_index_time: raw_time,
        };
        Ok((built, report))
    }

    /// Parallel `BuildIndex` using `threads` worker threads (crossbeam
    /// scoped threads; keywords are partitioned across workers).
    ///
    /// # Errors
    ///
    /// Propagates quantizer and padding failures.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn build_index_parallel(
        &self,
        index: &InvertedIndex,
        threads: usize,
    ) -> Result<RsseIndex, RsseError> {
        assert!(threads > 0, "at least one worker thread required");
        let quantizer = self.fit_quantizer(index)?;
        let opse = self.resolve_opse(index);
        let nu = self.padding_target(index)?;
        let terms: Vec<&str> = index.iter().map(|(t, _)| t).collect();
        let chunk = terms.len().div_ceil(threads).max(1);

        type BuiltLists = Vec<(Label, Vec<Vec<u8>>)>;
        let results: Vec<Result<BuiltLists, RsseError>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = terms
                .chunks(chunk)
                .map(|part| {
                    let quantizer = &quantizer;
                    scope.spawn(move |_| {
                        part.iter()
                            .map(|term| {
                                self.build_posting_list(index, term, quantizer, opse, nu)
                                    .map(|(label, list, _)| (label, list))
                            })
                            .collect::<Result<Vec<_>, _>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("index build worker panicked"))
                .collect()
        })
        .expect("crossbeam scope failed");

        let mut lists = HashMap::with_capacity(terms.len());
        for part in results {
            for (label, list) in part? {
                lists.insert(label, list);
            }
        }
        Ok(RsseIndex::from_lists(lists, opse))
    }

    /// Owner-side inversion: recover the quantized score level behind a
    /// mapped value returned by the server.
    ///
    /// # Errors
    ///
    /// Propagates OPSE decryption failures and [`RsseError::EmptyQuery`].
    pub fn decrypt_level(
        &self,
        keyword: &str,
        opse: OpseParams,
        encrypted_score: u64,
    ) -> Result<u64, RsseError> {
        self.score_decryptor(opse)
            .decrypt_level(keyword, encrypted_score)
    }

    /// A [`ScoreDecryptor`] reusing per-keyword [`Opm`] instances — the
    /// batch-friendly form of [`Self::decrypt_level`]. Callers decrypting
    /// more than one score per keyword should hoist a decryptor out of the
    /// loop; the one-shot form above routes through a throwaway decryptor
    /// and cannot amortize the OPM's tree-walk memo across calls.
    pub fn score_decryptor(&self, opse: OpseParams) -> ScoreDecryptor<'_> {
        ScoreDecryptor {
            scheme: self,
            opse,
            opms: std::cell::RefCell::new(HashMap::new()),
        }
    }

    /// Prepares the score-dynamics updater: holds the quantizer fitted at
    /// build time so later insertions are quantized consistently.
    ///
    /// # Errors
    ///
    /// Propagates quantizer fitting failures.
    pub fn updater_for(&self, index: &InvertedIndex) -> Result<IndexUpdater<'_>, RsseError> {
        let doc_frequencies = index
            .iter()
            .map(|(term, postings)| (term.to_string(), postings.len() as u64))
            .collect();
        Ok(IndexUpdater {
            scheme: self,
            quantizer: self.fit_quantizer(index)?,
            opse: self.resolve_opse(index),
            stats: CollectionStats::of(index),
            doc_frequencies,
            opms: std::cell::RefCell::new(HashMap::new()),
        })
    }

    /// Entry → file ownership of every posting list, in build order: for
    /// each keyword, the label `π_x(w)` together with the file ids behind
    /// the list's *real* entries, exactly as `BuildIndex` wrote them
    /// (positions at or past the vector's length are padding).
    ///
    /// This is the owner-side routing table for partitioning an
    /// already-built encrypted index across shards. Entries are
    /// semantically encrypted, so only the owner can say which file an
    /// entry belongs to — and it can, without decrypting anything, because
    /// the build orders entries deterministically by the same
    /// `scores_for_term_with` call reproduced here.
    pub fn posting_owners(&self, index: &InvertedIndex) -> Vec<(Label, Vec<FileId>)> {
        index
            .iter()
            .map(|(term, _)| {
                let label = KeyedLabel::new(self.keys.label_key()).label(term.as_bytes());
                let owners = scores_for_term_with(index, term, self.params.scoring)
                    .into_iter()
                    .map(|(file, _)| file)
                    .collect();
                (label, owners)
            })
            .collect()
    }

    fn resolve_opse(&self, index: &InvertedIndex) -> OpseParams {
        // Duplicate statistics: per paper §IV-C, `max` is the largest number
        // of identical quantized scores within any posting list, λ the
        // average posting-list length.
        let quantizer =
            ScoreQuantizer::fit_index_with(index, self.params.levels, self.params.scoring);
        let ratio = match quantizer {
            Some(q) => {
                let mut max_dup = 0usize;
                for (term, _) in index.iter() {
                    let levels: Vec<u64> = scores_for_term_with(index, term, self.params.scoring)
                        .into_iter()
                        .map(|(_, s)| q.level(s))
                        .collect();
                    let stats = rsse_analysis_free_duplicates(&levels);
                    max_dup = max_dup.max(stats);
                }
                let lambda = index.avg_posting_len();
                if lambda > 0.0 {
                    max_dup as f64 / lambda
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        self.params.resolve_opse(ratio)
    }

    fn padding_target(&self, index: &InvertedIndex) -> Result<usize, RsseError> {
        match self.params.padding {
            Padding::MaxPostingLen => Ok(index.max_posting_len()),
            Padding::Fixed(nu) => {
                if index.max_posting_len() > nu {
                    Err(RsseError::PaddingTooSmall {
                        configured: nu,
                        longest_list: index.max_posting_len(),
                    })
                } else {
                    Ok(nu)
                }
            }
            Padding::None => Ok(0),
        }
    }

    fn build_posting_list(
        &self,
        index: &InvertedIndex,
        term: &str,
        quantizer: &ScoreQuantizer,
        opse: OpseParams,
        nu: usize,
    ) -> Result<(Label, Vec<Vec<u8>>, ListStats), RsseError> {
        let raw_started = Instant::now();
        let label = KeyedLabel::new(self.keys.label_key()).label(term.as_bytes());
        let list_key = Prf::new(self.keys.entry_key()).derive_key(term.as_bytes());
        let entry_cipher = SemanticCipher::new(&list_key);
        let mut tape = Tape::new(
            self.keys.score_key(),
            &Transcript::new("rsse/build")
                .bytes(term.as_bytes())
                .finish(),
        );
        let scored = scores_for_term_with(index, term, self.params.scoring);
        let raw_time = raw_started.elapsed();

        let opm = self.opm_for(term, opse);
        let mut list = Vec::with_capacity(nu.max(scored.len()));
        let mut opm_ops = 0u64;
        for (file, score) in scored {
            let level = quantizer.level(score);
            let mapped = opm.encrypt(level, &file.to_bytes())?;
            opm_ops += 1;
            let plain = encode_entry(file, mapped);
            let mut nonce = [0u8; NONCE_LEN];
            tape.fill_bytes(&mut nonce);
            list.push(entry_cipher.encrypt_with_nonce(nonce, &plain));
        }
        while list.len() < nu {
            let mut pad = vec![0u8; ENTRY_CT_LEN];
            tape.fill_bytes(&mut pad);
            list.push(pad);
        }
        Ok((label, list, ListStats { raw_time, opm_ops }))
    }
}

struct ListStats {
    raw_time: Duration,
    opm_ops: u64,
}

/// Largest multiplicity within a slice of levels (avoids a dependency on
/// the analysis crate from core).
fn rsse_analysis_free_duplicates(levels: &[u64]) -> usize {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &l in levels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Owner-side cache of per-keyword [`Opm`] instances for decrypting mapped
/// scores in bulk.
///
/// The one-shot [`Rsse::decrypt_level`] routes through a throwaway
/// decryptor, so its `Opm` — whose memoized search tree starts cold — is
/// rebuilt on *every* call and the same bucket walk is re-derived each
/// time. The experiment and score-dynamics paths decrypt many values per
/// keyword; this decryptor keeps one warm `Opm` per keyword for the
/// lifetime of a batch. Obtain via [`Rsse::score_decryptor`].
#[derive(Debug)]
pub struct ScoreDecryptor<'a> {
    pub(crate) scheme: &'a Rsse,
    pub(crate) opse: OpseParams,
    pub(crate) opms: std::cell::RefCell<HashMap<String, Opm>>,
}

impl ScoreDecryptor<'_> {
    /// Recovers the quantized score level behind `encrypted_score`, reusing
    /// the keyword's cached [`Opm`] (created on first use).
    ///
    /// # Errors
    ///
    /// Propagates OPSE decryption failures and [`RsseError::EmptyQuery`].
    pub fn decrypt_level(&self, keyword: &str, encrypted_score: u64) -> Result<u64, RsseError> {
        let keyword = self.scheme.canonical_keyword(keyword)?;
        let mut opms = self.opms.borrow_mut();
        let opm = opms
            .entry(keyword)
            .or_insert_with_key(|k| self.scheme.opm_for(k, self.opse));
        Ok(opm.decrypt(encrypted_score)?)
    }

    /// Number of keywords with a cached `Opm`.
    pub fn cached_keywords(&self) -> usize {
        self.opms.borrow().len()
    }
}

/// Owner-side score-dynamics helper: encrypts postings for newly added
/// documents without touching the existing index (§VII).
#[derive(Debug)]
pub struct IndexUpdater<'a> {
    scheme: &'a Rsse,
    quantizer: ScoreQuantizer,
    opse: OpseParams,
    /// Collection statistics frozen at fit time (BM25 normalization).
    stats: CollectionStats,
    /// Per-term document frequencies frozen at fit time; unseen terms
    /// default to 1 (most selective) when scoring an update.
    doc_frequencies: HashMap<String, u64>,
    /// Warm per-term OPM instances — updates for a stream of documents keep
    /// re-mapping scores under the same keywords.
    opms: std::cell::RefCell<HashMap<String, Opm>>,
}

/// A batch of encrypted posting-list appends produced by the owner.
#[derive(Debug, Clone, Default)]
pub struct IndexUpdate {
    ops: Vec<(Label, Vec<Vec<u8>>)>,
}

impl IndexUpdate {
    /// Number of `(label, entries)` operations in the batch.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Rebuilds an update from its wire parts (server side of the cloud
    /// `Update` message).
    pub fn from_parts(ops: Vec<(Label, Vec<Vec<u8>>)>) -> Self {
        IndexUpdate { ops }
    }

    /// Decomposes the update into `(label, entries)` pairs for the wire.
    pub fn into_parts(self) -> Vec<(Label, Vec<Vec<u8>>)> {
        self.ops
    }

    /// The posting-list labels this update touches — what a serving-side
    /// ranking cache must invalidate before the update becomes visible.
    pub fn labels(&self) -> impl Iterator<Item = &Label> + '_ {
        self.ops.iter().map(|(label, _)| label)
    }

    /// Applies the batch to a server-held index.
    pub fn apply_to(self, index: &mut RsseIndex) {
        for (label, entries) in self.ops {
            index.append_entries(label, entries);
        }
    }
}

impl IndexUpdater<'_> {
    /// The OPSE parameters updates are mapped under (must match the built
    /// index).
    pub fn opse_params(&self) -> OpseParams {
        self.opse
    }

    /// Encrypts the postings of a new document into an [`IndexUpdate`].
    ///
    /// # Errors
    ///
    /// [`RsseError::UnknownDocument`] when the document tokenizes to
    /// nothing.
    pub fn add_document(&self, doc: &Document) -> Result<IndexUpdate, RsseError> {
        let tokens = self.scheme.tokenizer.tokenize(doc.text());
        if tokens.is_empty() {
            return Err(RsseError::UnknownDocument);
        }
        let doc_len = tokens.len() as u32;
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        let mut ops = Vec::with_capacity(tf.len());
        let mut terms: Vec<(&str, u32)> = tf.into_iter().collect();
        terms.sort_unstable(); // deterministic op order
        for (term, count) in terms {
            let label = KeyedLabel::new(self.scheme.keys.label_key()).label(term.as_bytes());
            let list_key = Prf::new(self.scheme.keys.entry_key()).derive_key(term.as_bytes());
            let entry_cipher = SemanticCipher::new(&list_key);
            let mut tape = Tape::new(
                self.scheme.keys.score_key(),
                &Transcript::new("rsse/update")
                    .bytes(term.as_bytes())
                    .u64(doc.id().as_u64())
                    .finish(),
            );
            let df = self.doc_frequencies.get(term).copied().unwrap_or(1);
            let score = self
                .scheme
                .params
                .scoring
                .score(count, doc_len, df, &self.stats);
            let level = self.quantizer.level(score);
            let mut opms = self.opms.borrow_mut();
            let opm = opms
                .entry(term.to_string())
                .or_insert_with(|| self.scheme.opm_for(term, self.opse));
            let mapped = opm.encrypt(level, &doc.id().to_bytes())?;
            drop(opms);
            let plain = encode_entry(doc.id(), mapped);
            let mut nonce = [0u8; NONCE_LEN];
            tape.fill_bytes(&mut nonce);
            ops.push((label, vec![entry_cipher.encrypt_with_nonce(nonce, &plain)]));
        }
        Ok(IndexUpdate { ops })
    }
}

// Tests live in scheme_tests.rs to keep this file focused.
#[cfg(test)]
#[path = "scheme_tests.rs"]
mod tests;
