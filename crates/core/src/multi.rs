//! **Extension** — multi-keyword (conjunctive) ranked search.
//!
//! The paper's future-work section (§VIII) names this "the most promising"
//! direction and flags the open problem: once several keywords are
//! involved, the IDF factor matters and *sums of per-keyword
//! order-preserved values do not exactly preserve the order of summed
//! plaintext scores*. This module implements the construction the paper
//! sketches, with that caveat made explicit:
//!
//! * the server intersects the posting lists of all queried keywords and
//!   ranks by the **sum of per-keyword mapped scores** — a heuristic whose
//!   quality the tests quantify, not a guarantee;
//! * an authorized party holding the score key can *exactly* re-rank the
//!   candidate set by recovering quantized levels and applying the eq. (1)
//!   IDF weighting ([`Rsse::rerank_conjunctive`]).

use crate::entry::ENTRY_PLAIN_LEN;
use crate::error::RsseError;
use crate::index::{Label, RsseIndex, RsseTrapdoor};
use crate::scheme::Rsse;
use rsse_ir::FileId;
use rsse_opse::OpseParams;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A trapdoor per conjunctive query keyword.
#[derive(Debug, Clone)]
pub struct MultiTrapdoor {
    parts: Vec<RsseTrapdoor>,
}

impl MultiTrapdoor {
    /// Reassembles a conjunctive trapdoor from per-keyword parts (the wire
    /// path: the server receives the components, not the query).
    pub fn from_parts(parts: Vec<RsseTrapdoor>) -> Self {
        MultiTrapdoor { parts }
    }

    /// The per-keyword trapdoors, in query order.
    pub fn parts(&self) -> &[RsseTrapdoor] {
        &self.parts
    }

    /// Number of keywords in the conjunction.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }
}

/// Counters of the conjunctive intersection-pushdown path (see
/// [`RsseIndex::search_conjunctive`]): how often the length probes ended a
/// query before any entry was decrypted, and how much smaller the driving
/// list was than the work the old materialize-everything path would have
/// done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConjunctiveStats {
    /// Conjunctive queries served.
    pub queries: u64,
    /// Posting-list length probes issued (up to the query arity each).
    pub lists_probed: u64,
    /// Queries answered empty straight from a length probe — a queried
    /// label had no list, so nothing was read or decrypted.
    pub probe_shortcuts: u64,
    /// Entries of the driving (smallest) posting lists walked.
    pub driver_entries: u64,
    /// Intersection members ranked.
    pub candidates: u64,
}

/// Shared mutable home of [`ConjunctiveStats`] — lives in an `Arc` so
/// index clones keep one counter set (cf. the batched-read counters in
/// [`crate::segment`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct ConjunctiveCounters(Arc<ConjunctiveCountersInner>);

#[derive(Debug, Default)]
struct ConjunctiveCountersInner {
    queries: AtomicU64,
    lists_probed: AtomicU64,
    probe_shortcuts: AtomicU64,
    driver_entries: AtomicU64,
    candidates: AtomicU64,
}

impl ConjunctiveCounters {
    fn snapshot(&self) -> ConjunctiveStats {
        ConjunctiveStats {
            queries: self.0.queries.load(Ordering::Relaxed),
            lists_probed: self.0.lists_probed.load(Ordering::Relaxed),
            probe_shortcuts: self.0.probe_shortcuts.load(Ordering::Relaxed),
            driver_entries: self.0.driver_entries.load(Ordering::Relaxed),
            candidates: self.0.candidates.load(Ordering::Relaxed),
        }
    }
}

/// Stable index order that sorts `labels` ascending — the canonical
/// keyword order the conjunctive caches key by. Shared here so every
/// layer (server cache, router merged cache) canonicalizes identically
/// and permuted queries for the same keyword set share one cache entry.
pub fn canonical_label_order(labels: &[Label]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..labels.len()).collect();
    order.sort_by_key(|&i| labels[i]);
    order
}

/// One conjunctive search result as the server sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveResult {
    /// The file matching *all* keywords.
    pub file: FileId,
    /// Per-keyword mapped scores, in trapdoor order.
    pub mapped_scores: Vec<u64>,
    /// The ranking key: sum of mapped scores (heuristic, see module docs).
    pub score_sum: u128,
}

impl Rsse {
    /// `TrapdoorGen` for a conjunctive query: one trapdoor per distinct
    /// keyword surviving tokenization, in first-appearance order.
    ///
    /// # Errors
    ///
    /// [`RsseError::EmptyQuery`] if no keyword survives.
    pub fn multi_trapdoor(&self, query: &str) -> Result<MultiTrapdoor, RsseError> {
        let mut seen = std::collections::HashSet::new();
        let mut parts = Vec::new();
        for word in query.split_whitespace() {
            if let Ok(t) = self.trapdoor(word) {
                if seen.insert(*t.label()) {
                    parts.push(t);
                }
            }
        }
        if parts.is_empty() {
            return Err(RsseError::EmptyQuery);
        }
        Ok(MultiTrapdoor { parts })
    }

    /// Owner/user-side exact re-ranking of a conjunctive candidate set
    /// (the paper's eq. 1): recover each per-keyword quantized level with
    /// the score key and weight it by the IDF factor `ln(1 + N/f_t)`,
    /// where `f_t` is taken from the observed per-keyword match counts.
    ///
    /// `keywords` must align with the trapdoor order used for the search.
    ///
    /// # Errors
    ///
    /// Propagates level-decryption failures.
    pub fn rerank_conjunctive(
        &self,
        keywords: &[&str],
        results: &[ConjunctiveResult],
        opse: OpseParams,
        doc_frequencies: &[u64],
        num_docs: u64,
    ) -> Result<Vec<(FileId, f64)>, RsseError> {
        // One warm OPM per keyword across the whole candidate set, instead
        // of a cold rebuild per (result, keyword) pair.
        let decryptor = self.score_decryptor(opse);
        let mut exact: Vec<(FileId, f64)> = Vec::with_capacity(results.len());
        for r in results {
            let mut total = 0.0f64;
            for ((kw, &mapped), &df) in keywords.iter().zip(&r.mapped_scores).zip(doc_frequencies) {
                let level = decryptor.decrypt_level(kw, mapped)? as f64;
                let idf = if df > 0 {
                    (1.0 + num_docs as f64 / df as f64).ln()
                } else {
                    0.0
                };
                total += level * idf;
            }
            exact.push((r.file, total));
        }
        exact.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(exact)
    }
}

impl RsseIndex {
    /// Conjunctive ranked search: intersect the posting lists of every
    /// trapdoor, rank by the sum of mapped scores, return the top-k.
    ///
    /// Returns an empty vector when any keyword matches nothing (empty
    /// intersection) or the trapdoor set is empty.
    ///
    /// The evaluation is **intersection pushdown** through the backend,
    /// not per-keyword materialization: every label's list length is
    /// probed first (a label with no list answers the query empty with
    /// zero decryption work), all surviving lists are fetched in **one**
    /// [`RsseIndex::search_batch`] pass — on the disk backends a single
    /// forward-only read schedule in file-offset order — and then the
    /// *smallest* list drives the intersection while the others are
    /// hash-probed. [`RsseIndex::conjunctive_stats`] counts what this
    /// saves.
    pub fn search_conjunctive(
        &self,
        trapdoor: &MultiTrapdoor,
        top_k: Option<usize>,
    ) -> Vec<ConjunctiveResult> {
        let mut scratch = Vec::with_capacity(ENTRY_PLAIN_LEN);
        self.search_conjunctive_with_scratch(trapdoor, top_k, &mut scratch)
    }

    /// [`Self::search_conjunctive`] decrypting into a caller-owned scratch
    /// buffer, like [`RsseIndex::search_with_scratch`]: after warm-up the
    /// hot path's allocation count depends only on the query arity and the
    /// intersection size, never on posting-list length (pinned by the
    /// `alloc_count` suite).
    pub fn search_conjunctive_with_scratch(
        &self,
        trapdoor: &MultiTrapdoor,
        top_k: Option<usize>,
        scratch: &mut Vec<u8>,
    ) -> Vec<ConjunctiveResult> {
        let parts = trapdoor.parts();
        if parts.is_empty() {
            return Vec::new();
        }
        let counters = &self.conjunctive.0;
        counters.queries.fetch_add(1, Ordering::Relaxed);
        // Length probes: a conjunction is empty as soon as one label has
        // no posting list, and the probe costs a directory lookup, not a
        // list read.
        for part in parts {
            counters.lists_probed.fetch_add(1, Ordering::Relaxed);
            if self.list_len(part.label()).is_none_or(|n| n == 0) {
                counters.probe_shortcuts.fetch_add(1, Ordering::Relaxed);
                return Vec::new();
            }
        }
        // One batched pass over every surviving list: the disk backends
        // sort the reads into file-offset order, so an n-keyword query
        // costs one forward sweep instead of n independent seeks.
        let rankings = self.search_batch_with_scratch(parts, None, scratch);
        let driver = (0..rankings.len())
            .min_by_key(|&i| rankings[i].len())
            .expect("non-empty parts");
        counters
            .driver_entries
            .fetch_add(rankings[driver].len() as u64, Ordering::Relaxed);
        if rankings[driver].is_empty() {
            return Vec::new();
        }
        // Hash-probe tables for the non-driver lists, sized up front so
        // the allocation count stays flat in list length.
        let probes: Vec<HashMap<FileId, u64>> = rankings
            .iter()
            .enumerate()
            .map(|(i, ranking)| {
                if i == driver {
                    return HashMap::new();
                }
                let mut map = HashMap::with_capacity(ranking.len());
                map.extend(ranking.iter().map(|r| (r.file, r.encrypted_score)));
                map
            })
            .collect();
        let mut results: Vec<ConjunctiveResult> = Vec::with_capacity(rankings[driver].len());
        'candidates: for entry in &rankings[driver] {
            // Membership first: a miss in any list must not cost a
            // mapped-scores allocation.
            for (i, probe) in probes.iter().enumerate() {
                if i != driver && !probe.contains_key(&entry.file) {
                    continue 'candidates;
                }
            }
            let mut mapped_scores = Vec::with_capacity(parts.len());
            for (i, probe) in probes.iter().enumerate() {
                mapped_scores.push(if i == driver {
                    entry.encrypted_score
                } else {
                    probe[&entry.file]
                });
            }
            results.push(ConjunctiveResult {
                score_sum: mapped_scores.iter().map(|&s| s as u128).sum(),
                file: entry.file,
                mapped_scores,
            });
        }
        counters
            .candidates
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        // (score_sum, file) is a total order over distinct files, so the
        // unstable sort is deterministic — and allocation-free.
        results.sort_unstable_by(|a, b| b.score_sum.cmp(&a.score_sum).then(a.file.cmp(&b.file)));
        if let Some(k) = top_k {
            results.truncate(k);
        }
        results
    }

    /// Counters of the conjunctive pushdown path (zero until the first
    /// conjunctive query; shared across clones of this index).
    pub fn conjunctive_stats(&self) -> ConjunctiveStats {
        self.conjunctive.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RsseParams;
    use rsse_ir::{Document, InvertedIndex};

    fn docs() -> Vec<Document> {
        vec![
            Document::new(FileId::new(1), "network storage network storage network"),
            Document::new(FileId::new(2), "network only here"),
            Document::new(FileId::new(3), "storage only here"),
            Document::new(FileId::new(4), "network storage balanced pair words"),
            Document::new(FileId::new(5), "irrelevant filler content"),
        ]
    }

    fn scheme() -> Rsse {
        Rsse::new(b"multi seed", RsseParams::default())
    }

    #[test]
    fn conjunction_intersects_posting_lists() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        assert_eq!(t.arity(), 2);
        let hits = enc.search_conjunctive(&t, None);
        let mut files: Vec<u64> = hits.iter().map(|r| r.file.as_u64()).collect();
        files.sort_unstable();
        assert_eq!(files, vec![1, 4]);
        for r in &hits {
            assert_eq!(r.mapped_scores.len(), 2);
            assert_eq!(
                r.score_sum,
                r.mapped_scores.iter().map(|&s| s as u128).sum::<u128>()
            );
        }
    }

    #[test]
    fn empty_intersection_and_unknown_keyword() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network zebra").unwrap();
        assert!(enc.search_conjunctive(&t, None).is_empty());
        // "filler" and "network" never co-occur in the corpus.
        let t = s.multi_trapdoor("filler network").unwrap();
        assert_eq!(t.arity(), 2);
        assert!(enc.search_conjunctive(&t, None).is_empty());
    }

    #[test]
    fn single_keyword_conjunction_matches_plain_search() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let multi = s.multi_trapdoor("network").unwrap();
        let single = s.trapdoor("network").unwrap();
        let a: Vec<FileId> = enc
            .search_conjunctive(&multi, None)
            .into_iter()
            .map(|r| r.file)
            .collect();
        let b: Vec<FileId> = enc
            .search(&single, None)
            .into_iter()
            .map(|r| r.file)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_keywords_deduplicated() {
        let s = scheme();
        let t = s.multi_trapdoor("network Network networks").unwrap();
        assert_eq!(t.arity(), 1);
    }

    #[test]
    fn stop_word_only_query_rejected() {
        let s = scheme();
        assert!(matches!(
            s.multi_trapdoor("the of and"),
            Err(RsseError::EmptyQuery)
        ));
    }

    #[test]
    fn top_k_truncates_conjunctive_results() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let all = enc.search_conjunctive(&t, None);
        let top1 = enc.search_conjunctive(&t, Some(1));
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0], all[0]);
    }

    #[test]
    fn exact_rerank_orders_by_idf_weighted_levels() {
        let s = scheme();
        let index = InvertedIndex::build(&docs());
        let enc = s.build_index_from(&index).unwrap();
        let opse = *enc.opse_params().unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let hits = enc.search_conjunctive(&t, None);
        let dfs = [
            index.document_frequency("network"),
            index.document_frequency("storage"),
        ];
        let exact = s
            .rerank_conjunctive(&["network", "storage"], &hits, opse, &dfs, index.num_docs())
            .unwrap();
        assert_eq!(exact.len(), hits.len());
        // Doc 1 dominates doc 4 in *both* per-keyword scores (higher tf,
        // same length), so every correct ranking puts it first.
        assert_eq!(exact[0].0, FileId::new(1));
        // Exact scores are strictly ordered.
        assert!(exact[0].1 > exact[1].1);
    }

    #[test]
    fn sum_heuristic_respects_dominance() {
        // If file A beats file B on every keyword, the mapped-sum ranking
        // must put A first (order preservation holds per keyword).
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let hits = enc.search_conjunctive(&t, None);
        let pos = |f: u64| hits.iter().position(|r| r.file.as_u64() == f).unwrap();
        assert!(
            pos(1) < pos(4),
            "dominated file ranked above dominating one"
        );
    }

    /// Reference implementation: per-keyword full materialization, the
    /// shape the pushdown replaced. The pushdown must stay byte-identical.
    fn reference_conjunctive(
        index: &RsseIndex,
        trapdoor: &MultiTrapdoor,
        top_k: Option<usize>,
    ) -> Vec<ConjunctiveResult> {
        let Some((first, rest)) = trapdoor.parts().split_first() else {
            return Vec::new();
        };
        let mut acc: HashMap<FileId, Vec<u64>> = index
            .search(first, None)
            .into_iter()
            .map(|r| (r.file, vec![r.encrypted_score]))
            .collect();
        for t in rest {
            let matches: HashMap<FileId, u64> = index
                .search(t, None)
                .into_iter()
                .map(|r| (r.file, r.encrypted_score))
                .collect();
            acc.retain(|file, scores| {
                if let Some(&s) = matches.get(file) {
                    scores.push(s);
                    true
                } else {
                    false
                }
            });
        }
        let mut results: Vec<ConjunctiveResult> = acc
            .into_iter()
            .map(|(file, mapped_scores)| ConjunctiveResult {
                score_sum: mapped_scores.iter().map(|&s| s as u128).sum(),
                file,
                mapped_scores,
            })
            .collect();
        results.sort_by(|a, b| b.score_sum.cmp(&a.score_sum).then(a.file.cmp(&b.file)));
        if let Some(k) = top_k {
            results.truncate(k);
        }
        results
    }

    #[test]
    fn pushdown_matches_reference_materialization() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        for query in [
            "network",
            "network storage",
            "storage network",
            "network filler",
            "network storage balanced",
        ] {
            let t = s.multi_trapdoor(query).unwrap();
            for top_k in [None, Some(0), Some(1), Some(10)] {
                assert_eq!(
                    enc.search_conjunctive(&t, top_k),
                    reference_conjunctive(&enc, &t, top_k),
                    "query {query:?} top_k {top_k:?}"
                );
            }
        }
    }

    #[test]
    fn scratch_variant_matches_and_stats_count_the_pushdown() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        assert_eq!(enc.conjunctive_stats(), ConjunctiveStats::default());

        let t = s.multi_trapdoor("network storage").unwrap();
        let plain = enc.search_conjunctive(&t, None);
        let mut scratch = Vec::new();
        assert_eq!(
            enc.search_conjunctive_with_scratch(&t, None, &mut scratch),
            plain
        );

        let stats = enc.conjunctive_stats();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.lists_probed, 4);
        assert_eq!(stats.probe_shortcuts, 0);
        // "storage" (3 files) drives over "network" (4 files), both times.
        assert_eq!(stats.driver_entries, 6);
        assert_eq!(stats.candidates, 4);

        // Clones share the tally (one logical index, one report).
        assert_eq!(enc.clone().conjunctive_stats(), stats);
    }

    #[test]
    fn unknown_label_takes_the_probe_shortcut() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network zebra").unwrap();
        assert!(enc.search_conjunctive(&t, None).is_empty());
        let stats = enc.conjunctive_stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.probe_shortcuts, 1);
        // The shortcut fires before any list is read.
        assert_eq!(stats.driver_entries, 0);
        assert_eq!(stats.candidates, 0);
    }

    #[test]
    fn canonical_label_order_sorts_and_inverts() {
        let labels: Vec<Label> = vec![[9u8; 20], [1u8; 20], [5u8; 20]];
        let order = canonical_label_order(&labels);
        assert_eq!(order, vec![1, 2, 0]);
        // Applying the permutation yields the sorted label vector.
        let sorted: Vec<Label> = order.iter().map(|&i| labels[i]).collect();
        let mut expect = labels.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
        // Duplicates keep first-appearance order (stable sort).
        let dup: Vec<Label> = vec![[3u8; 20], [3u8; 20], [0u8; 20]];
        assert_eq!(canonical_label_order(&dup), vec![2, 0, 1]);
    }
}
