//! **Extension** — multi-keyword (conjunctive) ranked search.
//!
//! The paper's future-work section (§VIII) names this "the most promising"
//! direction and flags the open problem: once several keywords are
//! involved, the IDF factor matters and *sums of per-keyword
//! order-preserved values do not exactly preserve the order of summed
//! plaintext scores*. This module implements the construction the paper
//! sketches, with that caveat made explicit:
//!
//! * the server intersects the posting lists of all queried keywords and
//!   ranks by the **sum of per-keyword mapped scores** — a heuristic whose
//!   quality the tests quantify, not a guarantee;
//! * an authorized party holding the score key can *exactly* re-rank the
//!   candidate set by recovering quantized levels and applying the eq. (1)
//!   IDF weighting ([`Rsse::rerank_conjunctive`]).

use crate::error::RsseError;
use crate::index::{RsseIndex, RsseTrapdoor};
use crate::scheme::Rsse;
use rsse_ir::FileId;
use rsse_opse::OpseParams;
use std::collections::HashMap;

/// A trapdoor per conjunctive query keyword.
#[derive(Debug, Clone)]
pub struct MultiTrapdoor {
    parts: Vec<RsseTrapdoor>,
}

impl MultiTrapdoor {
    /// Reassembles a conjunctive trapdoor from per-keyword parts (the wire
    /// path: the server receives the components, not the query).
    pub fn from_parts(parts: Vec<RsseTrapdoor>) -> Self {
        MultiTrapdoor { parts }
    }

    /// The per-keyword trapdoors, in query order.
    pub fn parts(&self) -> &[RsseTrapdoor] {
        &self.parts
    }

    /// Number of keywords in the conjunction.
    pub fn arity(&self) -> usize {
        self.parts.len()
    }
}

/// One conjunctive search result as the server sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveResult {
    /// The file matching *all* keywords.
    pub file: FileId,
    /// Per-keyword mapped scores, in trapdoor order.
    pub mapped_scores: Vec<u64>,
    /// The ranking key: sum of mapped scores (heuristic, see module docs).
    pub score_sum: u128,
}

impl Rsse {
    /// `TrapdoorGen` for a conjunctive query: one trapdoor per distinct
    /// keyword surviving tokenization, in first-appearance order.
    ///
    /// # Errors
    ///
    /// [`RsseError::EmptyQuery`] if no keyword survives.
    pub fn multi_trapdoor(&self, query: &str) -> Result<MultiTrapdoor, RsseError> {
        let mut seen = std::collections::HashSet::new();
        let mut parts = Vec::new();
        for word in query.split_whitespace() {
            if let Ok(t) = self.trapdoor(word) {
                if seen.insert(*t.label()) {
                    parts.push(t);
                }
            }
        }
        if parts.is_empty() {
            return Err(RsseError::EmptyQuery);
        }
        Ok(MultiTrapdoor { parts })
    }

    /// Owner/user-side exact re-ranking of a conjunctive candidate set
    /// (the paper's eq. 1): recover each per-keyword quantized level with
    /// the score key and weight it by the IDF factor `ln(1 + N/f_t)`,
    /// where `f_t` is taken from the observed per-keyword match counts.
    ///
    /// `keywords` must align with the trapdoor order used for the search.
    ///
    /// # Errors
    ///
    /// Propagates level-decryption failures.
    pub fn rerank_conjunctive(
        &self,
        keywords: &[&str],
        results: &[ConjunctiveResult],
        opse: OpseParams,
        doc_frequencies: &[u64],
        num_docs: u64,
    ) -> Result<Vec<(FileId, f64)>, RsseError> {
        // One warm OPM per keyword across the whole candidate set, instead
        // of a cold rebuild per (result, keyword) pair.
        let decryptor = self.score_decryptor(opse);
        let mut exact: Vec<(FileId, f64)> = Vec::with_capacity(results.len());
        for r in results {
            let mut total = 0.0f64;
            for ((kw, &mapped), &df) in keywords.iter().zip(&r.mapped_scores).zip(doc_frequencies) {
                let level = decryptor.decrypt_level(kw, mapped)? as f64;
                let idf = if df > 0 {
                    (1.0 + num_docs as f64 / df as f64).ln()
                } else {
                    0.0
                };
                total += level * idf;
            }
            exact.push((r.file, total));
        }
        exact.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(exact)
    }
}

impl RsseIndex {
    /// Conjunctive ranked search: intersect the posting lists of every
    /// trapdoor, rank by the sum of mapped scores, return the top-k.
    ///
    /// Returns an empty vector when any keyword matches nothing (empty
    /// intersection) or the trapdoor set is empty.
    pub fn search_conjunctive(
        &self,
        trapdoor: &MultiTrapdoor,
        top_k: Option<usize>,
    ) -> Vec<ConjunctiveResult> {
        let Some((first, rest)) = trapdoor.parts().split_first() else {
            return Vec::new();
        };
        // Seed with the first keyword's matches.
        let mut acc: HashMap<FileId, Vec<u64>> = self
            .search(first, None)
            .into_iter()
            .map(|r| (r.file, vec![r.encrypted_score]))
            .collect();
        // Intersect with each further keyword.
        for t in rest {
            let matches: HashMap<FileId, u64> = self
                .search(t, None)
                .into_iter()
                .map(|r| (r.file, r.encrypted_score))
                .collect();
            acc.retain(|file, scores| {
                if let Some(&s) = matches.get(file) {
                    scores.push(s);
                    true
                } else {
                    false
                }
            });
            if acc.is_empty() {
                return Vec::new();
            }
        }
        let mut results: Vec<ConjunctiveResult> = acc
            .into_iter()
            .map(|(file, mapped_scores)| ConjunctiveResult {
                score_sum: mapped_scores.iter().map(|&s| s as u128).sum(),
                file,
                mapped_scores,
            })
            .collect();
        results.sort_by(|a, b| b.score_sum.cmp(&a.score_sum).then(a.file.cmp(&b.file)));
        if let Some(k) = top_k {
            results.truncate(k);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RsseParams;
    use rsse_ir::{Document, InvertedIndex};

    fn docs() -> Vec<Document> {
        vec![
            Document::new(FileId::new(1), "network storage network storage network"),
            Document::new(FileId::new(2), "network only here"),
            Document::new(FileId::new(3), "storage only here"),
            Document::new(FileId::new(4), "network storage balanced pair words"),
            Document::new(FileId::new(5), "irrelevant filler content"),
        ]
    }

    fn scheme() -> Rsse {
        Rsse::new(b"multi seed", RsseParams::default())
    }

    #[test]
    fn conjunction_intersects_posting_lists() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        assert_eq!(t.arity(), 2);
        let hits = enc.search_conjunctive(&t, None);
        let mut files: Vec<u64> = hits.iter().map(|r| r.file.as_u64()).collect();
        files.sort_unstable();
        assert_eq!(files, vec![1, 4]);
        for r in &hits {
            assert_eq!(r.mapped_scores.len(), 2);
            assert_eq!(
                r.score_sum,
                r.mapped_scores.iter().map(|&s| s as u128).sum::<u128>()
            );
        }
    }

    #[test]
    fn empty_intersection_and_unknown_keyword() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network zebra").unwrap();
        assert!(enc.search_conjunctive(&t, None).is_empty());
        // "filler" and "network" never co-occur in the corpus.
        let t = s.multi_trapdoor("filler network").unwrap();
        assert_eq!(t.arity(), 2);
        assert!(enc.search_conjunctive(&t, None).is_empty());
    }

    #[test]
    fn single_keyword_conjunction_matches_plain_search() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let multi = s.multi_trapdoor("network").unwrap();
        let single = s.trapdoor("network").unwrap();
        let a: Vec<FileId> = enc
            .search_conjunctive(&multi, None)
            .into_iter()
            .map(|r| r.file)
            .collect();
        let b: Vec<FileId> = enc
            .search(&single, None)
            .into_iter()
            .map(|r| r.file)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_keywords_deduplicated() {
        let s = scheme();
        let t = s.multi_trapdoor("network Network networks").unwrap();
        assert_eq!(t.arity(), 1);
    }

    #[test]
    fn stop_word_only_query_rejected() {
        let s = scheme();
        assert!(matches!(
            s.multi_trapdoor("the of and"),
            Err(RsseError::EmptyQuery)
        ));
    }

    #[test]
    fn top_k_truncates_conjunctive_results() {
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let all = enc.search_conjunctive(&t, None);
        let top1 = enc.search_conjunctive(&t, Some(1));
        assert_eq!(top1.len(), 1);
        assert_eq!(top1[0], all[0]);
    }

    #[test]
    fn exact_rerank_orders_by_idf_weighted_levels() {
        let s = scheme();
        let index = InvertedIndex::build(&docs());
        let enc = s.build_index_from(&index).unwrap();
        let opse = *enc.opse_params().unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let hits = enc.search_conjunctive(&t, None);
        let dfs = [
            index.document_frequency("network"),
            index.document_frequency("storage"),
        ];
        let exact = s
            .rerank_conjunctive(&["network", "storage"], &hits, opse, &dfs, index.num_docs())
            .unwrap();
        assert_eq!(exact.len(), hits.len());
        // Doc 1 dominates doc 4 in *both* per-keyword scores (higher tf,
        // same length), so every correct ranking puts it first.
        assert_eq!(exact[0].0, FileId::new(1));
        // Exact scores are strictly ordered.
        assert!(exact[0].1 > exact[1].1);
    }

    #[test]
    fn sum_heuristic_respects_dominance() {
        // If file A beats file B on every keyword, the mapped-sum ranking
        // must put A first (order preservation holds per keyword).
        let s = scheme();
        let enc = s.build_index(&docs()).unwrap();
        let t = s.multi_trapdoor("network storage").unwrap();
        let hits = enc.search_conjunctive(&t, None);
        let pos = |f: u64| hits.iter().position(|r| r.file.as_u64() == f).unwrap();
        assert!(
            pos(1) < pos(4),
            "dominated file ranked above dominating one"
        );
    }
}
