//! **Ranked searchable symmetric encryption** — the efficient scheme of
//! *"Secure Ranked Keyword Search over Encrypted Cloud Data"* (ICDCS 2010).
//!
//! The basic scheme ([`rsse-sse`](../rsse_sse/index.html)) keeps scores
//! semantically encrypted, forcing client-side ranking and either full-list
//! transfers or a second round trip. This crate replaces the score cipher
//! with the **one-to-many order-preserving mapping**
//! ([`rsse-opse`](../rsse_opse/index.html)): the server unwraps posting
//! entries with the trapdoor's list key, compares mapped scores directly,
//! and returns only the top-k most relevant files in a single round.
//!
//! * [`Rsse`] — `KeyGen` / `BuildIndex` / `TrapdoorGen`, parallel index
//!   construction, owner-side score recovery;
//! * [`RsseIndex`] — the server-held encrypted index with heap-based top-k
//!   `SearchIndex`;
//! * [`IndexUpdater`] — the §VII *score dynamics*: new documents append to
//!   the index without perturbing any existing ciphertext;
//! * [`RsseParams`] — score levels `M`, range policy (fixed `2^46` or the
//!   §IV-C min-entropy auto-selection), and padding.
//!
//! # Example
//!
//! ```
//! use rsse_core::{Rsse, RsseParams};
//! use rsse_ir::{Document, FileId};
//!
//! # fn main() -> Result<(), rsse_core::RsseError> {
//! let docs = vec![
//!     Document::new(FileId::new(1), "cloud storage encryption"),
//!     Document::new(FileId::new(2), "encryption encryption keys"),
//! ];
//! let scheme = Rsse::new(b"master secret", RsseParams::default());
//! let index = scheme.build_index(&docs)?;
//! let trapdoor = scheme.trapdoor("encryption")?;
//! let top1 = index.search(&trapdoor, Some(1));
//! assert_eq!(top1[0].file, FileId::new(2)); // tf=2 outranks tf=1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod entry;
pub mod error;
pub mod generation;
pub mod index;
pub mod multi;
pub mod params;
pub mod persist;
pub mod scheme;
pub mod segio;
pub mod segment;
pub mod store;

pub use backend::{BackendKind, IndexBackend, MemBackend};
pub use error::RsseError;
pub use generation::{
    CompactionStats, GenerationPin, GenerationStats, GenerationalBackend, LiveCompaction,
};
pub use index::{
    merge_ranked_streams, ranked_prefix, Label, RankedResult, RsseIndex, RsseTrapdoor,
};
pub use multi::{canonical_label_order, ConjunctiveResult, ConjunctiveStats, MultiTrapdoor};
pub use params::{Padding, RangePolicy, RsseParams};
pub use persist::PersistError;
pub use scheme::{BuildReport, IndexUpdate, IndexUpdater, Rsse, ScoreDecryptor};
pub use segio::{MemIo, SegmentIo, SegmentRead, SegmentWrite, StdIo};
pub use segment::{BatchReadStats, SegmentBackend};
pub use store::{PostingIter, PostingList, PostingStore};
